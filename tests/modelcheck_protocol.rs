//! The model checker's acceptance contract (DESIGN.md §14):
//!
//! 1. `lockmc verify` exhaustively explores (at least) the thin
//!    recursive program, the 3-thread contended program in both thin
//!    and pre-inflated shapes, and a wait/notify pair — with zero
//!    invariant violations, under both naive DFS and DPOR, and the
//!    two modes must agree that the space was exhausted.
//! 2. DPOR earns an aggregate reduction factor strictly greater than
//!    2x over naive DFS across the verify catalog.
//! 3. Every seeded protocol mutation is caught, and its shrunk
//!    counterexample replays deterministically through the obs trace
//!    machinery — two replays render byte-identical timelines.

use std::sync::Arc;

use thinlock::BackendChoice;
use thinlock_modelcheck::suite::{render_replay, run_mutations, run_verify};
use thinlock_modelcheck::{explore, reduction_factor, CoopScheduler, Limits, Mode, MutationKind};

/// The three acceptance-floor state spaces are exhausted violation-free
/// by both exploration modes, which also agree on completeness.
#[test]
fn required_state_spaces_are_exhausted_clean() {
    let required = [
        "thin-nest-2x2",
        "contended-thin-3",
        "contended-fat-3",
        "wait-notify",
    ];
    let sched = Arc::new(CoopScheduler::new());
    let limits = Limits::exhaustive();
    for program in thinlock_modelcheck::verify_programs() {
        if !required.contains(&program.name) {
            continue;
        }
        for mode in [Mode::Naive, Mode::Dpor] {
            let out = explore(&program, &sched, mode, &limits);
            assert!(
                out.violation.is_none(),
                "{} under {mode:?}: {:?}",
                program.name,
                out.violation
            );
            assert!(
                out.stats.complete,
                "{} under {mode:?}: space not exhausted",
                program.name
            );
            assert!(out.stats.executions >= 1);
        }
    }
}

/// The full verify suite is clean and the aggregate DPOR reduction
/// factor beats 2x.
#[test]
fn verify_suite_is_clean_with_reduction_over_two() {
    let reports = run_verify(&Limits::exhaustive(), true, BackendChoice::Thin);
    for r in &reports {
        assert!(r.violation.is_none(), "{}: {:?}", r.name, r.violation);
        assert!(r.dpor.complete, "{}: dpor incomplete", r.name);
        let naive = r.naive.expect("naive baseline requested");
        assert!(naive.complete, "{}: naive incomplete", r.name);
        assert!(
            r.dpor.executions <= naive.executions,
            "{}: dpor explored more than naive",
            r.name
        );
    }
    let factor = reduction_factor(&reports).expect("baselines collected");
    assert!(
        factor > 2.0,
        "aggregate DPOR reduction factor {factor:.2}x is not > 2x"
    );
}

/// Every seeded mutation is caught, with a shrunk counterexample whose
/// replay timeline is deterministic: rendering the same minimal
/// schedule twice yields byte-identical output.
#[test]
fn every_mutation_is_caught_with_deterministic_counterexample() {
    let limits = Limits::exhaustive();
    let reports = run_mutations(&limits, BackendChoice::Thin);
    assert_eq!(reports.len(), MutationKind::ALL.len());
    let sched = Arc::new(CoopScheduler::new());
    let programs = thinlock_modelcheck::mutation_programs();
    for r in &reports {
        let cx = r
            .caught
            .as_ref()
            .unwrap_or_else(|| panic!("{}: seeded mutation survived exploration", r.kind));
        assert!(
            !cx.schedule.is_empty(),
            "{}: empty counterexample schedule",
            r.kind
        );
        // Shrinking is 1-minimal: the suite already dropped every
        // droppable decision, so the schedule is no longer than the
        // whole program's step count and reproduces on replay.
        let (_, program) = programs
            .iter()
            .find(|(k, _)| *k == r.kind)
            .expect("mutation has a program");
        let first = render_replay(program, &sched, &cx.schedule, limits.max_steps);
        let second = render_replay(program, &sched, &cx.schedule, limits.max_steps);
        assert_eq!(
            first, second,
            "{}: two replays of the minimal schedule diverged",
            r.kind
        );
        assert!(
            first.contains(&format!("violation: {}", cx.invariant)),
            "{}: replay no longer reproduces `{}`:\n{first}",
            r.kind,
            cx.invariant
        );
    }
}

/// The mutation catalog maps each bug to a distinct invariant failure
/// at least across the major protocol areas: a mutual-exclusion /
/// balance break, a word-conformance break, and a liveness break all
/// appear. Guards against the suite degenerating into one catch-all
/// check.
#[test]
fn mutations_are_caught_by_diverse_invariants() {
    let reports = run_mutations(&Limits::exhaustive(), BackendChoice::Thin);
    let invariants: std::collections::HashSet<&'static str> = reports
        .iter()
        .filter_map(|r| r.caught.as_ref().map(|c| c.invariant))
        .collect();
    assert!(
        invariants.len() >= 3,
        "all mutations caught by too few invariants: {invariants:?}"
    );
}

/// The CJM backend's verify suite is clean under the quick budget: the
/// same catalog programs, but the shape-transition invariant is
/// deflation safety rather than one-way inflation, and the explored
/// space includes the deflate-vs-acquire revalidation race.
#[test]
fn cjm_verify_suite_is_clean_under_quick_budget() {
    let reports = run_verify(&Limits::quick(), false, BackendChoice::Cjm);
    for r in &reports {
        assert!(r.violation.is_none(), "{}: {:?}", r.name, r.violation);
    }
}

/// Every seeded mutation is also caught under the CJM backend — in
/// particular the deflating mutation, which one-way inflation can no
/// longer flag, must now be caught by the deflation-safety invariant
/// (or a downstream break it causes).
#[test]
fn every_mutation_is_caught_under_cjm() {
    let reports = run_mutations(&Limits::quick(), BackendChoice::Cjm);
    assert_eq!(reports.len(), MutationKind::ALL.len());
    for r in &reports {
        assert!(
            r.caught.is_some(),
            "{}: seeded mutation survived exploration under cjm",
            r.kind
        );
    }
}

/// The fissile backend's verify suite is clean under the quick budget.
/// The explored space includes the fission-vs-unlock and
/// re-cohesion-vs-arrival races, and the contended programs route every
/// blocking path through the FIFO ticket queue.
#[test]
fn fissile_verify_suite_is_clean_under_quick_budget() {
    let reports = run_verify(&Limits::quick(), false, BackendChoice::Fissile);
    for r in &reports {
        assert!(r.violation.is_none(), "{}: {:?}", r.name, r.violation);
    }
}

/// Every seeded mutation is caught under the fissile backend too.
#[test]
fn every_mutation_is_caught_under_fissile() {
    let reports = run_mutations(&Limits::quick(), BackendChoice::Fissile);
    assert_eq!(reports.len(), MutationKind::ALL.len());
    for r in &reports {
        assert!(
            r.caught.is_some(),
            "{}: seeded mutation survived exploration under fissile",
            r.kind
        );
    }
}

/// The hapax backend's verify suite is clean under the quick budget:
/// ticket admission replaces spinning entirely, so the checker walks
/// arrival orders (the schedule point precedes the ticket draw) instead
/// of spin interleavings.
#[test]
fn hapax_verify_suite_is_clean_under_quick_budget() {
    let reports = run_verify(&Limits::quick(), false, BackendChoice::Hapax);
    for r in &reports {
        assert!(r.violation.is_none(), "{}: {:?}", r.name, r.violation);
    }
}

/// Every seeded mutation is caught under the hapax backend.
#[test]
fn every_mutation_is_caught_under_hapax() {
    let reports = run_mutations(&Limits::quick(), BackendChoice::Hapax);
    assert_eq!(reports.len(), MutationKind::ALL.len());
    for r in &reports {
        assert!(
            r.caught.is_some(),
            "{}: seeded mutation survived exploration under hapax",
            r.kind
        );
    }
}
