//! Coarse performance-*shape* assertions — the qualitative claims of the
//! paper's evaluation, checked with wide margins so they hold in debug
//! builds and on noisy hosts. Exact factors are reported by the
//! `reproduce` binary and recorded in EXPERIMENTS.md.

use std::sync::Mutex;

use thinlock_bench::{run_micro, ProtocolKind};

/// All tests in this binary measure wall time on (typically) a single
/// CPU; running them concurrently perturbs each other's numbers. Each
/// test holds this gate while measuring, serializing them regardless of
/// the test harness's thread count.
static MEASUREMENT_GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    MEASUREMENT_GATE.lock().unwrap_or_else(|e| e.into_inner())
}
use thinlock_trace::generator::{generate, TraceConfig};
use thinlock_trace::replay::replay;
use thinlock_trace::table1::{median, BenchmarkProfile, MACRO_BENCHMARKS};
use thinlock_vm::programs::MicroBench;

const ITERS: i32 = 30_000;

fn ns(kind: ProtocolKind, bench: MicroBench) -> f64 {
    // Min of three: a noise spike on a busy single-CPU host must not be
    // able to flip an ordering assertion.
    (0..3)
        .map(|_| run_micro(kind, bench, ITERS).ns_per_iter())
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn thin_beats_monitor_cache_on_initial_locking() {
    let _gate = gate();
    // Paper: ThinLock 3.7x faster than JDK111 on Sync. Require >1.5x.
    let thin = ns(ProtocolKind::ThinLock, MicroBench::Sync);
    let jdk = ns(ProtocolKind::Jdk111, MicroBench::Sync);
    assert!(
        jdk > 1.5 * thin,
        "Sync: thin {thin:.0} ns vs jdk {jdk:.0} ns — expected a wide gap"
    );
}

#[test]
fn thin_beats_hot_locks_on_initial_locking() {
    let _gate = gate();
    // Paper: 1.8x over IBM112 on Sync. Debug builds blunt the thin fast
    // path's inlining advantage to the point where the two are nearly
    // tied (`hot_locks_sit_between_thin_and_cache` tolerates the same),
    // so in debug only reject a decisive thin loss; release builds must
    // show the real >1.2x gap. Interleave the repetitions so host load
    // drift perturbs both protocols alike.
    let required = if cfg!(debug_assertions) { 0.95 } else { 1.2 };
    let mut thin = f64::INFINITY;
    let mut ibm = f64::INFINITY;
    for _ in 0..5 {
        thin = thin.min(run_micro(ProtocolKind::ThinLock, MicroBench::Sync, ITERS).ns_per_iter());
        ibm = ibm.min(run_micro(ProtocolKind::Ibm112, MicroBench::Sync, ITERS).ns_per_iter());
    }
    assert!(
        ibm > required * thin,
        "Sync: thin {thin:.0} ns vs ibm {ibm:.0} ns (required factor {required})"
    );
}

#[test]
fn hot_locks_sit_between_thin_and_cache() {
    let _gate = gate();
    // Take the min of three interleaved measurements per protocol so a
    // noise spike on a busy single-CPU host cannot flip the ordering, and
    // allow a 10% margin on the thin/ibm comparison (debug builds blunt
    // the thin fast path's inlining advantage).
    let min3 = |kind: ProtocolKind| {
        (0..3)
            .map(|_| ns(kind, MicroBench::Sync))
            .fold(f64::INFINITY, f64::min)
    };
    let thin = min3(ProtocolKind::ThinLock);
    let ibm = min3(ProtocolKind::Ibm112);
    let jdk = min3(ProtocolKind::Jdk111);
    assert!(
        thin < ibm * 1.1 && ibm < jdk,
        "thin {thin:.0} <~ ibm {ibm:.0} < jdk {jdk:.0}"
    );
}

#[test]
fn no_sync_is_protocol_independent() {
    let _gate = gate();
    // The reference benchmark must not depend on the protocol: its loop
    // executes no locking bytecodes.
    let times: Vec<f64> = ProtocolKind::ALL
        .iter()
        .map(|&k| ns(k, MicroBench::NoSync))
        .collect();
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0f64, f64::max);
    assert!(
        max < 2.0 * min,
        "NoSync should be roughly equal across protocols: {times:?}"
    );
}

#[test]
fn ibm112_collapses_past_32_hot_locks() {
    let _gate = gate();
    // The paper's MultiSync cliff: with a working set well beyond the 32
    // hot slots, IBM112's per-sync cost must rise substantially compared
    // to a small working set.
    let iters = 500;
    let small =
        run_micro(ProtocolKind::Ibm112, MicroBench::MultiSync(8), iters).ns_per_iter() / 8.0;
    let large =
        run_micro(ProtocolKind::Ibm112, MicroBench::MultiSync(256), iters).ns_per_iter() / 256.0;
    assert!(
        large > 1.3 * small,
        "IBM112 MultiSync per-sync: n=8 -> {small:.0} ns, n=256 -> {large:.0} ns"
    );
}

#[test]
fn thin_locks_scale_flat_on_multisync() {
    let _gate = gate();
    // "the thin lock implementation is the only one that scales linearly"
    // — per-object-sync cost must stay nearly constant across working-set
    // sizes.
    let iters = 500;
    let small =
        run_micro(ProtocolKind::ThinLock, MicroBench::MultiSync(8), iters).ns_per_iter() / 8.0;
    let large =
        run_micro(ProtocolKind::ThinLock, MicroBench::MultiSync(512), iters).ns_per_iter() / 512.0;
    assert!(
        large < 2.0 * small,
        "ThinLock MultiSync per-sync: n=8 -> {small:.0} ns, n=512 -> {large:.0} ns"
    );
}

#[test]
fn nested_locking_is_cheap_for_thin_locks() {
    let _gate = gate();
    // NestedSync under thin locks costs about the same as Sync (both are a
    // few instructions); it must never be drastically worse.
    let sync = ns(ProtocolKind::ThinLock, MicroBench::Sync);
    let nested = ns(ProtocolKind::ThinLock, MicroBench::NestedSync);
    assert!(
        nested < 1.8 * sync,
        "NestedSync {nested:.0} ns should be close to Sync {sync:.0} ns"
    );
}

#[test]
fn macro_speedup_shape_holds() {
    let _gate = gate();
    // Replay a representative subset at modest scale: thin must beat the
    // monitor cache on every benchmark, with sane magnitudes (the full
    // 18-benchmark sweep with paper-aggregate checks runs in `reproduce`
    // and the release-mode benches).
    let cfg = TraceConfig {
        scale: 10_000,
        seed: 1,
        max_objects: 2_000,
        max_lock_ops: 4_000,
        skew: 0.8,
        work_per_sync: 20,
        work_per_alloc: 160,
    };
    let mut speedups = Vec::new();
    for name in ["javac", "javalex", "HashJava", "mocha"] {
        let profile = BenchmarkProfile::by_name(name).unwrap();
        let trace = generate(profile, &cfg);
        let once = |kind: ProtocolKind| {
            let p = kind.build(trace.required_heap_capacity(), 0);
            let reg = p.registry().register().unwrap();
            replay(&*p, &trace, reg.token()).unwrap().elapsed
        };
        // Interleave the two protocols' repetitions so host-load drift on
        // a busy single-CPU machine perturbs both alike, and take mins so
        // a noise spike cannot flip the ratio.
        let mut thin = std::time::Duration::MAX;
        let mut jdk = std::time::Duration::MAX;
        for _ in 0..5 {
            thin = thin.min(once(ProtocolKind::ThinLock));
            jdk = jdk.min(once(ProtocolKind::Jdk111));
        }
        let s = jdk.as_secs_f64() / thin.as_secs_f64();
        // Per benchmark, only reject a clear loss; the median below
        // carries the actual "thin wins" claim.
        assert!(s > 0.8, "{name}: thin lost decisively (got {s:.2})");
        speedups.push(s);
    }
    let med = median(&mut speedups);
    assert!(
        med > 1.02 && med < 20.0,
        "median speedup {med:.2} should be a plausible Figure 5 value"
    );
}

#[test]
fn table1_identities_hold_for_all_profiles() {
    // Structural sanity of the workload model feeding every macro figure.
    for p in &MACRO_BENCHMARKS {
        assert!(p.sync_operations >= p.synchronized_objects);
        assert!(p.objects_created >= p.synchronized_objects);
        assert!(p.paper_speedup_thin >= 1.0);
    }
}
