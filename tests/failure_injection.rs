//! Failure injection across crates: panics inside critical sections,
//! resource exhaustion mid-workload, interrupts during waits — every
//! protocol must degrade predictably, never by corrupting lock state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use thinlock_bench::ProtocolKind;
use thinlock_runtime::error::SyncError;
use thinlock_runtime::protocol::{SyncProtocol, SyncProtocolExt};

#[test]
fn panic_inside_guard_releases_monitor_everywhere() {
    for kind in ProtocolKind::ALL_BACKENDS {
        let p = kind.build(4, 0);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = p.enter(obj, t).unwrap();
            panic!("injected failure inside critical section");
        }));
        assert!(result.is_err());
        assert!(!p.holds_lock(obj, t), "{kind}: lock leaked through panic");
        // The monitor is still fully usable afterwards.
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
    }
}

#[test]
fn panic_in_one_thread_does_not_wedge_others() {
    for kind in ProtocolKind::ALL_BACKENDS {
        let p: Arc<dyn SyncProtocol> = Arc::from(kind.build(4, 0));
        let obj = p.heap().alloc().unwrap();
        let progressed = Arc::new(AtomicU64::new(0));

        // Thread A panics while holding the guard (which releases it on
        // unwind); thread B must still make progress afterwards.
        let a = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                let _guard = p.enter(obj, t).unwrap();
                panic!("injected");
            })
        };
        assert!(a.join().is_err());

        let b = {
            let p = Arc::clone(&p);
            let progressed = Arc::clone(&progressed);
            std::thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                for _ in 0..100 {
                    p.lock(obj, t).unwrap();
                    progressed.fetch_add(1, Ordering::Relaxed);
                    p.unlock(obj, t).unwrap();
                }
            })
        };
        b.join().unwrap();
        assert_eq!(progressed.load(Ordering::Relaxed), 100, "{kind}");
    }
}

#[test]
fn heap_exhaustion_is_a_clean_error() {
    for kind in ProtocolKind::ALL_BACKENDS {
        let p = kind.build(2, 0);
        let _a = p.heap().alloc().unwrap();
        let _b = p.heap().alloc().unwrap();
        assert_eq!(p.heap().alloc(), Err(SyncError::HeapFull), "{kind}");
        // Existing objects still lock fine.
        let reg = p.registry().register().unwrap();
        p.lock(_a, reg.token()).unwrap();
        p.unlock(_a, reg.token()).unwrap();
    }
}

#[test]
fn registry_exhaustion_is_a_clean_error() {
    use thinlock::ThinLocks;
    use thinlock_runtime::heap::Heap;
    use thinlock_runtime::registry::ThreadRegistry;
    let locks = ThinLocks::new(
        Arc::new(Heap::with_capacity(2)),
        ThreadRegistry::with_max_threads(2),
    );
    let r1 = locks.registry().register().unwrap();
    let _r2 = locks.registry().register().unwrap();
    assert!(matches!(
        locks.registry().register(),
        Err(SyncError::ThreadIndexExhausted)
    ));
    // Releasing one registration frees its index.
    drop(r1);
    let r3 = locks.registry().register().unwrap();
    let obj = locks.heap().alloc().unwrap();
    locks.lock(obj, r3.token()).unwrap();
    locks.unlock(obj, r3.token()).unwrap();
}

#[test]
fn interrupt_during_wait_surfaces_under_parking_backends() {
    for kind in [
        ProtocolKind::ThinLock,
        ProtocolKind::Tasuki,
        ProtocolKind::Cjm,
        ProtocolKind::Fissile,
        ProtocolKind::Hapax,
    ] {
        let p: Arc<dyn SyncProtocol> = Arc::from(kind.build(4, 0));
        let obj = p.heap().alloc().unwrap();
        let waiter_index = Arc::new(AtomicU64::new(0));
        let waiter = {
            let p = Arc::clone(&p);
            let waiter_index = Arc::clone(&waiter_index);
            std::thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                waiter_index.store(u64::from(t.index().get()), Ordering::Release);
                p.lock(obj, t).unwrap();
                let r = p.wait(obj, t, None);
                assert!(
                    p.holds_lock(obj, t),
                    "{}: reacquired before surfacing",
                    p.name()
                );
                p.unlock(obj, t).unwrap();
                r
            })
        };
        // Wait until the waiter is registered and (very likely) waiting.
        while waiter_index.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(30));
        let idx = thinlock_runtime::lockword::ThreadIndex::new(
            waiter_index.load(Ordering::Acquire) as u16,
        )
        .unwrap();
        p.registry().interrupt(idx).unwrap();
        let out = waiter.join().unwrap();
        assert_eq!(out.unwrap_err(), SyncError::Interrupted, "{kind}");
    }
}

#[test]
fn monitor_exhaustion_reported_not_corrupting() {
    // A thin-lock protocol over a 1-object heap has a 1-slot monitor
    // table; inflating the only object consumes it, and the protocol
    // keeps working through the fat path afterwards.
    use thinlock::ThinLocks;
    let locks = ThinLocks::with_capacity(1);
    let reg = locks.registry().register().unwrap();
    let t = reg.token();
    let obj = locks.heap().alloc().unwrap();
    locks.lock(obj, t).unwrap();
    locks.notify(obj, t).unwrap(); // inflates, table now full
    locks.unlock(obj, t).unwrap();
    assert_eq!(locks.inflated_count(), 1);
    for _ in 0..10 {
        locks.lock(obj, t).unwrap();
        locks.unlock(obj, t).unwrap();
    }
}

#[test]
fn zero_timeout_wait_returns_promptly() {
    for kind in ProtocolKind::ALL_BACKENDS {
        let p = kind.build(2, 0);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        let start = std::time::Instant::now();
        let out = p.wait(obj, t, Some(Duration::ZERO)).unwrap();
        assert_eq!(
            out,
            thinlock_runtime::protocol::WaitOutcome::TimedOut,
            "{kind}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "{kind}: prompt return"
        );
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
    }
}
