//! End-to-end tests of the benchmark telemetry pipeline: schema
//! round-trip, `benchgate` verdicts on synthetic baseline/current pairs,
//! and a smoke run of the full report collector at tiny iteration counts
//! checking that every expected benchmark id is emitted.

use std::collections::BTreeSet;

use thinlock_bench::benchjson::{
    summarize, BenchRecord, BenchReport, Direction, GateClass, Summary,
};
use thinlock_bench::gate::{compare, Tolerances, Verdict};
use thinlock_bench::report;

fn sample_report() -> BenchReport {
    let mut r = BenchReport::new(1_000, 500);
    r.push(BenchRecord::timed(
        "fig4/Sync/ThinLock",
        "fig4",
        Some("ThinLock"),
        "ns_per_iter",
        GateClass::Micro,
        &[33.1, 32.9, 34.0, 33.3, 40.2],
    ));
    r.push(BenchRecord::scalar(
        "fig4/Sync/speedup_vs_JDK111",
        "fig4",
        Some("ThinLock"),
        "ratio",
        GateClass::Ratio,
        Direction::HigherIsBetter,
        3.7,
    ));
    r.push(BenchRecord::scalar(
        "table1/javac/syncs_per_object",
        "table1",
        None,
        "ratio",
        GateClass::Exact,
        Direction::Informational,
        22.653846153846153,
    ));
    r
}

#[test]
fn schema_round_trips_exactly() {
    let report = sample_report();
    let json = report.to_json();
    let parsed = BenchReport::from_json(&json).expect("own output parses");
    assert_eq!(parsed, report, "serialize -> parse must be identity");
    // And the re-serialization is byte-identical (floats are written
    // shortest-roundtrip, parsed correctly-rounded).
    assert_eq!(parsed.to_json(), json);
}

#[test]
fn from_json_rejects_garbage_and_wrong_versions() {
    assert!(BenchReport::from_json("not json").is_err());
    assert!(BenchReport::from_json("{}").is_err());
    let bumped =
        sample_report()
            .to_json()
            .replacen("\"schema_version\":1", "\"schema_version\":999", 1);
    let err = BenchReport::from_json(&bumped).unwrap_err();
    assert!(err.to_string().contains("schema_version"));
}

#[test]
fn summary_statistics_are_recorded() {
    let report = sample_report();
    let rec = report.find("fig4/Sync/ThinLock").expect("timed record");
    let s: Summary = rec.summary.expect("timed records carry a summary");
    // The gated value is the fastest sample (noise-robust on a shared
    // host); the summary keeps the distribution.
    assert_eq!(rec.value, 32.9);
    assert_eq!(s.median, 33.3);
    assert_eq!(s.samples, 5);
    assert!(s.ci_lo <= s.median && s.median <= s.ci_hi);
    // Deterministic: summarizing the same samples with the id-derived
    // seed reproduces the stored summary bit-for-bit.
    let again = summarize(
        &[33.1, 32.9, 34.0, 33.3, 40.2],
        thinlock_bench::benchjson::id_seed("fig4/Sync/ThinLock"),
    );
    assert_eq!(again, s);
}

#[test]
fn gate_passes_within_noise_and_fails_on_2x_regression() {
    let baseline = sample_report();

    // Within noise: +10% on a micro cell, tiny ratio wobble.
    let mut within = baseline.clone();
    within.benchmarks[0].value *= 1.10;
    within.benchmarks[1].value *= 0.95;
    let outcome = compare(&baseline, &within, &Tolerances::default(), false);
    assert!(outcome.pass(), "{}", outcome.render());

    // The acceptance case: a synthetic 2x regression on the Sync fast
    // path must fail the gate.
    let mut regressed = baseline.clone();
    regressed.benchmarks[0].value *= 2.0;
    let outcome = compare(&baseline, &regressed, &Tolerances::default(), false);
    assert!(!outcome.pass(), "2x regression must fail");
    let row = outcome
        .rows
        .iter()
        .find(|r| r.id == "fig4/Sync/ThinLock")
        .unwrap();
    assert_eq!(row.verdict, Verdict::Regressed);
    assert!(outcome.render().contains("REGRESSED"));

    // An improvement beyond tolerance passes and is labelled as such.
    let mut improved = baseline.clone();
    improved.benchmarks[0].value *= 0.25;
    let outcome = compare(&baseline, &improved, &Tolerances::default(), false);
    assert!(outcome.pass());
    assert_eq!(outcome.count(Verdict::Improved), 1);
}

#[test]
fn gate_round_trips_through_json() {
    // The real pipeline always goes through files; make sure verdicts
    // survive serialization of both sides.
    let baseline = sample_report();
    let mut regressed = baseline.clone();
    regressed.benchmarks[0].value *= 2.0;
    let b = BenchReport::from_json(&baseline.to_json()).unwrap();
    let c = BenchReport::from_json(&regressed.to_json()).unwrap();
    assert!(!compare(&b, &c, &Tolerances::default(), false).pass());
    let b2 = BenchReport::from_json(&baseline.to_json()).unwrap();
    assert!(compare(&b, &b2, &Tolerances::default(), false).pass());
}

/// The smoke test the check.sh fast tier relies on: a full `all` run at
/// tiny iteration counts must emit exactly the expected id set. This is
/// the slowest test in the suite (it replays every trace three times per
/// protocol), but it is what proves `reproduce --json` and the committed
/// baseline can never drift apart silently.
#[test]
fn tiny_all_run_emits_every_expected_id() {
    let report = report::run_sections(&["all".to_string()], 300, 50_000, None, None)
        .expect("tiny reproduction run succeeds");
    let got: BTreeSet<&str> = report.benchmarks.iter().map(|r| r.id.as_str()).collect();
    let want_vec = report::expected_ids();
    let want: BTreeSet<&str> = want_vec.iter().map(String::as_str).collect();
    let missing: Vec<&&str> = want.difference(&got).collect();
    let extra: Vec<&&str> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "id drift — missing: {missing:?}, unexpected: {extra:?}"
    );
    assert_eq!(report.benchmarks.len(), want_vec.len(), "no duplicate ids");
    // The report must also survive its own serialization.
    let parsed = BenchReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
}
