//! Randomized integration tests: arbitrary well-formed lock traces
//! replay successfully and equivalently under every protocol, and the
//! characterizer agrees with an independent reference computation.
//! Driven by the in-repo deterministic PRNG.

use thinlock_bench::ProtocolKind;
use thinlock_runtime::prng::Prng;
use thinlock_trace::characterize::characterize;
use thinlock_trace::generator::{generate, LockTrace, TraceConfig, TraceOp};
use thinlock_trace::replay::replay;
use thinlock_trace::table1::MACRO_BENCHMARKS;

const CASES: usize = 48;

/// A random generator configuration — small enough to replay dozens of
/// cases quickly.
fn gen_config(rng: &mut Prng) -> TraceConfig {
    TraceConfig {
        scale: 1 + rng.next_below(u64::MAX / 2),
        seed: rng.next_u64(),
        max_objects: rng.range_u32(1, 201),
        max_lock_ops: 1 + rng.next_below(500),
        skew: rng.range_f64(1.5),
        work_per_sync: 0, // keep replays fast; work is timing-only
        work_per_alloc: 0,
    }
}

fn gen_profile_index(rng: &mut Prng) -> usize {
    rng.range_usize(0, MACRO_BENCHMARKS.len())
}

/// Every generated trace is well-formed by its own validator.
#[test]
fn generated_traces_validate() {
    let mut rng = Prng::seed_from_u64(0x4e91_0001);
    for _ in 0..CASES {
        let cfg = gen_config(&mut rng);
        let pi = gen_profile_index(&mut rng);
        let trace = generate(&MACRO_BENCHMARKS[pi], &cfg);
        assert!(trace.validate().is_ok());
        assert!(trace.lock_ops() >= u64::from(trace.sync_objects()));
    }
}

/// Generation is a pure function of (profile, config).
#[test]
fn generation_is_deterministic() {
    let mut rng = Prng::seed_from_u64(0x4e91_0002);
    for _ in 0..CASES {
        let cfg = gen_config(&mut rng);
        let pi = gen_profile_index(&mut rng);
        let a = generate(&MACRO_BENCHMARKS[pi], &cfg);
        let b = generate(&MACRO_BENCHMARKS[pi], &cfg);
        assert_eq!(a, b);
    }
}

/// The characterizer matches an independent reference computation.
#[test]
fn characterizer_matches_reference() {
    let mut rng = Prng::seed_from_u64(0x4e91_0003);
    for _ in 0..CASES {
        let cfg = gen_config(&mut rng);
        let pi = gen_profile_index(&mut rng);
        let trace = generate(&MACRO_BENCHMARKS[pi], &cfg);
        let c = characterize(&trace);

        // Reference computation, written differently on purpose.
        let mut allocs = 0u64;
        let mut locks = 0u64;
        let mut depth = std::collections::HashMap::new();
        let mut touched = std::collections::HashSet::new();
        let mut first_locks = 0u64;
        for op in trace.ops() {
            match *op {
                TraceOp::Alloc => allocs += 1,
                TraceOp::Lock(o) => {
                    locks += 1;
                    touched.insert(o);
                    let d = depth.entry(o).or_insert(0u32);
                    if *d == 0 {
                        first_locks += 1;
                    }
                    *d += 1;
                }
                TraceOp::Unlock(o) => {
                    *depth.get_mut(&o).unwrap() -= 1;
                }
                TraceOp::Work(_) => {}
            }
        }
        assert_eq!(c.objects_created, allocs);
        assert_eq!(c.sync_operations, locks);
        assert_eq!(c.synchronized_objects, touched.len() as u64);
        assert_eq!(c.depth_histogram[0], first_locks);
    }
}

/// Replay succeeds under every protocol and performs exactly the
/// trace's operations, leaving every monitor released.
#[test]
fn replay_is_protocol_independent() {
    let mut rng = Prng::seed_from_u64(0x4e91_0004);
    for _ in 0..CASES {
        let cfg = gen_config(&mut rng);
        let pi = gen_profile_index(&mut rng);
        let trace = generate(&MACRO_BENCHMARKS[pi], &cfg);
        let mut per_protocol = Vec::new();
        for kind in ProtocolKind::ALL_BACKENDS {
            let p = kind.build(trace.required_heap_capacity(), 0);
            let reg = p.registry().register().unwrap();
            let out = replay(&*p, &trace, reg.token()).unwrap();
            assert_eq!(out.lock_ops, trace.lock_ops());
            assert_eq!(out.unlock_ops, trace.lock_ops());
            assert_eq!(out.allocs, u64::from(trace.total_objects()));
            // Nothing is left held.
            for obj in p.heap().iter() {
                assert!(!p.holds_lock(obj, reg.token()));
            }
            per_protocol.push((out.allocs, out.lock_ops));
        }
        assert!(per_protocol.windows(2).all(|w| w[0] == w[1]));
    }
}

/// A hand-built pathological trace (deep nesting on one object, many cold
/// objects) exercises the same paths outside the randomized sweeps.
#[test]
fn pathological_trace_replays_everywhere() {
    let mut ops = Vec::new();
    for _ in 0..300 {
        ops.push(TraceOp::Alloc);
    }
    // Deep nesting bursts on object 0 (depth 4, the paper's max).
    for _ in 0..50 {
        for _ in 0..4 {
            ops.push(TraceOp::Lock(0));
        }
        for _ in 0..4 {
            ops.push(TraceOp::Unlock(0));
        }
    }
    // One touch each on the cold tail.
    for o in 1..300u32 {
        ops.push(TraceOp::Lock(o));
        ops.push(TraceOp::Unlock(o));
    }
    let trace = LockTrace::from_ops("pathological", ops).expect("well-formed");
    assert_eq!(trace.lock_ops(), 50 * 4 + 299);
    for kind in ProtocolKind::ALL_BACKENDS {
        let p = kind.build(trace.required_heap_capacity(), 0);
        let reg = p.registry().register().unwrap();
        let out = replay(&*p, &trace, reg.token()).unwrap();
        assert_eq!(out.lock_ops, trace.lock_ops(), "{kind}");
    }
}
