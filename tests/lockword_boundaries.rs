//! Boundary-value property test for the lock-word encoding (DESIGN.md
//! §2): every field round-trips at its limits, and encode/decode is a
//! bijection over the word's legal states.
//!
//! The paper's entire protocol rests on the 24-bit lock field packing
//! `(shape, owner, count)` — or `(shape, monitor index)` — next to the
//! hash bits without loss. These tests enumerate the corner values of
//! each field (zero, one, max-1, max) in full cross product, plus a
//! deterministic pseudo-random sweep of interior values, and assert the
//! decoded state reconstructs the exact input and the exact bits.

use thinlock_runtime::lockword::{
    LockState, LockWord, MonitorIndex, ThreadIndex, COUNT_SHIFT, HEADER_BITS_MASK, MONITOR_SHIFT,
    SHAPE_BIT, TID_SHIFT,
};
use thinlock_runtime::prng::Prng;

const HEADER_CORNERS: [u8; 5] = [0x00, 0x01, 0x7F, 0x80, 0xFF];
// Thread index 0 is reserved: an all-zero tid field means "unlocked".
const TID_CORNERS: [u16; 4] = [1, 2, ThreadIndex::MAX - 1, ThreadIndex::MAX];
const COUNT_CORNERS: [u8; 4] = [0, 1, 0xFE, 0xFF];
const MONITOR_CORNERS: [u32; 4] = [0, 1, MonitorIndex::MAX - 1, MonitorIndex::MAX];

/// Builds a thin word owned by `owner` with stored count `count` (i.e.
/// `count + 1` acquisitions) over header byte `header`, through the
/// public increment API — the same path the protocol takes.
fn thin_word(header: u8, owner: ThreadIndex, count: u8) -> LockWord {
    let mut word = LockWord::new_unlocked(header).locked_once_by(owner);
    for _ in 0..count {
        word = word.with_count_incremented();
    }
    word
}

/// Asserts `word` decodes to exactly the thin state it was built from,
/// and that the raw bits place every field where the layout promises.
fn assert_thin_roundtrip(word: LockWord, header: u8, owner: ThreadIndex, count: u8) {
    assert_eq!(word.header_bits(), header, "{word:?}: header byte lost");
    assert_eq!(word.thin_owner(), Some(owner), "{word:?}: owner lost");
    assert_eq!(word.thin_count(), count, "{word:?}: count lost");
    assert!(word.is_thin_shape() && !word.is_fat() && !word.is_unlocked());
    assert_eq!(
        word.state(),
        LockState::Thin { owner, count },
        "{word:?}: structured decode disagrees"
    );
    // Bit-level layout: header in 0..8, count in 8..16, tid in 16..31,
    // shape bit clear.
    let bits = word.bits();
    assert_eq!((bits & HEADER_BITS_MASK) as u8, header);
    assert_eq!(((bits >> COUNT_SHIFT) & 0xFF) as u8, count);
    assert_eq!(((bits >> TID_SHIFT) & 0x7FFF) as u16, owner.get());
    assert_eq!(bits & SHAPE_BIT, 0, "{word:?}: thin word has shape bit");
    // Bits round-trip: from_bits is the inverse of bits().
    assert_eq!(LockWord::from_bits(bits), word);
    // Owner-shifted predicates agree with the decoded owner.
    assert!(word.is_thin_owned_by(owner.shifted()));
    assert_eq!(word.is_locked_once_by(owner.shifted()), count == 0);
}

/// Every (header, owner, count) corner combination round-trips, and
/// increments/decrements are inverse bijections along the way.
#[test]
fn thin_field_corners_roundtrip() {
    for &header in &HEADER_CORNERS {
        for &tid in &TID_CORNERS {
            let owner = ThreadIndex::new(tid).expect("corner tid is legal");
            for &count in &COUNT_CORNERS {
                let word = thin_word(header, owner, count);
                assert_thin_roundtrip(word, header, owner, count);
                // Decrement is the exact inverse of increment.
                if count > 0 {
                    assert_eq!(word.with_count_decremented().with_count_incremented(), word);
                    assert_thin_roundtrip(word.with_count_decremented(), header, owner, count - 1);
                }
                // Nesting is allowed exactly below the stored-count max.
                assert_eq!(word.can_nest(owner.shifted()), count < 0xFF);
                // Clearing the lock field releases without touching the
                // header byte.
                let cleared = word.with_lock_field_clear();
                assert!(cleared.is_unlocked());
                assert_eq!(cleared.header_bits(), header);
                assert_eq!(cleared, LockWord::new_unlocked(header));
            }
        }
    }
}

/// Every (header, monitor) corner combination round-trips through the
/// fat shape, preserving the header byte and setting only the shape bit
/// plus the 23-bit monitor index.
#[test]
fn fat_field_corners_roundtrip() {
    for &header in &HEADER_CORNERS {
        for &raw in &MONITOR_CORNERS {
            let index = MonitorIndex::new(raw).expect("corner index is legal");
            let word = LockWord::new_unlocked(header).inflated(index);
            assert!(word.is_fat() && !word.is_thin_shape() && !word.is_unlocked());
            assert_eq!(word.header_bits(), header, "{word:?}: header byte lost");
            assert_eq!(word.monitor_index(), Some(index), "{word:?}: index lost");
            assert_eq!(word.state(), LockState::Fat { index });
            let bits = word.bits();
            assert_eq!((bits & HEADER_BITS_MASK) as u8, header);
            assert_ne!(bits & SHAPE_BIT, 0, "{word:?}: fat word missing shape bit");
            assert_eq!((bits >> MONITOR_SHIFT) & 0x7F_FFFF, raw);
            assert_eq!(LockWord::from_bits(bits), word);
            // Inflating from a *held* thin word must produce the same
            // result as inflating from unlocked: only header bits
            // survive inflation.
            let held = thin_word(header, ThreadIndex::new(7).unwrap(), 3);
            assert_eq!(held.inflated(index), word);
        }
    }
}

/// Out-of-range field values are rejected at construction — the word
/// can never encode an index that would not decode back.
#[test]
fn out_of_range_fields_are_rejected() {
    assert!(ThreadIndex::new(ThreadIndex::MAX).is_ok());
    assert!(ThreadIndex::new(ThreadIndex::MAX + 1).is_err());
    assert!(ThreadIndex::new(u16::MAX).is_err());
    assert!(
        ThreadIndex::new(0).is_err(),
        "tid 0 must stay reserved for the unlocked encoding"
    );
    assert!(MonitorIndex::new(MonitorIndex::MAX).is_ok());
    assert!(MonitorIndex::new(MonitorIndex::MAX + 1).is_err());
    assert!(MonitorIndex::new(u32::MAX).is_err());
}

/// Deterministic pseudo-random sweep of interior values: the corners
/// prove the edges, this proves there is no lossy combination hiding in
/// the middle of a field's range.
#[test]
fn interior_values_roundtrip_under_random_sweep() {
    let mut rng = Prng::seed_from_u64(0x10c4_303d);
    for _ in 0..2_000 {
        let header = (rng.next_u64() & 0xFF) as u8;
        let tid = rng.range_u32(1, u32::from(ThreadIndex::MAX) + 1) as u16;
        let count = (rng.next_u64() & 0xFF) as u8;
        let owner = ThreadIndex::new(tid).expect("in range");
        assert_thin_roundtrip(thin_word(header, owner, count), header, owner, count);

        let raw = rng.range_u32(0, MonitorIndex::MAX + 1);
        let index = MonitorIndex::new(raw).expect("in range");
        let fat = LockWord::new_unlocked(header).inflated(index);
        assert_eq!(fat.monitor_index(), Some(index));
        assert_eq!(fat.header_bits(), header);
        assert_eq!(LockWord::from_bits(fat.bits()), fat);
    }
}

/// Two distinct legal states never encode to the same bits (injectivity
/// probe over the corner grid, where collisions would cluster).
#[test]
fn corner_encodings_are_distinct() {
    let mut seen = std::collections::HashSet::new();
    for &header in &HEADER_CORNERS {
        assert!(seen.insert(LockWord::new_unlocked(header).bits()));
        for &tid in &TID_CORNERS {
            let owner = ThreadIndex::new(tid).unwrap();
            for &count in &COUNT_CORNERS {
                assert!(
                    seen.insert(thin_word(header, owner, count).bits()),
                    "thin({header:#04x}, t{tid}, {count}) collides"
                );
            }
        }
        for &raw in &MONITOR_CORNERS {
            let index = MonitorIndex::new(raw).unwrap();
            assert!(
                seen.insert(LockWord::new_unlocked(header).inflated(index).bits()),
                "fat({header:#04x}, m{raw}) collides"
            );
        }
    }
}
