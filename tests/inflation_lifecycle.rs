//! Integration tests of the thin-lock state machine across crates: the
//! one-way thin → fat transition under each of its three triggers, header
//! preservation, and the behaviour of every fast-path variant.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use thinlock::config::{DynamicConfig, FastPathConfig, StaticKernelCas, StaticMp, StaticUp};
use thinlock::ThinLocks;
use thinlock_runtime::arch::ArchProfile;
use thinlock_runtime::heap::Heap;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_runtime::registry::ThreadRegistry;
use thinlock_runtime::stats::LockStats;

fn thin_with<C: FastPathConfig>(config: C) -> ThinLocks<C> {
    ThinLocks::with_config(
        Arc::new(Heap::with_capacity(8)),
        ThreadRegistry::new(),
        config,
    )
}

/// Exercises all three inflation triggers under one configuration.
fn exercise_inflation_triggers<C: FastPathConfig>(locks: Arc<ThinLocks<C>>) {
    // Trigger 1: count overflow at the 257th acquisition.
    {
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let obj = locks.heap().alloc().unwrap();
        let hash = locks.lock_word(obj).header_bits();
        for _ in 0..257 {
            locks.lock(obj, t).unwrap();
        }
        assert!(locks.lock_word(obj).is_fat(), "overflow inflates");
        for _ in 0..257 {
            locks.unlock(obj, t).unwrap();
        }
        assert!(locks.lock_word(obj).is_fat(), "inflation is permanent");
        assert_eq!(locks.lock_word(obj).header_bits(), hash, "header kept");
    }

    // Trigger 2: wait/notify on a thin-held lock.
    {
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let obj = locks.heap().alloc().unwrap();
        locks.lock(obj, t).unwrap();
        assert!(locks.lock_word(obj).is_thin_shape());
        let out = locks.wait(obj, t, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(out, thinlock_runtime::protocol::WaitOutcome::TimedOut);
        assert!(locks.lock_word(obj).is_fat(), "wait inflates");
        locks.unlock(obj, t).unwrap();
    }

    // Trigger 3: contention.
    {
        let obj = locks.heap().alloc().unwrap();
        let barrier = Arc::new(Barrier::new(2));
        let holder = {
            let locks = Arc::clone(&locks);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let reg = locks.registry().register().unwrap();
                let t = reg.token();
                locks.lock(obj, t).unwrap();
                barrier.wait();
                std::thread::sleep(Duration::from_millis(20));
                locks.unlock(obj, t).unwrap();
            })
        };
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        barrier.wait();
        locks.lock(obj, t).unwrap();
        assert!(locks.lock_word(obj).is_fat(), "contention inflates");
        locks.unlock(obj, t).unwrap();
        holder.join().unwrap();
    }
}

#[test]
fn inflation_triggers_default_config() {
    exercise_inflation_triggers(Arc::new(ThinLocks::with_capacity(8)));
}

#[test]
fn inflation_triggers_static_up() {
    exercise_inflation_triggers(Arc::new(thin_with(StaticUp)));
}

#[test]
fn inflation_triggers_static_mp() {
    exercise_inflation_triggers(Arc::new(thin_with(StaticMp)));
}

#[test]
fn inflation_triggers_kernel_cas() {
    exercise_inflation_triggers(Arc::new(thin_with(StaticKernelCas)));
}

#[test]
fn inflation_triggers_cas_unlock_variant() {
    exercise_inflation_triggers(Arc::new(thin_with(
        DynamicConfig::new(ArchProfile::PowerPcMp).with_cas_unlock(),
    )));
}

#[test]
fn inflation_triggers_outlined_variant() {
    exercise_inflation_triggers(Arc::new(thin_with(
        DynamicConfig::new(ArchProfile::PowerPcUp).with_outlined_fast_path(),
    )));
}

#[test]
fn stats_record_each_inflation_cause() {
    let stats = Arc::new(LockStats::new());
    let locks = Arc::new(ThinLocks::with_capacity(8).with_stats(Arc::clone(&stats)));
    exercise_inflation_triggers(Arc::clone(&locks));
    let snap = stats.snapshot();
    assert_eq!(snap.inflations[0], 1, "one contention inflation");
    assert_eq!(snap.inflations[1], 1, "one overflow inflation");
    assert_eq!(snap.inflations[2], 1, "one wait inflation");
    assert_eq!(locks.inflated_count(), 3);
}

#[test]
fn object_capacity_bounds_monitor_table() {
    // The monitor table is sized to the heap: inflate every object and the
    // table is exactly full — no overflow is possible by construction.
    let locks = ThinLocks::with_capacity(5);
    let reg = locks.registry().register().unwrap();
    let t = reg.token();
    for _ in 0..5 {
        let obj = locks.heap().alloc().unwrap();
        locks.lock(obj, t).unwrap();
        locks.notify(obj, t).unwrap(); // force inflation
        locks.unlock(obj, t).unwrap();
    }
    assert_eq!(locks.inflated_count(), 5);
}

#[test]
fn many_objects_inflate_independently_under_contention() {
    let locks = Arc::new(ThinLocks::with_capacity(16));
    let objs: Vec<_> = (0..8).map(|_| locks.heap().alloc().unwrap()).collect();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let locks = Arc::clone(&locks);
            let objs = objs.clone();
            scope.spawn(move || {
                let reg = locks.registry().register().unwrap();
                let t = reg.token();
                for round in 0..200 {
                    let obj = objs[round % objs.len()];
                    locks.lock(obj, t).unwrap();
                    locks.unlock(obj, t).unwrap();
                }
            });
        }
    });
    // However the schedule went, every object must end unlocked and the
    // monitor count bounded by the object count.
    let reg = locks.registry().register().unwrap();
    for &obj in &objs {
        assert!(!locks.holds_lock(obj, reg.token()));
    }
    assert!(locks.inflated_count() <= objs.len());
}
