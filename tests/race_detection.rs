//! Static-vs-dynamic race-detection cross-check (DESIGN.md §13).
//!
//! Every program in the concurrent library carries a ground-truth race
//! label. The static guards pass must reproduce that label from the
//! bytecode alone, and the dynamic Eraser sanitizer must reproduce it
//! from seeded concurrent replays — on *every* seed, not just a lucky
//! schedule. The two detectors are independent implementations of the
//! lockset idea, so their agreement on the whole library is the
//! strongest in-repo evidence either one is right.

use std::sync::Arc;

use thinlock_analysis::escape::EscapeContext;
use thinlock_analysis::guards::EntryRole;
use thinlock_analysis::{analyze_program, analyze_program_with_roles};
use thinlock_obs::EraserSanitizer;
use thinlock_runtime::events::TraceSink;
use thinlock_runtime::prng::Prng;
use thinlock_trace::vmreplay::run_concurrent_program;
use thinlock_vm::programs::{concurrent_library, ConcurrentProgram, MicroBench};

const SEEDS: usize = 64;
const ITERS: u32 = 64;

fn roles_of(entry: &ConcurrentProgram) -> Vec<EntryRole> {
    entry
        .roles
        .iter()
        .map(|r| EntryRole {
            name: r.method.to_string(),
            method: entry.program.method_id(r.method).unwrap_or(0),
            threads: r.threads,
        })
        .collect()
}

/// Runs one seeded replay of `entry` under a fresh sanitizer and returns
/// the racy `(object, field)` pairs it reported.
fn sanitize_one(entry: &ConcurrentProgram, seed: u64) -> Vec<(usize, u16)> {
    let sanitizer = Arc::new(EraserSanitizer::new(
        entry.program.pool_size() as usize + 1,
        usize::from(entry.fields.max(1)),
    ));
    let sink: Arc<dyn TraceSink> = Arc::clone(&sanitizer) as Arc<dyn TraceSink>;
    run_concurrent_program(entry, ITERS, seed, Some(sink))
        .unwrap_or_else(|e| panic!("{}: replay failed: {e}", entry.name));
    sanitizer.racy_fields()
}

/// The static guards pass reproduces every ground-truth label, and the
/// expected racy fields are all among its candidates.
#[test]
fn static_verdicts_match_ground_truth() {
    for entry in concurrent_library() {
        let ctx = EscapeContext::threads(entry.total_threads());
        let report = analyze_program_with_roles(&entry.program, &ctx, &roles_of(&entry));
        assert_eq!(
            !report.guards.is_race_free(),
            entry.racy,
            "{}: static verdict disagrees with ground truth",
            entry.name
        );
        for &(pool, field) in &entry.racy_fields {
            assert!(
                report
                    .guards
                    .races
                    .iter()
                    .any(|r| (r.pool, r.field) == (pool, field)),
                "{}: expected race on pool[{pool}].f{field} not among candidates",
                entry.name
            );
        }
        if !entry.racy {
            assert!(
                !report.guards.facts.is_empty(),
                "{}: clean concurrent program must yield @GuardedBy facts",
                entry.name
            );
        }
    }
}

/// The sanitizer never reports on a statically race-free program, on
/// any seed: a clean program's every schedule keeps locksets non-empty.
#[test]
fn sanitizer_is_silent_on_clean_programs_across_seeds() {
    let mut rng = Prng::seed_from_u64(0x5ace_0001);
    for entry in concurrent_library().into_iter().filter(|e| !e.racy) {
        for _ in 0..SEEDS {
            let racy = sanitize_one(&entry, rng.next_u64());
            assert!(
                racy.is_empty(),
                "{}: sanitizer false positive on {racy:?}",
                entry.name
            );
        }
    }
}

/// The sanitizer reports every seeded racy program on every seed, and
/// names exactly the expected fields. Each racy program has at least
/// two fully-unguarded writer threads, so the report is
/// schedule-independent: whichever thread touches the field second
/// empties the candidate lockset.
#[test]
fn sanitizer_flags_racy_programs_on_every_seed() {
    let mut rng = Prng::seed_from_u64(0x5ace_0002);
    for entry in concurrent_library().into_iter().filter(|e| e.racy) {
        for _ in 0..SEEDS {
            let racy = sanitize_one(&entry, rng.next_u64());
            // Pool objects are allocated into the heap in pool order, so
            // a pool index doubles as the sanitizer's object index.
            for &(pool, field) in &entry.racy_fields {
                assert!(
                    racy.contains(&(pool as usize, field)),
                    "{}: missed race on pool[{pool}].f{field} (got {racy:?})",
                    entry.name
                );
            }
            for &(obj, field) in &racy {
                assert!(
                    entry.racy_fields.contains(&(obj as u32, field)),
                    "{}: spurious report on obj {obj} field {field}",
                    entry.name
                );
            }
        }
    }
}

/// The headline contract: on every program and every seed, the dynamic
/// verdict equals the static verdict equals the ground-truth label.
#[test]
fn static_and_dynamic_detectors_agree_on_every_seed() {
    let mut rng = Prng::seed_from_u64(0x5ace_0003);
    for entry in concurrent_library() {
        let ctx = EscapeContext::threads(entry.total_threads());
        let report = analyze_program_with_roles(&entry.program, &ctx, &roles_of(&entry));
        let static_racy = !report.guards.is_race_free();
        for _ in 0..8 {
            let dynamic_racy = !sanitize_one(&entry, rng.next_u64()).is_empty();
            assert_eq!(
                static_racy, dynamic_racy,
                "{}: static and dynamic verdicts disagree",
                entry.name
            );
            assert_eq!(dynamic_racy, entry.racy, "{}: wrong verdict", entry.name);
        }
    }
}

/// Default-role analysis (no explicit contract) still finds the races
/// in single-role programs: `analyze_program` seeds `main` with the
/// context's thread count.
#[test]
fn default_roles_cover_single_entry_programs() {
    for entry in concurrent_library() {
        if entry.roles.len() != 1 || entry.roles[0].method != "main" {
            continue;
        }
        let ctx = EscapeContext::threads(entry.total_threads());
        let report = analyze_program(&entry.program, &ctx);
        assert_eq!(
            !report.guards.is_race_free(),
            entry.racy,
            "{}: default-role verdict disagrees",
            entry.name
        );
    }
}

/// The sequential micro-benchmark library is race-free under the guards
/// pass: locked counters stay locked, and single-threaded contexts can
/// never race.
#[test]
fn sequential_library_has_no_race_candidates() {
    for bench in MicroBench::table2()
        .into_iter()
        .chain([MicroBench::MixedSync])
    {
        let ctx = EscapeContext::threads(bench.thread_count());
        let report = analyze_program(&bench.program(), &ctx);
        assert!(
            report.guards.races.is_empty(),
            "{bench}: unexpected race candidates {:?}",
            report.guards.races
        );
    }
}
