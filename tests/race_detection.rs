//! Static-vs-dynamic race-detection cross-check (DESIGN.md §13, §14).
//!
//! Every program in the concurrent library carries a ground-truth race
//! label. The static guards pass must reproduce that label from the
//! bytecode alone, and the dynamic Eraser sanitizer must reproduce it
//! from concurrent replays. For the 2-thread programs the replays are
//! no longer sampled: the `lockmc` cooperative scheduler explores
//! *every* interleaving of their protocol steps (DPOR-reduced), and the
//! sanitizer verdict is asserted on each one — the seeded-schedule
//! sampling survives only for the 3-thread programs, whose state space
//! the seeds still cover more cheaply than exhaustion would. The two
//! detectors are independent implementations of the lockset idea, so
//! their agreement on the whole library is the strongest in-repo
//! evidence either one is right.

use std::sync::Arc;

use thinlock::ThinLocks;
use thinlock_analysis::escape::EscapeContext;
use thinlock_analysis::guards::EntryRole;
use thinlock_analysis::{analyze_program, analyze_program_with_roles};
use thinlock_modelcheck::{explore_with, run_bodies, CoopScheduler, Limits, Mode};
use thinlock_obs::EraserSanitizer;
use thinlock_runtime::events::TraceSink;
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::prng::Prng;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_runtime::registry::ThreadRegistry;
use thinlock_runtime::schedule::Schedule;
use thinlock_trace::vmreplay::run_concurrent_program;
use thinlock_vm::programs::{concurrent_library, ConcurrentProgram, MicroBench};
use thinlock_vm::{Value, Vm};

const SEEDS: usize = 64;
const ITERS: u32 = 64;
/// Loop iterations per worker under exhaustive exploration — enough to
/// include a re-acquire of every lock (so lockset refinement reaches a
/// fixpoint) while keeping the full interleaving space enumerable.
const EXPLORE_ITERS: i32 = 2;

fn roles_of(entry: &ConcurrentProgram) -> Vec<EntryRole> {
    entry
        .roles
        .iter()
        .map(|r| EntryRole {
            name: r.method.to_string(),
            method: entry.program.method_id(r.method).unwrap_or(0),
            threads: r.threads,
        })
        .collect()
}

/// Runs one seeded replay of `entry` under a fresh sanitizer and returns
/// the racy `(object, field)` pairs it reported.
fn sanitize_one(entry: &ConcurrentProgram, seed: u64) -> Vec<(usize, u16)> {
    let sanitizer = Arc::new(EraserSanitizer::new(
        entry.program.pool_size() as usize + 1,
        usize::from(entry.fields.max(1)),
    ));
    let sink: Arc<dyn TraceSink> = Arc::clone(&sanitizer) as Arc<dyn TraceSink>;
    run_concurrent_program(entry, ITERS, seed, Some(sink))
        .unwrap_or_else(|e| panic!("{}: replay failed: {e}", entry.name));
    sanitizer.racy_fields()
}

/// Checks one completed interleaving's sanitizer verdict against the
/// ground-truth label.
fn assert_verdict(entry: &ConcurrentProgram, racy: &[(usize, u16)]) {
    assert_eq!(
        !racy.is_empty(),
        entry.racy,
        "{}: sanitizer verdict {racy:?} disagrees with ground truth on an \
         exhaustively explored interleaving",
        entry.name
    );
    for &(pool, field) in &entry.racy_fields {
        assert!(
            racy.contains(&(pool as usize, field)),
            "{}: missed race on pool[{pool}].f{field} (got {racy:?})",
            entry.name
        );
    }
    for &(obj, field) in racy {
        assert!(
            entry.racy_fields.contains(&(obj as u32, field)),
            "{}: spurious report on obj {obj} field {field}",
            entry.name
        );
    }
}

/// Explores every interleaving of a 2-thread program's protocol steps
/// under the `lockmc` scheduler, asserting the sanitizer verdict on
/// each completed execution. Returns (executions, verdicts checked).
fn explore_exhaustively(entry: &ConcurrentProgram) -> (u64, u64) {
    let sched = Arc::new(CoopScheduler::new());
    let limits = Limits {
        max_executions: 500_000,
        max_steps: 10_000,
    };
    let mut checked = 0u64;
    let out = explore_with(Mode::Dpor, &limits, |pick| {
        // Fresh environment per execution: heap, locks, sanitizer.
        let pool_size = entry.program.pool_size() as usize;
        let fields = usize::from(entry.fields.max(1));
        let heap = Arc::new(Heap::with_capacity_and_fields(pool_size + 1, fields));
        let sanitizer = Arc::new(EraserSanitizer::new(pool_size + 1, fields));
        let locks = Arc::new(
            ThinLocks::new(heap, ThreadRegistry::new())
                .with_schedule(Arc::clone(&sched) as Arc<dyn Schedule>)
                .with_trace_sink(Arc::clone(&sanitizer) as Arc<dyn TraceSink>),
        );
        let pool: Vec<ObjRef> = (0..pool_size)
            .map(|_| locks.heap().alloc().expect("pool fits"))
            .collect();
        let mut regs = Vec::new();
        let mut tokens = Vec::new();
        let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for role in &entry.roles {
            for _ in 0..role.threads {
                let reg = locks.registry().register().expect("worker registers");
                tokens.push(reg.token());
                let token = reg.token();
                regs.push(reg);
                let locks = Arc::clone(&locks);
                let pool = pool.clone();
                let program = &entry.program;
                let method = role.method;
                let name = entry.name;
                bodies.push(Box::new(move || {
                    let vm =
                        Vm::new(&*locks, program, pool).unwrap_or_else(|e| panic!("{name}: {e}"));
                    vm.run(method, token, &[Value::Int(EXPLORE_ITERS)])
                        .unwrap_or_else(|e| panic!("{name}/{method}: {e}"));
                }));
            }
        }
        let rec = run_bodies(&locks, &sched, &tokens, bodies, limits.max_steps, pick);
        if !rec.aborted && !rec.truncated && rec.violation.is_none() {
            checked += 1;
            assert_verdict(entry, &sanitizer.racy_fields());
        }
        rec
    });
    assert!(
        out.stats.complete,
        "{}: interleaving space not exhausted within {} executions",
        entry.name, limits.max_executions
    );
    assert!(
        out.violation.is_none(),
        "{}: deadlock under exploration: {:?}",
        entry.name,
        out.violation
    );
    assert!(
        checked > 0,
        "{}: no completed execution checked",
        entry.name
    );
    (out.stats.executions, checked)
}

/// The static guards pass reproduces every ground-truth label, and the
/// expected racy fields are all among its candidates.
#[test]
fn static_verdicts_match_ground_truth() {
    for entry in concurrent_library() {
        let ctx = EscapeContext::threads(entry.total_threads());
        let report = analyze_program_with_roles(&entry.program, &ctx, &roles_of(&entry));
        assert_eq!(
            !report.guards.is_race_free(),
            entry.racy,
            "{}: static verdict disagrees with ground truth",
            entry.name
        );
        for &(pool, field) in &entry.racy_fields {
            assert!(
                report
                    .guards
                    .races
                    .iter()
                    .any(|r| (r.pool, r.field) == (pool, field)),
                "{}: expected race on pool[{pool}].f{field} not among candidates",
                entry.name
            );
        }
        if !entry.racy {
            // A clean program proves its discipline either as explicit
            // @GuardedBy facts or — when every lock identity is dynamic
            // (churn-locks) — as unresolved accesses the pass honestly
            // excluded rather than guessed about.
            assert!(
                !report.guards.facts.is_empty() || report.guards.unresolved_accesses > 0,
                "{}: clean concurrent program must yield @GuardedBy facts",
                entry.name
            );
        }
    }
}

/// The 2-thread library programs are checked on *every* interleaving of
/// their protocol steps, not a schedule sample: the model checker's
/// DPOR exploration enumerates the full space and the sanitizer verdict
/// must match ground truth on each completed execution.
#[test]
fn two_thread_programs_verified_on_every_interleaving() {
    let mut covered = 0;
    for entry in concurrent_library()
        .into_iter()
        .filter(|e| e.total_threads() == 2)
    {
        let (executions, checked) = explore_exhaustively(&entry);
        assert!(
            executions >= 1 && checked >= 1,
            "{}: nothing explored",
            entry.name
        );
        covered += 1;
    }
    assert!(
        covered >= 4,
        "library no longer has its 2-thread programs ({covered})"
    );
}

/// The sanitizer never reports on a statically race-free program with
/// more than two threads, on any seed. (2-thread programs are covered
/// exhaustively above.)
#[test]
fn sanitizer_is_silent_on_clean_larger_programs_across_seeds() {
    let mut rng = Prng::seed_from_u64(0x5ace_0001);
    for entry in concurrent_library()
        .into_iter()
        .filter(|e| !e.racy && e.total_threads() > 2)
    {
        for _ in 0..SEEDS {
            let racy = sanitize_one(&entry, rng.next_u64());
            assert!(
                racy.is_empty(),
                "{}: sanitizer false positive on {racy:?}",
                entry.name
            );
        }
    }
}

/// The sanitizer reports every racy program with more than two threads
/// on every seed, and names exactly the expected fields. (2-thread
/// programs are covered exhaustively above.)
#[test]
fn sanitizer_flags_racy_larger_programs_on_every_seed() {
    let mut rng = Prng::seed_from_u64(0x5ace_0002);
    for entry in concurrent_library()
        .into_iter()
        .filter(|e| e.racy && e.total_threads() > 2)
    {
        for _ in 0..SEEDS {
            let racy = sanitize_one(&entry, rng.next_u64());
            // Pool objects are allocated into the heap in pool order, so
            // a pool index doubles as the sanitizer's object index.
            for &(pool, field) in &entry.racy_fields {
                assert!(
                    racy.contains(&(pool as usize, field)),
                    "{}: missed race on pool[{pool}].f{field} (got {racy:?})",
                    entry.name
                );
            }
            for &(obj, field) in &racy {
                assert!(
                    entry.racy_fields.contains(&(obj as u32, field)),
                    "{}: spurious report on obj {obj} field {field}",
                    entry.name
                );
            }
        }
    }
}

/// The headline contract: on every program and every seed, the dynamic
/// verdict equals the static verdict equals the ground-truth label.
#[test]
fn static_and_dynamic_detectors_agree_on_every_seed() {
    let mut rng = Prng::seed_from_u64(0x5ace_0003);
    for entry in concurrent_library() {
        let ctx = EscapeContext::threads(entry.total_threads());
        let report = analyze_program_with_roles(&entry.program, &ctx, &roles_of(&entry));
        let static_racy = !report.guards.is_race_free();
        for _ in 0..8 {
            let dynamic_racy = !sanitize_one(&entry, rng.next_u64()).is_empty();
            assert_eq!(
                static_racy, dynamic_racy,
                "{}: static and dynamic verdicts disagree",
                entry.name
            );
            assert_eq!(dynamic_racy, entry.racy, "{}: wrong verdict", entry.name);
        }
    }
}

/// Default-role analysis (no explicit contract) still finds the races
/// in single-role programs: `analyze_program` seeds `main` with the
/// context's thread count.
#[test]
fn default_roles_cover_single_entry_programs() {
    for entry in concurrent_library() {
        if entry.roles.len() != 1 || entry.roles[0].method != "main" {
            continue;
        }
        let ctx = EscapeContext::threads(entry.total_threads());
        let report = analyze_program(&entry.program, &ctx);
        assert_eq!(
            !report.guards.is_race_free(),
            entry.racy,
            "{}: default-role verdict disagrees",
            entry.name
        );
    }
}

/// The sequential micro-benchmark library is race-free under the guards
/// pass: locked counters stay locked, and single-threaded contexts can
/// never race.
#[test]
fn sequential_library_has_no_race_candidates() {
    for bench in MicroBench::table2()
        .into_iter()
        .chain([MicroBench::MixedSync])
    {
        let ctx = EscapeContext::threads(bench.thread_count());
        let report = analyze_program(&bench.program(), &ctx);
        assert!(
            report.guards.races.is_empty(),
            "{bench}: unexpected race candidates {:?}",
            report.guards.races
        );
    }
}
