//! Integration of the bytecode VM with every locking protocol: the Table 2
//! programs compute identical results regardless of the protocol, the
//! assembler round-trips the generated programs, and synchronized methods
//! interact correctly with inflation.

use std::sync::Arc;

use thinlock_bench::ProtocolKind;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_vm::asm::{assemble, disassemble};
use thinlock_vm::programs::MicroBench;
use thinlock_vm::{Value, Vm};

const ALL_BENCHES: [MicroBench; 9] = [
    MicroBench::NoSync,
    MicroBench::Sync,
    MicroBench::NestedSync,
    MicroBench::MultiSync(4),
    MicroBench::MultiSync(64),
    MicroBench::Call,
    MicroBench::CallSync,
    MicroBench::NestedCallSync,
    MicroBench::MixedSync,
];

fn run_on(kind: ProtocolKind, bench: MicroBench, iters: i32) -> i32 {
    let protocol = kind.build(bench.pool_size() as usize + 1, 1);
    let pool: Vec<ObjRef> = (0..bench.pool_size())
        .map(|_| protocol.heap().alloc().unwrap())
        .collect();
    let program = bench.program();
    let vm = Vm::new(&*protocol, &program, pool).unwrap();
    let reg = protocol.registry().register().unwrap();
    vm.run("main", reg.token(), &[Value::Int(iters)])
        .unwrap()
        .and_then(Value::as_int)
        .unwrap()
}

#[test]
fn every_benchmark_on_every_protocol_returns_iters() {
    for bench in ALL_BENCHES {
        for kind in ProtocolKind::ALL_BACKENDS {
            assert_eq!(run_on(kind, bench, 137), 137, "{kind} / {bench}");
        }
    }
}

#[test]
fn generated_programs_round_trip_through_the_assembler() {
    for bench in ALL_BENCHES {
        let program = bench.program();
        let text = disassemble(&program);
        let back = assemble(&text).unwrap_or_else(|e| panic!("{bench}: {e}\n{text}"));
        assert_eq!(program, back, "{bench}");
    }
}

#[test]
fn assembled_program_runs_like_the_generated_one() {
    let bench = MicroBench::Sync;
    let program = bench.program();
    let reassembled = assemble(&disassemble(&program)).unwrap();

    let protocol = ProtocolKind::ThinLock.build(2, 1);
    let pool = vec![protocol.heap().alloc().unwrap()];
    let reg = protocol.registry().register().unwrap();

    let vm = Vm::new(&*protocol, &reassembled, pool).unwrap();
    let out = vm
        .run("main", reg.token(), &[Value::Int(64)])
        .unwrap()
        .and_then(Value::as_int)
        .unwrap();
    assert_eq!(out, 64);
}

#[test]
fn call_sync_updates_field_identically_across_protocols() {
    for kind in ProtocolKind::ALL_BACKENDS {
        let bench = MicroBench::CallSync;
        let protocol = kind.build(2, 1);
        let pool = vec![protocol.heap().alloc().unwrap()];
        let program = bench.program();
        let vm = Vm::new(&*protocol, &program, pool.clone()).unwrap();
        let reg = protocol.registry().register().unwrap();
        vm.run("main", reg.token(), &[Value::Int(99)]).unwrap();
        let field = protocol
            .heap()
            .field(pool[0], 0)
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(field, 99, "{kind}");
    }
}

#[test]
fn threads_program_totals_are_exact_under_contention() {
    // n threads × iters synchronized increments of the shared field: the
    // monitor must serialize the read-modify-write in `bump`.
    const THREADS: u32 = 4;
    const ITERS: i32 = 500;
    for kind in ProtocolKind::ALL_BACKENDS {
        let protocol: Arc<dyn SyncProtocol> = Arc::from(kind.build(2, 1));
        let shared = protocol.heap().alloc().unwrap();
        // CallSync both locks and mutates a field, making lost updates
        // visible — stronger than the paper's local-counter loop.
        let program = Arc::new(MicroBench::CallSync.program());
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let protocol = Arc::clone(&protocol);
                let program = Arc::clone(&program);
                scope.spawn(move || {
                    let reg = protocol.registry().register().unwrap();
                    let vm = Vm::new(&*protocol, &program, vec![shared]).unwrap();
                    vm.run("main", reg.token(), &[Value::Int(ITERS)]).unwrap();
                });
            }
        });
        let field = protocol
            .heap()
            .field(shared, 0)
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(field, THREADS as i32 * ITERS, "{kind}: lost update");
    }
}

#[test]
fn vm_survives_protocol_inflation_mid_program() {
    // Run NestedCallSync under ThinLocks but force the pool object fat
    // first; the program must behave identically.
    let bench = MicroBench::NestedCallSync;
    let protocol = ProtocolKind::ThinLock.build(2, 1);
    let pool = vec![protocol.heap().alloc().unwrap()];
    let reg = protocol.registry().register().unwrap();
    // Inflate by wait/notify.
    protocol.lock(pool[0], reg.token()).unwrap();
    protocol.notify(pool[0], reg.token()).unwrap();
    protocol.unlock(pool[0], reg.token()).unwrap();

    let program = bench.program();
    let vm = Vm::new(&*protocol, &program, pool).unwrap();
    let out = vm
        .run("main", reg.token(), &[Value::Int(50)])
        .unwrap()
        .and_then(Value::as_int)
        .unwrap();
    assert_eq!(out, 50);
}
