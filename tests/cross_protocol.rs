//! Cross-crate integration: the three locking protocols are observationally
//! equivalent — same results, same errors, same monitor semantics — and
//! differ only in cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use thinlock_bench::ProtocolKind; // semantics tests cover every implemented backend (paper's three, Tasuki, CJM)
use thinlock_runtime::error::SyncError;
use thinlock_runtime::protocol::{SyncProtocol, SyncProtocolExt, WaitOutcome};

#[test]
fn single_threaded_semantics_are_identical() {
    for kind in ProtocolKind::ALL_BACKENDS {
        let p = kind.build(8, 0);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let a = p.heap().alloc().unwrap();
        let b = p.heap().alloc().unwrap();

        // Fresh objects are unowned.
        assert!(!p.holds_lock(a, t), "{kind}");
        // Unlock of never-locked object fails.
        assert_eq!(p.unlock(a, t), Err(SyncError::NotLocked), "{kind}");
        // Re-entrancy to depth 5 on two independent objects.
        for _ in 0..5 {
            p.lock(a, t).unwrap();
            p.lock(b, t).unwrap();
        }
        assert!(p.holds_lock(a, t) && p.holds_lock(b, t), "{kind}");
        for _ in 0..5 {
            p.unlock(a, t).unwrap();
            p.unlock(b, t).unwrap();
        }
        assert!(!p.holds_lock(a, t) && !p.holds_lock(b, t), "{kind}");
        // One extra unlock fails again.
        assert_eq!(p.unlock(b, t), Err(SyncError::NotLocked), "{kind}");
    }
}

#[test]
fn ownership_violations_rejected_everywhere() {
    for kind in ProtocolKind::ALL_BACKENDS {
        let p = kind.build(4, 0);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, ra.token()).unwrap();
        assert_eq!(
            p.unlock(obj, rb.token()),
            Err(SyncError::NotOwner),
            "{kind}"
        );
        assert!(
            matches!(
                p.wait(obj, rb.token(), None),
                Err(SyncError::NotOwner) | Err(SyncError::NotLocked)
            ),
            "{kind}"
        );
        p.unlock(obj, ra.token()).unwrap();
    }
}

#[test]
fn guarded_counter_is_exact_under_every_protocol() {
    const THREADS: usize = 4;
    const ITERS: u64 = 400;
    for kind in ProtocolKind::ALL_BACKENDS {
        let p: Arc<dyn SyncProtocol> = Arc::from(kind.build(4, 0));
        let obj = p.heap().alloc().unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let p = Arc::clone(&p);
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    let reg = p.registry().register().unwrap();
                    let t = reg.token();
                    for _ in 0..ITERS {
                        p.lock(obj, t).unwrap();
                        // Deliberately racy-looking RMW, serialized by the lock.
                        let v = counter.load(Ordering::Relaxed);
                        std::hint::spin_loop();
                        counter.store(v + 1, Ordering::Relaxed);
                        p.unlock(obj, t).unwrap();
                    }
                });
            }
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            THREADS as u64 * ITERS,
            "{kind}: lost update"
        );
    }
}

#[test]
fn wait_notify_rendezvous_under_every_protocol() {
    for kind in ProtocolKind::ALL_BACKENDS {
        let p: Arc<dyn SyncProtocol> = Arc::from(kind.build(4, 0));
        let obj = p.heap().alloc().unwrap();
        let ready = Arc::new(AtomicU64::new(0));

        std::thread::scope(|scope| {
            let waiter = {
                let p = Arc::clone(&p);
                let ready = Arc::clone(&ready);
                scope.spawn(move || {
                    let reg = p.registry().register().unwrap();
                    let t = reg.token();
                    p.lock(obj, t).unwrap();
                    ready.store(1, Ordering::Release);
                    let out = p.wait(obj, t, None).unwrap();
                    assert!(p.holds_lock(obj, t));
                    p.unlock(obj, t).unwrap();
                    out
                })
            };
            // Wait until the waiter holds the monitor, then keep notifying
            // until it wakes (a notify before the wait parks is absorbed by
            // Mesa semantics: the entry moved to the entry queue).
            while ready.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            let reg = p.registry().register().unwrap();
            let t = reg.token();
            loop {
                p.lock(obj, t).unwrap();
                p.notify(obj, t).unwrap();
                p.unlock(obj, t).unwrap();
                if waiter.is_finished() {
                    break;
                }
                std::thread::yield_now();
            }
            assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified, "{kind}");
        });
    }
}

#[test]
fn timed_wait_times_out_under_every_protocol() {
    for kind in ProtocolKind::ALL_BACKENDS {
        let p = kind.build(4, 0);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        let out = p.wait(obj, t, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(out, WaitOutcome::TimedOut, "{kind}");
        assert!(p.holds_lock(obj, t), "{kind}: monitor re-acquired");
        p.unlock(obj, t).unwrap();
    }
}

#[test]
fn notify_all_wakes_all_under_every_protocol() {
    const WAITERS: usize = 3;
    for kind in ProtocolKind::ALL_BACKENDS {
        let p: Arc<dyn SyncProtocol> = Arc::from(kind.build(4, 0));
        let obj = p.heap().alloc().unwrap();
        let entered = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..WAITERS {
                let p = Arc::clone(&p);
                let entered = Arc::clone(&entered);
                handles.push(scope.spawn(move || {
                    let reg = p.registry().register().unwrap();
                    let t = reg.token();
                    p.lock(obj, t).unwrap();
                    entered.fetch_add(1, Ordering::Release);
                    let out = p.wait(obj, t, Some(Duration::from_secs(30))).unwrap();
                    p.unlock(obj, t).unwrap();
                    out
                }));
            }
            while entered.load(Ordering::Acquire) < WAITERS as u64 {
                std::thread::yield_now();
            }
            // Give the last waiter a moment to actually park.
            std::thread::sleep(Duration::from_millis(30));
            let reg = p.registry().register().unwrap();
            let t = reg.token();
            p.lock(obj, t).unwrap();
            p.notify_all(obj, t).unwrap();
            p.unlock(obj, t).unwrap();
            for h in handles {
                assert_eq!(h.join().unwrap(), WaitOutcome::Notified, "{kind}");
            }
        });
    }
}

#[test]
fn guard_api_works_for_dynamic_protocols() {
    for kind in ProtocolKind::ALL_BACKENDS {
        let p = kind.build(4, 0);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        let sum = p.synchronized(obj, t, || 1 + 1).unwrap();
        assert_eq!(sum, 2);
        assert!(!p.holds_lock(obj, t), "{kind}");
    }
}
