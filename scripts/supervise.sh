#!/usr/bin/env bash
# Crash-chaos supervision gate: agent processes are killed mid-protocol
# via the --abort-at fault seam and must be observed crashing, leave no
# torn artifact, and converge on a seeded disarmed retry.
#
# Default: a quick slice (one backend x three injection points) plus a
# small supervised run — cheap enough for every check.sh invocation.
# `--full` widens to the complete matrix: every backend x every labeled
# injection point. Everything derives from the supervisor seed, so a
# failing cell names the exact seed that replays it.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-quick}"

echo "== build: supervisor + chaos-agent (release)"
cargo build -q --release --offline -p thinlock-fault --bin supervisor --bin chaos-agent

SUPERVISOR=(target/release/supervisor)

# Generous budgets: the host may be a loaded single-CPU container, and
# a supervisor-side kill on a starved-but-healthy agent is a false
# failure (the deadline/grace semantics themselves are covered by the
# mock-agent unit tests with tight budgets).
BUDGET=(--deadline-secs 120 --grace-secs 60)

if [ "$MODE" = "--full" ] || [ "$MODE" = "full" ]; then
    echo "== supervise: full crash matrix (all backends x all points)"
    "${SUPERVISOR[@]}" matrix --seed 7001 --backends all --points all \
        "${BUDGET[@]}" >/dev/null
else
    echo "== supervise: quick crash-matrix slice (thin, fissile, hapax x 3 points)"
    "${SUPERVISOR[@]}" matrix --seed 7001 --backends thin,fissile,hapax \
        --points lock-fast-cas,inflate,unlock-store \
        "${BUDGET[@]}" >/dev/null

    echo "== supervise: degraded run (4 agents, 100% quorum, 2 retries)"
    "${SUPERVISOR[@]}" run --seed 7002 --agents 4 --retries 2 --quorum 100 \
        "${BUDGET[@]}" >/dev/null
fi

echo "Supervision gate passed."
