#!/usr/bin/env bash
# Seeded chaos gate: randomized fault-injected schedules through the
# thin-lock protocol, each cross-checked against a std-Mutex oracle.
# The seed sets are fixed so a failure here is reproducible verbatim:
# the divergence message names the seed, and
#   cargo run -p thinlock-fault --bin chaos -- <flags> <seed>
# replays exactly that schedule's decision sequence.
set -euo pipefail
cd "$(dirname "$0")/.."

CHAOS=(cargo run -q --release --offline -p thinlock-fault --bin chaos --)

echo "== chaos: 1024-seed sweep, default shape (3 threads x 4 objects, kill every 4th)"
"${CHAOS[@]}" --seeds 1024 --start 0

echo "== chaos: high fault rate, tight contention (2 objects, 60% injection)"
"${CHAOS[@]}" --seeds 128 --start 5000 --objects 2 --rate-ppm 600000

echo "== chaos: wide fan-out (6 threads, 8 objects, no kills)"
"${CHAOS[@]}" --seeds 64 --start 9000 --threads 6 --objects 8 --ops 40 --kill-every 0

echo "== chaos[cjm]: 1024-seed sweep, deflating backend with bounded monitor pool"
"${CHAOS[@]}" --backend cjm --seeds 1024 --start 0

echo "== chaos[cjm]: high fault rate, tight contention (2 objects, 60% injection)"
"${CHAOS[@]}" --backend cjm --seeds 128 --start 5000 --objects 2 --rate-ppm 600000

echo "== chaos[fissile]: 1024-seed sweep, fission/re-cohesion under faults and kills"
"${CHAOS[@]}" --backend fissile --seeds 1024 --start 0

echo "== chaos[hapax]: 1024-seed sweep, FIFO ticket admission under faults and kills"
"${CHAOS[@]}" --backend hapax --seeds 1024 --start 0

echo "All chaos schedules converged."
