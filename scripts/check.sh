#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test cycle.
# Everything runs offline; no network access is required or attempted.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc (no deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "== tier-1: cargo build --release"
cargo build --release --offline

echo "== tier-1: cargo test -q"
cargo test -q --offline

echo "== lockcheck: race verdicts must match ground truth"
cargo run -q --release --offline -p thinlock-analysis --bin lockcheck -- --deny-races >/dev/null

echo "== lockcheck: static SyncPlan must agree with the dynamic contention profile"
cargo run -q --release --offline -p thinlock-analysis --bin lockcheck -- --deny-disagreement >/dev/null

echo "== lockmc: bounded interleaving exploration must stay clean (thin, cjm, fissile, hapax)"
for backend in thin cjm fissile hapax; do
    cargo run -q --release --offline -p thinlock-modelcheck --bin lockmc -- \
        verify --quick --backend "$backend" >/dev/null
done

echo "== lockmc: every seeded protocol mutation must be caught (thin, cjm, fissile, hapax)"
for backend in thin cjm fissile hapax; do
    cargo run -q --release --offline -p thinlock-modelcheck --bin lockmc -- \
        --mutate --quick --backend "$backend" >/dev/null
done

echo "== bench smoke: tiny reproduce --json run + id-coverage gate"
bash scripts/bench.sh smoke

echo "== chaos: seeded fault-injection sweep"
bash scripts/chaos.sh

echo "== supervise: crash-matrix slice + degraded run"
bash scripts/supervise.sh

echo "All checks passed."
