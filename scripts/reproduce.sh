#!/usr/bin/env bash
# Regenerates the full reproduction report and the contention-profile
# JSON into out/ (gitignored — the report is host-dependent; only the
# code that generates it is versioned).
#
# Usage: scripts/reproduce.sh [extra reproduce args...]
# e.g.:  scripts/reproduce.sh --quick
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p out
cargo build --release --offline -p thinlock-bench
./target/release/reproduce all --json out/bench.json \
    --profile-json out/profile.json "$@" \
    | tee out/reproduce_output.txt
echo
echo "report: out/reproduce_output.txt"
echo "bench JSON: out/bench.json (see scripts/bench.sh for the gated pipeline)"
echo "profile JSON: out/profile.json"
