#!/usr/bin/env bash
# Benchmark telemetry pipeline (BENCHMARKS.md).
#
# Usage: scripts/bench.sh [run|gate|refresh-baseline|smoke] [extra reproduce args...]
#
#   run               full reproduction at the reference configuration,
#                     writing BENCH_thinlock.json at the repo root
#   gate              run, then diff against scripts/bench_baseline.json
#                     with the default noise tolerances; exits nonzero on
#                     regression (the per-PR perf check)
#   refresh-baseline  run, then adopt the fresh report as the committed
#                     baseline (do this after an intentional perf change,
#                     and commit both JSON files with the change)
#   smoke             tiny-iteration run into out/, id-coverage diff only
#                     (fast; wired into scripts/check.sh — timing is
#                     meaningless at smoke iteration counts)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-run}"
shift || true

# The reference configuration EXPERIMENTS.md numbers come from.
REF_ARGS=(--iters 100000 --scale 2000)
REPORT=BENCH_thinlock.json
BASELINE=scripts/bench_baseline.json

cargo build --release --offline -p thinlock-bench

case "$MODE" in
run)
    ./target/release/reproduce all "${REF_ARGS[@]}" --json "$REPORT" "$@"
    ;;
gate)
    ./target/release/reproduce all "${REF_ARGS[@]}" --json "$REPORT" "$@"
    ./target/release/benchgate --baseline "$BASELINE" --current "$REPORT"
    ;;
refresh-baseline)
    ./target/release/reproduce all "${REF_ARGS[@]}" --json "$REPORT" "$@"
    cp "$REPORT" "$BASELINE"
    echo "baseline refreshed: $BASELINE (commit it together with $REPORT)"
    ;;
smoke)
    mkdir -p out
    ./target/release/reproduce all --iters 300 --scale 50000 \
        --json out/bench_smoke.json "$@" >out/bench_smoke_output.txt
    ./target/release/benchgate --baseline "$BASELINE" \
        --current out/bench_smoke.json --ids-only
    # The churn section per backend, through the --backend flag itself.
    for backend in thin cjm; do
        ./target/release/reproduce churn --iters 300 --scale 50000 \
            --backend "$backend" >>out/bench_smoke_output.txt
    done
    # The fairness section per backend, including the adaptive composite.
    for backend in fissile hapax adaptive; do
        ./target/release/reproduce fairness --iters 300 --scale 50000 \
            --backend "$backend" >>out/bench_smoke_output.txt
    done
    echo "backend smoke (churn: thin, cjm; fairness: fissile, hapax, adaptive)" \
        "appended to out/bench_smoke_output.txt"
    ;;
*)
    echo "usage: scripts/bench.sh [run|gate|refresh-baseline|smoke] [extra reproduce args...]" >&2
    exit 2
    ;;
esac
