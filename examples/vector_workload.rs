//! The "library tax" scenario from the paper's introduction: a
//! single-threaded program hammering a thread-safe collection.
//!
//! Run with `cargo run --release --example vector_workload`.
//!
//! "Even single-threaded applications may spend up to half their time
//! performing useless synchronization due to the thread-safe nature of
//! the Java libraries." The paper's `javalex` benchmark made almost one
//! million calls to the synchronized `elementAt` method of one `Vector`.
//! This example builds that Vector-equivalent — a growable collection
//! whose every method synchronizes on the collection object — and runs
//! the same single-threaded workload under all three locking protocols.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use thinlock::ThinLocks;
use thinlock_baselines::{HotLocks, MonitorCache};
use thinlock_runtime::error::SyncResult;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::protocol::{SyncProtocol, SyncProtocolExt};
use thinlock_runtime::registry::ThreadToken;

/// A miniature `java.util.Vector`: every public method is synchronized on
/// the collection's own monitor, whether or not any other thread exists.
struct SyncVector<'p, P: SyncProtocol + ?Sized> {
    protocol: &'p P,
    monitor: ObjRef,
    data: Vec<AtomicI64>,
    len: AtomicI64,
}

impl<'p, P: SyncProtocol + ?Sized> SyncVector<'p, P> {
    fn new(protocol: &'p P, capacity: usize) -> SyncResult<Self> {
        Ok(SyncVector {
            protocol,
            monitor: protocol.heap().alloc()?,
            data: (0..capacity).map(|_| AtomicI64::new(0)).collect(),
            len: AtomicI64::new(0),
        })
    }

    /// `public synchronized void addElement(int v)`
    fn add_element(&self, me: ThreadToken, v: i64) -> SyncResult<()> {
        self.protocol.synchronized(self.monitor, me, || {
            let i = self.len.fetch_add(1, Ordering::Relaxed) as usize;
            self.data[i].store(v, Ordering::Relaxed);
        })
    }

    /// `public synchronized int elementAt(int i)` — javalex's hot method.
    fn element_at(&self, me: ThreadToken, i: usize) -> SyncResult<i64> {
        self.protocol
            .synchronized(self.monitor, me, || self.data[i].load(Ordering::Relaxed))
    }

    /// `public synchronized int size()`
    fn size(&self, me: ThreadToken) -> SyncResult<i64> {
        self.protocol
            .synchronized(self.monitor, me, || self.len.load(Ordering::Relaxed))
    }
}

/// The javalex-flavoured workload: build a table, then scan it many times
/// through the synchronized accessor — single-threaded throughout.
fn run_workload<P: SyncProtocol + ?Sized>(protocol: &P) -> SyncResult<(i64, std::time::Duration)> {
    const ELEMENTS: usize = 1_000;
    const SCANS: usize = 1_000;

    let registration = protocol.registry().register()?;
    let me = registration.token();
    let vector = SyncVector::new(protocol, ELEMENTS)?;

    let start = Instant::now();
    for i in 0..ELEMENTS {
        vector.add_element(me, i as i64)?;
    }
    let mut checksum = 0i64;
    for _ in 0..SCANS {
        let n = vector.size(me)? as usize;
        for i in 0..n {
            checksum = checksum.wrapping_add(vector.element_at(me, i)?);
        }
    }
    Ok((checksum, start.elapsed()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let thin = ThinLocks::with_capacity(4);
    let jdk = MonitorCache::with_capacity(4);
    let ibm = HotLocks::new(
        Arc::new(thinlock_runtime::heap::Heap::with_capacity(4)),
        thinlock_runtime::registry::ThreadRegistry::new(),
        thinlock_baselines::cache::DEFAULT_CACHE_CAPACITY,
        thinlock_baselines::hot::DEFAULT_HOT_THRESHOLD,
    );

    println!("single-threaded synchronized-Vector workload (~2M lock operations):");
    let mut times = Vec::new();
    let mut reference = None;
    for protocol in [&thin as &dyn SyncProtocol, &jdk, &ibm] {
        let (checksum, elapsed) = run_workload(protocol)?;
        match reference {
            None => reference = Some(checksum),
            Some(r) => assert_eq!(r, checksum, "all protocols compute the same result"),
        }
        println!("  {:<9} {:>10.2?}", protocol.name(), elapsed);
        times.push((protocol.name(), elapsed));
    }

    let thin_time = times[0].1;
    let jdk_time = times[1].1;
    println!(
        "thin locks remove the library tax: {:.1}x faster than the monitor cache",
        jdk_time.as_secs_f64() / thin_time.as_secs_f64()
    );
    // The lock stayed thin the whole time: no contention, no wait/notify.
    assert_eq!(thin.inflated_count(), 0);
    Ok(())
}
