//! Watching a lock inflate under contention, with live statistics.
//!
//! Run with `cargo run --release --example contention_inflation`.
//!
//! Section 2.3.4 of the paper: when thread B finds an object thin-locked
//! by thread A, it spins until A releases, acquires, and *inflates* the
//! lock — permanently, on the assumption of locality of contention ("if
//! there is contention for an object once, there is likely to be
//! contention for it again"). This example stages exactly that scenario
//! and prints the scenario counters from the instrumentation layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use thinlock::ThinLocks;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_runtime::stats::LockStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stats = Arc::new(LockStats::new());
    let locks = Arc::new(ThinLocks::with_capacity(4).with_stats(Arc::clone(&stats)));
    let shared = locks.heap().alloc()?;
    let counter = Arc::new(AtomicU64::new(0));

    println!("before: {}", locks.lock_word(shared));

    // Phase 1: single-threaded use — the lock stays thin.
    {
        let reg = locks.registry().register()?;
        for _ in 0..1_000 {
            locks.lock(shared, reg.token())?;
            counter.fetch_add(1, Ordering::Relaxed);
            locks.unlock(shared, reg.token())?;
        }
    }
    println!(
        "after 1000 uncontended syncs: {} (monitors: {})",
        locks.lock_word(shared),
        locks.inflated_count()
    );

    // Phase 2: forced contention — thread A holds the lock while B
    // arrives, so B must spin and then inflate.
    let barrier = Arc::new(Barrier::new(2));
    let holder = {
        let locks = Arc::clone(&locks);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let reg = locks.registry().register().expect("registry");
            locks.lock(shared, reg.token()).expect("lock");
            barrier.wait(); // signal: B may start contending
            std::thread::sleep(Duration::from_millis(50));
            locks.unlock(shared, reg.token()).expect("unlock");
        })
    };
    {
        let reg = locks.registry().register()?;
        barrier.wait();
        locks.lock(shared, reg.token())?; // spins, acquires, inflates
        locks.unlock(shared, reg.token())?;
    }
    holder.join().expect("holder thread");
    println!(
        "after contention: {} (monitors: {})",
        locks.lock_word(shared),
        locks.inflated_count()
    );

    // Phase 3: heavy mixed traffic on the now-fat lock.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let locks = Arc::clone(&locks);
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                let reg = locks.registry().register().expect("registry");
                for _ in 0..2_000 {
                    locks.lock(shared, reg.token()).expect("lock");
                    counter.fetch_add(1, Ordering::Relaxed);
                    locks.unlock(shared, reg.token()).expect("unlock");
                }
            });
        }
    });

    println!(
        "counter = {} (expected {})",
        counter.load(Ordering::Relaxed),
        1_000 + 4 * 2_000
    );
    assert_eq!(counter.load(Ordering::Relaxed), 1_000 + 4 * 2_000);
    assert_eq!(locks.inflated_count(), 1, "one inflation, ever");

    println!("\nscenario statistics (Section 2's frequency ranking):");
    print!("{}", stats.snapshot());
    println!();
    Ok(())
}
