//! A classic producer/consumer bounded buffer built on Java-style
//! monitors over thin locks.
//!
//! Run with `cargo run --release --example bounded_buffer`.
//!
//! This is the multithreaded scenario the paper's introduction motivates
//! ("a Java server or a client running windowing or network code"): the
//! buffer's monitor sees real contention and `wait`/`notify`, so its thin
//! lock inflates, while every other object in the program keeps its cheap
//! thin lock.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use thinlock::ThinLocks;
use thinlock_runtime::error::SyncResult;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::protocol::{SyncProtocol, SyncProtocolExt};
use thinlock_runtime::registry::ThreadToken;

/// A bounded queue whose mutual exclusion and blocking come entirely from
/// the thin-lock monitor of one heap object — the direct translation of a
/// Java `synchronized`/`wait`/`notifyAll` bounded buffer.
struct BoundedBuffer {
    locks: Arc<ThinLocks>,
    monitor: ObjRef,
    items: Mutex<VecDeque<u64>>, // plain storage; protected by `monitor`
    capacity: usize,
}

impl BoundedBuffer {
    fn new(locks: Arc<ThinLocks>, capacity: usize) -> SyncResult<Self> {
        let monitor = locks.heap().alloc()?;
        Ok(BoundedBuffer {
            locks,
            monitor,
            items: Mutex::new(VecDeque::new()),
            capacity,
        })
    }

    fn put(&self, me: ThreadToken, value: u64) -> SyncResult<()> {
        let guard = self.locks.enter(self.monitor, me)?;
        loop {
            {
                let mut items = self.items.lock().expect("storage poisoned");
                if items.len() < self.capacity {
                    items.push_back(value);
                    break;
                }
            }
            guard.wait(None)?; // buffer full: release monitor and sleep
        }
        guard.notify_all()?; // wake consumers
        Ok(())
    }

    fn take(&self, me: ThreadToken) -> SyncResult<u64> {
        let guard = self.locks.enter(self.monitor, me)?;
        let value = loop {
            {
                let mut items = self.items.lock().expect("storage poisoned");
                if let Some(v) = items.pop_front() {
                    break v;
                }
            }
            guard.wait(None)?; // buffer empty: release monitor and sleep
        };
        guard.notify_all()?; // wake producers
        Ok(value)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: u64 = 5_000;

    let locks = Arc::new(ThinLocks::with_capacity(8));
    let buffer = Arc::new(BoundedBuffer::new(Arc::clone(&locks), 16)?);

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let buffer = Arc::clone(&buffer);
            scope.spawn(move || {
                let reg = buffer.locks.registry().register().expect("registry");
                for i in 0..PER_PRODUCER {
                    buffer
                        .put(reg.token(), p as u64 * PER_PRODUCER + i)
                        .expect("put");
                }
            });
        }
        let mut handles = Vec::new();
        for _ in 0..CONSUMERS {
            let buffer = Arc::clone(&buffer);
            handles.push(scope.spawn(move || {
                let reg = buffer.locks.registry().register().expect("registry");
                let mut sum = 0u64;
                for _ in 0..(PRODUCERS as u64 * PER_PRODUCER / CONSUMERS as u64) {
                    sum += buffer.take(reg.token()).expect("take");
                }
                sum
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().expect("join")).sum();
        let n = PRODUCERS as u64 * PER_PRODUCER;
        assert_eq!(total, n * (n - 1) / 2, "every produced item consumed once");
        println!("transferred {n} items, checksum OK");
    });

    println!(
        "buffer monitor inflated (wait/notify forces a fat lock): {} monitor(s) created",
        locks.inflated_count()
    );
    assert!(locks.inflated_count() >= 1);
    Ok(())
}
