//! The PL toolchain end to end: assemble a program from source, verify it
//! statically, optimize it, and run it under thin locks.
//!
//! Run with `cargo run --release --example assembler`.

use thinlock::ThinLocks;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_vm::asm::{assemble, disassemble};
use thinlock_vm::transform::{peephole, strip_synchronization};
use thinlock_vm::verify::{verify_program, VerifyOptions};
use thinlock_vm::{Value, Vm};

/// Sums the first `n` squares, holding the monitor of pool object 0
/// around each accumulation — written in the crate's assembly syntax.
const SOURCE: &str = "\
pool 1
; int main(n)  locals: 1=i 2=sum
method main args=1 locals=3 returns {
  iconst 0
  istore 1
  iconst 2
  iconst 3
  imul
  pop               ; dead code for the peephole pass to chew on
  iconst 0
  istore 2
loop:
  iload 1
  iload 0
  if_icmpge done
  aconst 0
  monitorenter
  iload 2
  iload 1
  iload 1
  imul
  iadd
  istore 2
  aconst 0
  monitorexit
  iinc 1 1
  goto loop
done:
  iload 2
  ireturn
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble.
    let program = assemble(SOURCE)?;
    println!("assembled {} method(s)", program.methods().len());

    // 2. Verify statically (stack discipline, types, structured locking).
    let summaries = verify_program(&program, VerifyOptions::default())?;
    println!(
        "verified: max stack {}, max monitor nesting {}",
        summaries[0].max_stack, summaries[0].max_monitors
    );

    // 3. Optimize.
    let (optimized, stats) = peephole(&program);
    println!(
        "peephole removed {} instruction(s) ({} folds, {} push/pop pairs, {} nops)",
        stats.total_removed(),
        stats.constants_folded,
        stats.push_pop_removed,
        stats.nops_removed
    );

    // 4. Run under thin locks.
    let locks = ThinLocks::with_capacity(2);
    let pool = vec![locks.heap().alloc()?];
    let registration = locks.registry().register()?;
    let vm = Vm::new(&locks, &optimized, pool.clone())?;
    let n = 10;
    let out = vm
        .run("main", registration.token(), &[Value::Int(n)])?
        .and_then(Value::as_int)
        .expect("main returns the sum");
    let expected: i32 = (0..n).map(|i| i * i).sum();
    assert_eq!(out, expected);
    println!("sum of first {n} squares = {out}");
    assert!(locks.lock_word(pool[0]).is_unlocked());

    // 5. The Figure 6 "NOP" transformation: strip all synchronization and
    //    confirm identical results.
    let stripped = strip_synchronization(&optimized);
    let vm2 = Vm::new(&locks, &stripped, pool)?;
    let out2 = vm2
        .run("main", registration.token(), &[Value::Int(n)])?
        .and_then(Value::as_int)
        .expect("stripped main returns the sum");
    assert_eq!(out, out2);
    println!("synchronization-stripped program agrees: {out2}");

    // 6. Round-trip through the disassembler, for inspection.
    println!(
        "\ndisassembly of the optimized program:\n{}",
        disassemble(&optimized)
    );
    Ok(())
}
