//! The paper's motivating example, run end-to-end inside the bytecode VM:
//! a single-threaded program hammering a synchronized `Vector` — the
//! "javalex" scenario — under all four locking implementations.
//!
//! Run with `cargo run --release --example library_tax`.
//!
//! Unlike `vector_workload` (which drives the protocols from Rust), this
//! example executes *bytecode*: the synchronized `addElement`/`elementAt`
//! methods of `thinlock_vm::library`, interpreted exactly like the
//! paper's JDK ran `javalex`'s million `Vector.elementAt` calls. The
//! measured gap is therefore the paper's Figure 4 `CallSync` gap applied
//! at macro scale.

use std::time::Instant;

use thinlock_bench::ProtocolKind;
use thinlock_runtime::heap::ObjRef;
use thinlock_vm::library::{javalex_expected, javalex_like, JAVALEX_SCAN_PASSES};
use thinlock_vm::verify::{verify_program, VerifyOptions};
use thinlock_vm::{Value, Vm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const ELEMENTS: i32 = 2_000;

    let program = javalex_like();
    verify_program(&program, VerifyOptions::default())?;
    let sync_calls = (1 + JAVALEX_SCAN_PASSES * 2) as i64 * ELEMENTS as i64;
    println!(
        "javalex-shaped workload: {ELEMENTS} adds + {JAVALEX_SCAN_PASSES} scan passes \
         ≈ {sync_calls} synchronized method calls, single-threaded\n"
    );

    let mut times = Vec::new();
    for kind in ProtocolKind::ALL_EXTENDED {
        // The Vector object needs ELEMENTS + 1 fields (size + elements).
        let protocol = kind.build(2, ELEMENTS as usize + 1);
        let pool: Vec<ObjRef> = vec![protocol.heap().alloc()?];
        let registration = protocol.registry().register()?;
        let vm = Vm::new(&*protocol, &program, pool)?;

        let start = Instant::now();
        let out = vm
            .run("main", registration.token(), &[Value::Int(ELEMENTS)])?
            .and_then(Value::as_int)
            .expect("main returns the checksum");
        let elapsed = start.elapsed();
        assert_eq!(out, javalex_expected(ELEMENTS), "checksum must match");

        println!("  {:<9} {:>10.2?}", kind.name(), elapsed);
        times.push((kind.name(), elapsed));
    }

    let thin = times[0].1;
    let jdk = times[1].1;
    println!(
        "\nthin locks vs monitor cache on the library tax: {:.2}x \
         (the paper measured 1.7x on the real javalex, whose runtime also \
         included lexer-generation work)",
        jdk.as_secs_f64() / thin.as_secs_f64()
    );
    Ok(())
}
