//! Quickstart: the thin-lock lifecycle on one object.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! Walks one object through the states of Figures 1 and 2 of the paper —
//! unlocked, thin-locked, nested, and (after a `notify`) permanently
//! inflated — printing the lock word at each step.

use thinlock::ThinLocks;
use thinlock_runtime::protocol::{SyncProtocol, SyncProtocolExt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A protocol instance owns a heap of objects and a thread registry.
    let locks = ThinLocks::with_capacity(16);

    // Every thread that synchronizes must register to get its 15-bit
    // thread index (the paper's thread-index table).
    let registration = locks.registry().register()?;
    let me = registration.token();

    let account = locks.heap().alloc()?;
    println!("fresh object:      {}", locks.lock_word(account));

    // Locking an unlocked object: one compare-and-swap.
    locks.lock(account, me)?;
    println!("after lock:        {}", locks.lock_word(account));

    // Nested locking: XOR test + add, no atomics.
    locks.lock(account, me)?;
    locks.lock(account, me)?;
    println!("nested twice more: {}", locks.lock_word(account));

    locks.unlock(account, me)?;
    locks.unlock(account, me)?;
    locks.unlock(account, me)?;
    println!("fully unlocked:    {}", locks.lock_word(account));

    // The RAII guard API — Java's `synchronized` block.
    locks.synchronized(account, me, || {
        println!("inside synchronized block");
    })?;

    // wait/notify force inflation (the monitor needs queues); inflation
    // is permanent, as in the paper.
    let guard = locks.enter(account, me)?;
    guard.notify()?;
    drop(guard);
    println!("after notify:      {}", locks.lock_word(account));
    println!("monitors created:  {}", locks.inflated_count());

    Ok(())
}
