//! Randomized tests of the lock-word encoding: the branch-minimal bit
//! tricks of Section 2.3 must agree with the naive structured decoding on
//! every possible word. Driven by the in-repo deterministic PRNG so runs
//! are reproducible offline; each property additionally sweeps exhaustive
//! corner values alongside the random sample.

use thinlock_runtime::lockword::{
    LockState, LockWord, MonitorIndex, ThreadIndex, HEADER_BITS_MASK, MAX_THIN_COUNT,
};
use thinlock_runtime::prng::Prng;

const ITERS: usize = 2_000;
const SEED: u64 = 0x10c4_70cd_5eed;

fn rng(salt: u64) -> Prng {
    Prng::seed_from_u64(SEED ^ salt)
}

fn any_thread_index(rng: &mut Prng) -> ThreadIndex {
    ThreadIndex::new(rng.range_u32(1, u32::from(ThreadIndex::MAX) + 1) as u16).expect("in range")
}

fn any_monitor_index(rng: &mut Prng) -> MonitorIndex {
    // Uniform over the full range would almost never hit the edges;
    // mix in the boundary values explicitly.
    let i = match rng.range_u32(0, 10) {
        0 => 0,
        1 => MonitorIndex::MAX,
        _ => rng.range_u32(0, MonitorIndex::MAX),
    };
    MonitorIndex::new(i).expect("in range")
}

/// The naive definition of the paper's XOR nested-lock predicate.
fn can_nest_naive(word: LockWord, owner: ThreadIndex) -> bool {
    word.is_thin_shape()
        && word.thin_owner() == Some(owner)
        && u32::from(word.thin_count()) < MAX_THIN_COUNT
}

/// The naive definition of "thin, held once by owner".
fn locked_once_naive(word: LockWord, owner: ThreadIndex) -> bool {
    word.is_thin_shape() && word.thin_owner() == Some(owner) && word.thin_count() == 0
}

/// The naive definition of "thin and held by owner at any count".
fn owned_naive(word: LockWord, owner: ThreadIndex) -> bool {
    word.is_thin_shape() && word.thin_owner() == Some(owner)
}

fn nested(hdr: u8, owner: ThreadIndex, count: u8) -> LockWord {
    let mut w = LockWord::new_unlocked(hdr).locked_once_by(owner);
    for _ in 0..count {
        w = w.with_count_incremented();
    }
    w
}

/// Thin encode → decode is the identity on (header, owner, count).
#[test]
fn thin_encoding_round_trips() {
    let mut rng = rng(1);
    for _ in 0..ITERS {
        let hdr = rng.next_u32() as u8;
        let owner = any_thread_index(&mut rng);
        let count = rng.next_u32() as u8;
        let w = nested(hdr, owner, count);
        assert_eq!(w.header_bits(), hdr);
        assert_eq!(w.thin_owner(), Some(owner));
        assert_eq!(w.thin_count(), count);
        assert_eq!(w.state(), LockState::Thin { owner, count });
    }
}

/// Fat encode → decode is the identity on (header, monitor index).
#[test]
fn fat_encoding_round_trips() {
    let mut rng = rng(2);
    for _ in 0..ITERS {
        let hdr = rng.next_u32() as u8;
        let idx = any_monitor_index(&mut rng);
        let w = LockWord::new_unlocked(hdr).inflated(idx);
        assert!(w.is_fat());
        assert_eq!(w.header_bits(), hdr);
        assert_eq!(w.monitor_index(), Some(idx));
        assert_eq!(w.state(), LockState::Fat { index: idx });
    }
}

/// The single-compare nested test equals its naive definition on
/// arbitrary 32-bit words, not just well-formed ones.
#[test]
fn xor_nested_test_is_exact() {
    let mut rng = rng(3);
    for _ in 0..ITERS {
        let bits = rng.next_u32();
        let owner = any_thread_index(&mut rng);
        let w = LockWord::from_bits(bits);
        assert_eq!(
            w.can_nest(owner.shifted()),
            can_nest_naive(w, owner),
            "{bits:#010x}"
        );
    }
}

/// `is_locked_once_by` equals its naive definition on arbitrary words.
#[test]
fn locked_once_test_is_exact() {
    let mut rng = rng(4);
    for _ in 0..ITERS {
        let bits = rng.next_u32();
        let owner = any_thread_index(&mut rng);
        let w = LockWord::from_bits(bits);
        assert_eq!(
            w.is_locked_once_by(owner.shifted()),
            locked_once_naive(w, owner),
            "{bits:#010x}"
        );
    }
}

/// `is_thin_owned_by` equals its naive definition on arbitrary words.
#[test]
fn owned_test_is_exact() {
    let mut rng = rng(5);
    for _ in 0..ITERS {
        let bits = rng.next_u32();
        let owner = any_thread_index(&mut rng);
        let w = LockWord::from_bits(bits);
        assert_eq!(
            w.is_thin_owned_by(owner.shifted()),
            owned_naive(w, owner),
            "{bits:#010x}"
        );
    }
}

/// No lock-word construction ever disturbs the shared header byte.
#[test]
fn header_bits_invariant() {
    let mut rng = rng(6);
    for _ in 0..ITERS {
        let hdr = rng.next_u32() as u8;
        let owner = any_thread_index(&mut rng);
        let idx = any_monitor_index(&mut rng);
        let nests = rng.range_u32(0, 201) as u8;
        let base = LockWord::new_unlocked(hdr);
        assert_eq!(base.header_bits(), hdr);
        let mut locked = base.locked_once_by(owner);
        for _ in 0..nests {
            locked = locked.with_count_incremented();
        }
        assert_eq!(locked.header_bits(), hdr);
        for _ in 0..nests {
            locked = locked.with_count_decremented();
        }
        assert_eq!(locked.header_bits(), hdr);
        assert_eq!(locked, base.locked_once_by(owner));
        let fat = locked.inflated(idx);
        assert_eq!(fat.header_bits(), hdr);
        assert_eq!(locked.with_lock_field_clear().header_bits(), hdr);
    }
}

/// `with_lock_field_clear` really clears only the lock field.
#[test]
fn clear_isolates_lock_field() {
    let mut rng = rng(7);
    for _ in 0..ITERS {
        let bits = rng.next_u32();
        let cleared = LockWord::from_bits(bits).with_lock_field_clear();
        assert!(cleared.is_unlocked());
        assert_eq!(u32::from(cleared.header_bits()), bits & HEADER_BITS_MASK);
    }
}

/// Distinct (owner, count) thin states map to distinct words; i.e. the
/// encoding is injective given a fixed header byte.
#[test]
fn thin_encoding_is_injective() {
    let mut rng = rng(8);
    for _ in 0..ITERS {
        let a = any_thread_index(&mut rng);
        let b = any_thread_index(&mut rng);
        let ca = rng.next_u32() as u8;
        let cb = rng.next_u32() as u8;
        if a == b && ca == cb {
            continue;
        }
        assert_ne!(nested(0x2A, a, ca), nested(0x2A, b, cb));
    }
}

/// Thin and fat words never collide (the shape bit separates them).
#[test]
fn thin_and_fat_are_disjoint() {
    let mut rng = rng(9);
    for _ in 0..ITERS {
        let owner = any_thread_index(&mut rng);
        let count = rng.next_u32() as u8;
        let idx = any_monitor_index(&mut rng);
        let hdr = rng.next_u32() as u8;
        let thin = nested(hdr, owner, count);
        let fat = LockWord::new_unlocked(hdr).inflated(idx);
        assert_ne!(thin, fat);
        assert!(thin.is_thin_shape());
        assert!(!fat.is_thin_shape());
    }
}
