//! Property tests of the lock-word encoding: the branch-minimal bit
//! tricks of Section 2.3 must agree with the naive structured decoding on
//! every possible word.

use proptest::prelude::*;

use thinlock_runtime::lockword::{
    LockState, LockWord, MonitorIndex, ThreadIndex, HEADER_BITS_MASK, MAX_THIN_COUNT,
};

fn arb_thread_index() -> impl Strategy<Value = ThreadIndex> {
    (1u16..=ThreadIndex::MAX).prop_map(|i| ThreadIndex::new(i).expect("in range"))
}

fn arb_monitor_index() -> impl Strategy<Value = MonitorIndex> {
    (0u32..=MonitorIndex::MAX).prop_map(|i| MonitorIndex::new(i).expect("in range"))
}

/// The naive definition of the paper's XOR nested-lock predicate.
fn can_nest_naive(word: LockWord, owner: ThreadIndex) -> bool {
    word.is_thin_shape()
        && word.thin_owner() == Some(owner)
        && u32::from(word.thin_count()) < MAX_THIN_COUNT
}

/// The naive definition of "thin, held once by owner".
fn locked_once_naive(word: LockWord, owner: ThreadIndex) -> bool {
    word.is_thin_shape() && word.thin_owner() == Some(owner) && word.thin_count() == 0
}

/// The naive definition of "thin and held by owner at any count".
fn owned_naive(word: LockWord, owner: ThreadIndex) -> bool {
    word.is_thin_shape() && word.thin_owner() == Some(owner)
}

proptest! {
    /// Thin encode → decode is the identity on (header, owner, count).
    #[test]
    fn thin_encoding_round_trips(hdr in any::<u8>(), owner in arb_thread_index(), count in 0u8..=255) {
        let mut w = LockWord::new_unlocked(hdr).locked_once_by(owner);
        for _ in 0..count {
            w = w.with_count_incremented();
        }
        prop_assert_eq!(w.header_bits(), hdr);
        prop_assert_eq!(w.thin_owner(), Some(owner));
        prop_assert_eq!(w.thin_count(), count);
        prop_assert_eq!(w.state(), LockState::Thin { owner, count });
    }

    /// Fat encode → decode is the identity on (header, monitor index).
    #[test]
    fn fat_encoding_round_trips(hdr in any::<u8>(), idx in arb_monitor_index()) {
        let w = LockWord::new_unlocked(hdr).inflated(idx);
        prop_assert!(w.is_fat());
        prop_assert_eq!(w.header_bits(), hdr);
        prop_assert_eq!(w.monitor_index(), Some(idx));
        prop_assert_eq!(w.state(), LockState::Fat { index: idx });
    }

    /// The single-compare nested test equals its naive definition on
    /// *every* 32-bit word, not just well-formed ones.
    #[test]
    fn xor_nested_test_is_exact(bits in any::<u32>(), owner in arb_thread_index()) {
        let w = LockWord::from_bits(bits);
        prop_assert_eq!(w.can_nest(owner.shifted()), can_nest_naive(w, owner));
    }

    /// `is_locked_once_by` equals its naive definition on every word.
    #[test]
    fn locked_once_test_is_exact(bits in any::<u32>(), owner in arb_thread_index()) {
        let w = LockWord::from_bits(bits);
        prop_assert_eq!(w.is_locked_once_by(owner.shifted()), locked_once_naive(w, owner));
    }

    /// `is_thin_owned_by` equals its naive definition on every word.
    #[test]
    fn owned_test_is_exact(bits in any::<u32>(), owner in arb_thread_index()) {
        let w = LockWord::from_bits(bits);
        prop_assert_eq!(w.is_thin_owned_by(owner.shifted()), owned_naive(w, owner));
    }

    /// No lock-word construction ever disturbs the shared header byte.
    #[test]
    fn header_bits_invariant(
        hdr in any::<u8>(),
        owner in arb_thread_index(),
        idx in arb_monitor_index(),
        nests in 0u8..=200,
    ) {
        let base = LockWord::new_unlocked(hdr);
        prop_assert_eq!(base.header_bits(), hdr);
        let mut locked = base.locked_once_by(owner);
        for _ in 0..nests {
            locked = locked.with_count_incremented();
        }
        prop_assert_eq!(locked.header_bits(), hdr);
        for _ in 0..nests {
            locked = locked.with_count_decremented();
        }
        prop_assert_eq!(locked.header_bits(), hdr);
        prop_assert_eq!(locked, base.locked_once_by(owner));
        let fat = locked.inflated(idx);
        prop_assert_eq!(fat.header_bits(), hdr);
        prop_assert_eq!(locked.with_lock_field_clear().header_bits(), hdr);
    }

    /// `with_lock_field_clear` really clears only the lock field.
    #[test]
    fn clear_isolates_lock_field(bits in any::<u32>()) {
        let cleared = LockWord::from_bits(bits).with_lock_field_clear();
        prop_assert!(cleared.is_unlocked());
        prop_assert_eq!(u32::from(cleared.header_bits()), bits & HEADER_BITS_MASK);
    }

    /// Distinct (owner, count) thin states map to distinct words; i.e. the
    /// encoding is injective given a fixed header byte.
    #[test]
    fn thin_encoding_is_injective(
        a in arb_thread_index(), b in arb_thread_index(),
        ca in 0u8..=255, cb in 0u8..=255,
    ) {
        prop_assume!(a != b || ca != cb);
        let mk = |o: ThreadIndex, c: u8| {
            let mut w = LockWord::new_unlocked(0x2A).locked_once_by(o);
            for _ in 0..c {
                w = w.with_count_incremented();
            }
            w
        };
        prop_assert_ne!(mk(a, ca), mk(b, cb));
    }

    /// Thin and fat words never collide (the shape bit separates them).
    #[test]
    fn thin_and_fat_are_disjoint(
        owner in arb_thread_index(),
        count in 0u8..=255,
        idx in arb_monitor_index(),
        hdr in any::<u8>(),
    ) {
        let mut thin = LockWord::new_unlocked(hdr).locked_once_by(owner);
        for _ in 0..count {
            thin = thin.with_count_incremented();
        }
        let fat = LockWord::new_unlocked(hdr).inflated(idx);
        prop_assert_ne!(thin, fat);
        prop_assert!(thin.is_thin_shape());
        prop_assert!(!fat.is_thin_shape());
    }
}
