//! Small deterministic PRNG used by the trace generator and the
//! randomized tests.
//!
//! The workspace must build with no network access, so we cannot depend
//! on the `rand` crate. This module provides the two standard pieces the
//! repo needs instead:
//!
//! * [`SplitMix64`] — the seeding/stream-splitting generator from
//!   Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
//!   Generators" (OOPSLA 2014). It is used to expand a single `u64` seed
//!   into well-distributed state and is itself a perfectly fine generator
//!   for non-cryptographic workloads.
//! * [`Xorshift128Plus`] — Vigna's xorshift128+ generator layered on a
//!   SplitMix64-seeded state, exposed as [`Prng`], the default generator
//!   type for the repo.
//!
//! Both are deterministic and seedable: the same seed always yields the
//! same sequence on every platform, which is exactly what the replayable
//! trace generator and the seeded property tests require.

/// SplitMix64: a 64-bit generator with a simple additive state update.
///
/// Primarily used to derive independent, well-mixed seeds for other
/// generators, but usable directly.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a raw seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xorshift128+ seeded via SplitMix64. The default PRNG for the repo.
#[derive(Debug, Clone)]
pub struct Xorshift128Plus {
    s0: u64,
    s1: u64,
}

/// The repo-wide default generator type.
pub type Prng = Xorshift128Plus;

impl Xorshift128Plus {
    /// Seed the generator. SplitMix64 expands the seed so that similar
    /// seeds (0, 1, 2, ...) still produce uncorrelated streams, and the
    /// all-zero state xorshift cannot escape from is impossible.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s0 = sm.next_u64();
        let mut s1 = sm.next_u64();
        if s0 == 0 && s1 == 0 {
            s1 = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s0, s1 }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Next 32-bit output (upper bits of the 64-bit output, which are the
    /// strongest bits of xorshift128+).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be non-zero");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)` (half-open, like `rand`'s
    /// `gen_range(lo..hi)`). Panics if the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize: empty range {lo}..{hi}");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "range_u32: empty range {lo}..{hi}");
        lo + self.next_below((hi - lo) as u64) as u32
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "range_i32: empty range {lo}..{hi}");
        let span = (hi as i64 - lo as i64) as u64;
        (lo as i64 + self.next_below(span) as i64) as i32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[0, hi)`.
    pub fn range_f64(&mut self, hi: f64) -> f64 {
        self.next_f64() * hi
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.range_usize(3, 17);
            assert!((3..17).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let i = r.range_i32(-5, 5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Prng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Prng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c by Vigna.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64());
        assert_ne!(first, sm.next_u64());
    }
}
