//! Substrate for the thin-locks reproduction.
//!
//! This crate provides everything the locking protocols of the paper
//! *assume to exist* in the Java virtual machine they were built into:
//!
//! * [`lockword`] — the 24-bit lock field embedded in every object header,
//!   with the exact bit layout of Figure 1/2 of the paper and the
//!   XOR-based nested-lock predicate of Section 2.3.3.
//! * [`heap`] — a fixed-capacity object heap whose objects carry a
//!   three-word header; the low 8 bits of the header word that hosts the
//!   lock field are "other header data" that locking must never disturb.
//! * [`registry`] — the thread-index table: 15-bit thread indices, the
//!   per-thread execution environment holding the *pre-shifted* index, and
//!   a parker used by the heavyweight monitor layer to block threads.
//! * [`arch`] — architecture profiles modelling the paper's PowerPC
//!   uniprocessor / multiprocessor / POWER kernel-CAS targets (Section 3.5).
//! * [`protocol`] — the [`protocol::SyncProtocol`] trait implemented by the
//!   thin-lock protocol and by both baselines, so benchmarks and the
//!   bytecode VM are generic over the locking implementation.
//! * [`backend`] — the [`backend::SyncBackend`] extension trait: the
//!   introspection probes (owner, lock word, monitor snapshot, monitor
//!   population) that make whole backends interchangeable under the
//!   chaos, model-checking, and benchmark harnesses (BACKENDS.md).
//! * [`stats`] — instrumentation counters for the locking-scenario
//!   characterization of Section 3.2 (Table 1 / Figure 3).
//! * [`events`] — the [`events::TraceSink`] seam through which protocols
//!   stream individual timestamped lock events to an observability
//!   backend (the `thinlock-obs` crate) without depending on one.
//! * [`backoff`] — the spin/yield backoff used while spinning to inflate.
//! * [`fault`] — the [`fault::FaultInjector`] seam: labeled injection
//!   points at which a deterministic chaos harness (the `thinlock-fault`
//!   crate) can force CAS failures, descheduling, spurious wakeups, and
//!   resource exhaustion; zero-cost when no injector is attached.
//! * [`schedule`] — the [`schedule::Schedule`] seam: labeled schedule
//!   points at which a cooperative scheduler (the `thinlock-modelcheck`
//!   crate) can serialize execution and explore every interleaving of a
//!   small thread program; zero-cost when no schedule is attached.
//!
//! # Example
//!
//! ```
//! use thinlock_runtime::heap::Heap;
//!
//! let heap = Heap::with_capacity(16);
//! let obj = heap.alloc()?;
//! let word = heap.header(obj).lock_word().load_relaxed();
//! assert!(word.is_unlocked());
//! # Ok::<(), thinlock_runtime::SyncError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod arch;
pub mod backend;
pub mod backoff;
pub mod error;
pub mod events;
pub mod fault;
pub mod heap;
pub mod lockword;
pub mod prng;
pub mod protocol;
pub mod registry;
pub mod schedule;
pub mod stats;

pub use backend::{MonitorProbe, SyncBackend};
pub use error::{SyncError, SyncResult};
pub use events::{TraceEventKind, TraceSink};
pub use fault::{FaultAction, FaultInjector, InjectionPoint};
pub use heap::{Heap, ObjRef};
pub use lockword::{LockWord, MonitorIndex, ThreadIndex};
pub use protocol::{SyncProtocol, WaitOutcome};
pub use registry::{ThreadRegistry, ThreadToken};
pub use schedule::{SchedAction, SchedPoint, Schedule};
