//! Error types shared by every locking protocol in the workspace.

use std::error::Error;
use std::fmt;

/// Result alias used throughout the workspace.
pub type SyncResult<T> = Result<T, SyncError>;

/// Errors surfaced by the synchronization protocols and their substrates.
///
/// These mirror the failure modes of the Java monitor operations the paper
/// implements: `IllegalMonitorStateException` when a thread performs a
/// monitor operation on an object it does not own, plus resource-exhaustion
/// conditions of the fixed-size tables the paper relies on (15-bit thread
/// indices, 23-bit monitor indices, a fixed-capacity heap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SyncError {
    /// A monitor operation (`unlock`, `wait`, `notify`, `notifyAll`) was
    /// attempted by a thread that does not own the object's monitor.
    ///
    /// Java throws `IllegalMonitorStateException` here.
    NotOwner,
    /// An unlock was attempted on an object that is not locked at all.
    NotLocked,
    /// The 15-bit thread-index space (32767 live threads) is exhausted.
    ThreadIndexExhausted,
    /// The 23-bit monitor-index space is exhausted (more than 8,388,607
    /// inflated locks alive at once).
    MonitorIndexExhausted,
    /// The fixed-capacity heap has no room for another object.
    HeapFull,
    /// A thread token was used with a registry it does not belong to, or
    /// after its thread was deregistered.
    StaleThreadToken,
    /// `wait` was interrupted via [`crate::registry::ThreadRegistry::interrupt`].
    ///
    /// Java throws `InterruptedException`; protocols re-acquire the monitor
    /// before surfacing this, exactly as the JLS requires.
    Interrupted,
    /// A timed acquisition (`lock_deadline`) gave up: the bounded
    /// spin/park phase ran past its deadline without winning the lock.
    /// The lock was *not* acquired.
    Timeout,
    /// A timed acquisition gave up *and* the deadlock watchdog found the
    /// calling thread on a waits-for cycle at that moment: every thread
    /// on the cycle is blocked on a lock held by the next one. The lock
    /// was not acquired; backing off (releasing held locks and retrying)
    /// breaks the cycle.
    DeadlockDetected,
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SyncError::NotOwner => "current thread does not own the monitor",
            SyncError::NotLocked => "object is not locked",
            SyncError::ThreadIndexExhausted => "thread index space (15 bits) exhausted",
            SyncError::MonitorIndexExhausted => "monitor index space (23 bits) exhausted",
            SyncError::HeapFull => "heap capacity exhausted",
            SyncError::StaleThreadToken => "thread token is stale or from another registry",
            SyncError::Interrupted => "wait was interrupted",
            SyncError::Timeout => "timed lock acquisition ran past its deadline",
            SyncError::DeadlockDetected => "deadlock detected: thread waits on a waits-for cycle",
        };
        f.write_str(msg)
    }
}

impl Error for SyncError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        for e in [
            SyncError::NotOwner,
            SyncError::NotLocked,
            SyncError::ThreadIndexExhausted,
            SyncError::MonitorIndexExhausted,
            SyncError::HeapFull,
            SyncError::StaleThreadToken,
            SyncError::Interrupted,
            SyncError::Timeout,
            SyncError::DeadlockDetected,
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SyncError>();
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SyncError::NotOwner, SyncError::NotOwner);
        assert_ne!(SyncError::NotOwner, SyncError::NotLocked);
    }
}
