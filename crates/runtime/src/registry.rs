//! The thread-index table and per-thread execution environment.
//!
//! Section 2.3 of the paper: thin locks store a **15-bit thread index**; a
//! global table maps indices to thread structures, and each thread's
//! execution environment caches its own index *pre-shifted* 16 bits left so
//! the lock fast path can build the "locked once by me" word with a single
//! OR. This module provides exactly that:
//!
//! * [`ThreadRegistry`] — allocates indices 1..=32767 (0 means *unlocked*),
//!   recycles them when threads exit, and maps an index back to the
//!   thread's [`Parker`] so the heavyweight monitor layer can block and
//!   wake threads by index.
//! * [`ThreadToken`] — the cached execution-environment view: the index and
//!   its pre-shifted form, `Copy` so it travels freely through fast paths.
//! * [`Parker`] — a binary-semaphore thread parker built on
//!   `Mutex`/`Condvar`, the primitive under the fat-lock queues.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use crate::error::SyncError;
use crate::heap::ObjRef;
use crate::lockword::ThreadIndex;

/// A binary-semaphore parker: `unpark` grants one permit, `park` consumes
/// one, blocking until available. Robust to spurious wakeups and to
/// `unpark` arriving before `park`.
///
/// # Example
///
/// ```
/// use thinlock_runtime::registry::Parker;
/// let p = Parker::new();
/// p.unpark();
/// p.park(); // permit already available: returns immediately
/// ```
#[derive(Debug, Default)]
pub struct Parker {
    permit: Mutex<bool>,
    cvar: Condvar,
}

impl Parker {
    /// Creates a parker with no permit available.
    pub fn new() -> Self {
        Parker::default()
    }

    /// Blocks until a permit is available, then consumes it.
    pub fn park(&self) {
        let mut permit = self.permit.lock().expect("parker mutex poisoned");
        while !*permit {
            permit = self.cvar.wait(permit).expect("parker mutex poisoned");
        }
        *permit = false;
    }

    /// Blocks until a permit is available or `timeout` elapses.
    ///
    /// Returns `true` if a permit was consumed, `false` on timeout.
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut permit = self.permit.lock().expect("parker mutex poisoned");
        while !*permit {
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (guard, _res) = self
                .cvar
                .wait_timeout(permit, remaining)
                .expect("parker mutex poisoned");
            permit = guard;
        }
        *permit = false;
        true
    }

    /// Makes one permit available, waking a parked thread if any.
    /// Saturating: multiple unparks before a park still grant one permit.
    pub fn unpark(&self) {
        let mut permit = self.permit.lock().expect("parker mutex poisoned");
        *permit = true;
        self.cvar.notify_one();
    }

    /// Discards any pending permit (used when a thread is about to re-wait
    /// and must not consume a stale wakeup).
    pub fn clear_permit(&self) {
        let mut permit = self.permit.lock().expect("parker mutex poisoned");
        *permit = false;
    }
}

/// Sentinel in [`ThreadRecord::blocked_on`]'s cell meaning "not blocked".
const NOT_BLOCKED: u64 = 0;

/// Per-thread record held by the registry while a thread is registered.
#[derive(Debug)]
pub struct ThreadRecord {
    index: ThreadIndex,
    parker: Parker,
    interrupted: AtomicBool,
    /// The object this thread is currently blocked acquiring, stored as
    /// `obj index + 1` (0 when not blocked). Advisory: protocols publish
    /// it around blocking acquisition so the deadlock watchdog can build
    /// the waits-for graph; it is never read on any correctness path.
    blocked_on: AtomicU64,
}

impl ThreadRecord {
    /// The thread's index.
    pub fn index(&self) -> ThreadIndex {
        self.index
    }

    /// The thread's parker.
    pub fn parker(&self) -> &Parker {
        &self.parker
    }

    /// True if an interrupt is pending; clears the flag when `clear` is set
    /// (Java's `Thread.interrupted()` vs `isInterrupted()`).
    pub fn take_interrupt(&self, clear: bool) -> bool {
        if clear {
            self.interrupted.swap(false, Ordering::Relaxed)
        } else {
            self.interrupted.load(Ordering::Relaxed)
        }
    }

    /// Marks an interrupt pending and wakes the thread if parked.
    pub fn interrupt(&self) {
        self.interrupted.store(true, Ordering::Relaxed);
        self.parker.unpark();
    }

    /// Publishes (or clears, with `None`) the object this thread is
    /// blocked acquiring. Protocols call this around blocking waits so
    /// the deadlock watchdog can see waits-for edges.
    pub fn set_blocked_on(&self, obj: Option<ObjRef>) {
        let encoded = obj.map_or(NOT_BLOCKED, |o| o.index() as u64 + 1);
        self.blocked_on.store(encoded, Ordering::Relaxed);
    }

    /// The object this thread last published as blocking on, if any.
    pub fn blocked_on(&self) -> Option<ObjRef> {
        match self.blocked_on.load(Ordering::Relaxed) {
            NOT_BLOCKED => None,
            encoded => Some(ObjRef::from_index((encoded - 1) as usize)),
        }
    }
}

/// The execution-environment view of a registered thread: its index and
/// the index pre-shifted into lock-word position (Section 2.3.1: "the
/// thread index is stored pre-shifted by 16 bits, so that the locking code
/// does not have to perform an extra ALU operation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadToken {
    index: ThreadIndex,
    shifted: u32,
}

impl ThreadToken {
    /// The thread index.
    #[inline]
    pub fn index(self) -> ThreadIndex {
        self.index
    }

    /// The pre-shifted index, ready to OR into a lock word.
    #[inline]
    pub fn shifted(self) -> u32 {
        self.shifted
    }
}

impl fmt::Display for ThreadToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.index, f)
    }
}

/// RAII registration of the current thread with a [`ThreadRegistry`];
/// dropping it returns the index to the free pool.
#[derive(Debug)]
pub struct Registration {
    registry: Arc<RegistryShared>,
    token: ThreadToken,
}

impl Registration {
    /// The `Copy` token to thread through lock operations.
    pub fn token(&self) -> ThreadToken {
        self.token
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        self.registry.release(self.token.index);
    }
}

/// Hook run when a registration is released, *before* the dead thread's
/// index returns to the free pool.
///
/// This ordering is the registry's anti-ABA guarantee for orphaned locks:
/// a lock word still carrying the dead thread's index is reclaimed by the
/// sweep while no live thread can possibly hold that index, so a later
/// thread that recycles it can never be mistaken for the dead owner (nor
/// inherit its locks). `ThinLocks::with_orphan_recovery` installs the
/// protocol-side implementation.
pub trait ExitSweeper: Send + Sync {
    /// Reclaims whatever `index`'s thread still owned. Called after the
    /// registry slot is cleared (lookups of `index` already fail) and
    /// before the index is recycled.
    fn sweep_thread(&self, index: ThreadIndex, registry: &ThreadRegistry);
}

struct RegistryShared {
    slots: Box<[RwLock<Option<Arc<ThreadRecord>>>]>,
    free: Mutex<FreePool>,
    sweeper: RwLock<Option<Arc<dyn ExitSweeper>>>,
}

impl fmt::Debug for RegistryShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegistryShared")
            .field("slots", &self.slots.len())
            .field(
                "sweeper",
                &self
                    .sweeper
                    .read()
                    .expect("registry sweeper poisoned")
                    .is_some(),
            )
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct FreePool {
    recycled: Vec<u16>,
    next_fresh: u16,
}

impl RegistryShared {
    fn release(self: &Arc<Self>, index: ThreadIndex) {
        // Step 1: clear the slot. From here on record(index) fails with
        // StaleThreadToken, so the fat-lock layer skips this thread.
        let slot = &self.slots[index.get() as usize];
        *slot.write().expect("registry slot poisoned") = None;
        // Step 2: sweep orphaned locks while the index is in limbo —
        // neither live nor reusable.
        let sweeper = self
            .sweeper
            .read()
            .expect("registry sweeper poisoned")
            .clone();
        if let Some(sweeper) = sweeper {
            let registry = ThreadRegistry {
                shared: Arc::clone(self),
            };
            sweeper.sweep_thread(index, &registry);
        }
        // Step 3: only now may the index be handed to a new thread.
        self.free
            .lock()
            .expect("registry free pool poisoned")
            .recycled
            .push(index.get());
    }
}

/// The global thread-index table of the paper.
///
/// # Example
///
/// ```
/// use thinlock_runtime::registry::ThreadRegistry;
///
/// let registry = ThreadRegistry::new();
/// let me = registry.register()?;
/// let token = me.token();
/// assert_eq!(u32::from(token.index().get()) << 16, token.shifted());
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThreadRegistry {
    shared: Arc<RegistryShared>,
}

impl Default for ThreadRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadRegistry {
    /// Default maximum number of simultaneously registered threads.
    ///
    /// The 15-bit index space allows 32767; we default lower to keep the
    /// slot table small, which suffices for every workload in the paper.
    pub const DEFAULT_MAX_THREADS: u16 = 4096;

    /// Creates a registry with the default capacity.
    pub fn new() -> Self {
        Self::with_max_threads(Self::DEFAULT_MAX_THREADS)
    }

    /// Creates a registry admitting at most `max_threads` concurrent
    /// registrations (clamped to the 15-bit architectural limit).
    pub fn with_max_threads(max_threads: u16) -> Self {
        let max = max_threads.clamp(1, ThreadIndex::MAX);
        let slots: Box<[RwLock<Option<Arc<ThreadRecord>>>]> =
            (0..=max as usize).map(|_| RwLock::new(None)).collect();
        ThreadRegistry {
            shared: Arc::new(RegistryShared {
                slots,
                free: Mutex::new(FreePool {
                    recycled: Vec::new(),
                    next_fresh: 1,
                }),
                sweeper: RwLock::new(None),
            }),
        }
    }

    /// Maximum number of simultaneously registered threads.
    pub fn max_threads(&self) -> u16 {
        (self.shared.slots.len() - 1) as u16
    }

    /// Registers the calling thread, assigning it a thread index.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::ThreadIndexExhausted`] when all indices are in
    /// use.
    pub fn register(&self) -> Result<Registration, SyncError> {
        let raw = {
            let mut pool = self
                .shared
                .free
                .lock()
                .expect("registry free pool poisoned");
            if let Some(r) = pool.recycled.pop() {
                r
            } else if (pool.next_fresh as usize) < self.shared.slots.len() {
                let r = pool.next_fresh;
                pool.next_fresh += 1;
                r
            } else {
                return Err(SyncError::ThreadIndexExhausted);
            }
        };
        let index = ThreadIndex::new(raw).expect("pool never hands out 0 or overflow");
        let record = Arc::new(ThreadRecord {
            index,
            parker: Parker::new(),
            interrupted: AtomicBool::new(false),
            blocked_on: AtomicU64::new(NOT_BLOCKED),
        });
        *self.shared.slots[raw as usize]
            .write()
            .expect("registry slot poisoned") = Some(record);
        Ok(Registration {
            registry: Arc::clone(&self.shared),
            token: ThreadToken {
                index,
                shifted: index.shifted(),
            },
        })
    }

    /// Looks up the record of a registered thread.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::StaleThreadToken`] if no thread currently holds
    /// that index.
    pub fn record(&self, index: ThreadIndex) -> Result<Arc<ThreadRecord>, SyncError> {
        self.shared.slots[index.get() as usize]
            .read()
            .expect("registry slot poisoned")
            .clone()
            .ok_or(SyncError::StaleThreadToken)
    }

    /// Marks the thread holding `index` interrupted, waking it if parked.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::StaleThreadToken`] if the index is unoccupied.
    pub fn interrupt(&self, index: ThreadIndex) -> Result<(), SyncError> {
        self.record(index)?.interrupt();
        Ok(())
    }

    /// Number of live registrations.
    pub fn live_threads(&self) -> usize {
        let pool = self
            .shared
            .free
            .lock()
            .expect("registry free pool poisoned");
        (pool.next_fresh as usize - 1) - pool.recycled.len()
    }

    /// Installs the hook run when a registration drops, replacing any
    /// previous one. The sweep runs on the releasing thread, after its
    /// slot is cleared and before its index is recycled.
    pub fn set_exit_sweeper(&self, sweeper: Arc<dyn ExitSweeper>) {
        *self
            .shared
            .sweeper
            .write()
            .expect("registry sweeper poisoned") = Some(sweeper);
    }

    /// Snapshot of every live thread record, for diagnostic scans (the
    /// deadlock watchdog's waits-for graph). Registrations racing with
    /// the snapshot may or may not appear.
    pub fn live_records(&self) -> Vec<Arc<ThreadRecord>> {
        self.shared
            .slots
            .iter()
            .filter_map(|slot| slot.read().expect("registry slot poisoned").clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn indices_start_at_one_and_recycle() {
        let reg = ThreadRegistry::with_max_threads(4);
        let a = reg.register().unwrap();
        let b = reg.register().unwrap();
        assert_eq!(a.token().index().get(), 1);
        assert_eq!(b.token().index().get(), 2);
        assert_eq!(reg.live_threads(), 2);
        let freed = b.token().index();
        drop(b);
        assert_eq!(reg.live_threads(), 1);
        let c = reg.register().unwrap();
        assert_eq!(c.token().index(), freed, "index is recycled");
    }

    #[test]
    fn exhaustion_is_reported() {
        let reg = ThreadRegistry::with_max_threads(2);
        let _a = reg.register().unwrap();
        let _b = reg.register().unwrap();
        assert!(matches!(
            reg.register(),
            Err(SyncError::ThreadIndexExhausted)
        ));
    }

    #[test]
    fn token_shift_matches_lockword_layout() {
        let reg = ThreadRegistry::new();
        let r = reg.register().unwrap();
        let t = r.token();
        assert_eq!(t.shifted(), t.index().shifted());
        assert_eq!(t.to_string(), format!("t{}", t.index().get()));
    }

    #[test]
    fn record_lookup_and_staleness() {
        let reg = ThreadRegistry::new();
        let r = reg.register().unwrap();
        let idx = r.token().index();
        assert!(reg.record(idx).is_ok());
        drop(r);
        assert_eq!(reg.record(idx).unwrap_err(), SyncError::StaleThreadToken);
        assert_eq!(reg.interrupt(idx).unwrap_err(), SyncError::StaleThreadToken);
    }

    #[test]
    fn parker_permit_before_park() {
        let p = Parker::new();
        p.unpark();
        p.unpark(); // saturating
        p.park(); // consumes the single permit
        assert!(!p.park_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn parker_timeout_expires() {
        let p = Parker::new();
        let start = Instant::now();
        assert!(!p.park_timeout(Duration::from_millis(30)));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn parker_cross_thread_handoff() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            p2.park();
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        p.unpark();
        assert!(h.join().unwrap());
    }

    #[test]
    fn clear_permit_discards_wakeup() {
        let p = Parker::new();
        p.unpark();
        p.clear_permit();
        assert!(!p.park_timeout(Duration::from_millis(5)));
    }

    #[test]
    fn interrupt_sets_flag_and_unparks() {
        let reg = ThreadRegistry::new();
        let r = reg.register().unwrap();
        let idx = r.token().index();
        let rec = reg.record(idx).unwrap();
        assert!(!rec.take_interrupt(false));
        reg.interrupt(idx).unwrap();
        assert!(rec.take_interrupt(false), "flag visible without clearing");
        assert!(rec.take_interrupt(true), "flag cleared");
        assert!(!rec.take_interrupt(false));
        // The interrupt also left a permit.
        assert!(rec.parker().park_timeout(Duration::from_millis(5)));
    }

    #[test]
    fn blocked_on_roundtrips_and_clears() {
        let reg = ThreadRegistry::new();
        let r = reg.register().unwrap();
        let rec = reg.record(r.token().index()).unwrap();
        assert_eq!(rec.blocked_on(), None);
        let obj = ObjRef::from_index(0); // index 0 must be representable
        rec.set_blocked_on(Some(obj));
        assert_eq!(rec.blocked_on(), Some(obj));
        rec.set_blocked_on(None);
        assert_eq!(rec.blocked_on(), None);
    }

    #[test]
    fn live_records_snapshots_registered_threads() {
        let reg = ThreadRegistry::with_max_threads(8);
        let a = reg.register().unwrap();
        let b = reg.register().unwrap();
        let mut seen: Vec<u16> = reg
            .live_records()
            .iter()
            .map(|rec| rec.index().get())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![a.token().index().get(), b.token().index().get()]);
        drop(a);
        assert_eq!(reg.live_records().len(), 1);
        drop(b);
        assert!(reg.live_records().is_empty());
    }

    #[test]
    fn exit_sweeper_runs_between_slot_clear_and_recycle() {
        use std::sync::atomic::AtomicU16;

        #[derive(Debug, Default)]
        struct Probe {
            swept: AtomicU16,
            index_was_live: AtomicBool,
            index_was_recycled: AtomicBool,
        }
        impl ExitSweeper for Probe {
            fn sweep_thread(&self, index: ThreadIndex, registry: &ThreadRegistry) {
                self.swept.store(index.get(), Ordering::Relaxed);
                // The slot is already cleared...
                self.index_was_live
                    .store(registry.record(index).is_ok(), Ordering::Relaxed);
                // ...but the index must not be reusable yet: with a
                // 1-slot registry, re-registering would hand it back.
                self.index_was_recycled
                    .store(registry.register().is_ok(), Ordering::Relaxed);
            }
        }

        let reg = ThreadRegistry::with_max_threads(1);
        let probe = Arc::new(Probe::default());
        reg.set_exit_sweeper(Arc::clone(&probe) as Arc<dyn ExitSweeper>);
        let r = reg.register().unwrap();
        let idx = r.token().index().get();
        drop(r);
        assert_eq!(probe.swept.load(Ordering::Relaxed), idx);
        assert!(!probe.index_was_live.load(Ordering::Relaxed));
        assert!(!probe.index_was_recycled.load(Ordering::Relaxed));
        // After the drop completes, the index is reusable again.
        assert!(reg.register().is_ok());
    }

    #[test]
    fn many_registrations_concurrently() {
        let reg = ThreadRegistry::with_max_threads(64);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let r = reg.register().unwrap();
                    std::hint::black_box(r.token());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.live_threads(), 0);
    }
}
