//! The cooperative-scheduling seam: labeled protocol points where a
//! model checker can serialize and steer thread interleavings.
//!
//! The fault seam ([`fault`](crate::fault)) lets a harness *perturb* a
//! schedule; this seam lets one *own* it. A [`Schedule`] implementation
//! (the `thinlock-modelcheck` crate's cooperative scheduler) blocks the
//! calling thread inside [`Schedule::reached`] until the controller
//! grants it the next step, which serializes execution and makes every
//! interleaving of a small thread program reachable and replayable —
//! the substrate for exhaustive DFS/DPOR exploration (DESIGN.md §14).
//!
//! The design mirrors [`FaultInjector`](crate::fault::FaultInjector)
//! exactly: protocol structures hold an `Option<Arc<dyn Schedule>>`,
//! and when it is `None` the only hot-path cost is one never-taken
//! branch — the same zero-cost-when-disabled discipline as
//! [`TraceSink`](crate::events::TraceSink). Production builds never
//! attach a schedule; the model checker always does.
//!
//! # Contract
//!
//! A schedule point consults the schedule with its [`SchedPoint`] label
//! (and the object being operated on, when the site knows it) and
//! receives a [`SchedAction`]. [`SchedAction::SkipPark`] is honored
//! only at the two park points ([`SchedPoint::FatPark`],
//! [`SchedPoint::WaitPark`]) — a scheduler that serializes execution
//! answers `SkipPark` there so no thread ever really parks; blocking
//! happens inside `reached` instead, where the controller can see it.
//! Every schedule point sits *outside* any internal mutex (the fat
//! lock's `inner` critical sections in particular), so a thread blocked
//! in `reached` never holds a lock another thread needs to make
//! progress.

use std::fmt;

use crate::heap::ObjRef;

/// A labeled place in the locking protocol where a [`Schedule`] can
/// preempt the calling thread.
///
/// Each variant names one step of the protocol state machine, placed
/// *before* the step's effect becomes visible to other threads, so a
/// controller observing a thread blocked at a point knows the step has
/// not happened yet. The list is the schedule-point catalog of
/// DESIGN.md §14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SchedPoint {
    /// Before the thin fast-path acquiring CAS (scenario 1).
    LockFast,
    /// Before the nested-count increment store (scenarios 2–3).
    LockNest,
    /// Before the slow-path acquiring CAS in the contention loop.
    LockSlowCas,
    /// Before one spin round while the lock is thin-held by another
    /// thread. A serializing scheduler keeps the thread here until the
    /// word becomes acquirable.
    LockSpin,
    /// Before a monitor is allocated and the inflated word published.
    Inflate,
    /// Before the store-based release of a thin lock.
    UnlockThin,
    /// Before the nested-count decrement store.
    UnlockNest,
    /// Before a fat lock is released through its monitor.
    FatUnlock,
    /// Before a deflating release restores the object's word to its
    /// neutral thin shape. Only protocols with a deflation step (the
    /// CJM backend, the Tasuki variant) emit this point; the thin
    /// protocol's one-way inflation never reaches it.
    Deflate,
    /// Before parking in the fat-lock entry queue. `SkipPark` applies.
    FatPark,
    /// Before parking in a `wait`. `SkipPark` applies.
    WaitPark,
    /// Before a `notify`/`notifyAll` is delivered to the monitor.
    Notify,
    /// An explicit checkpoint emitted by harness code (worker startup,
    /// statement boundaries in interpreted programs). The runtime never
    /// emits this point itself.
    Boundary,
}

impl SchedPoint {
    /// Every schedule point, in catalog order.
    pub const ALL: [SchedPoint; 13] = [
        SchedPoint::LockFast,
        SchedPoint::LockNest,
        SchedPoint::LockSlowCas,
        SchedPoint::LockSpin,
        SchedPoint::Inflate,
        SchedPoint::UnlockThin,
        SchedPoint::UnlockNest,
        SchedPoint::FatUnlock,
        SchedPoint::Deflate,
        SchedPoint::FatPark,
        SchedPoint::WaitPark,
        SchedPoint::Notify,
        SchedPoint::Boundary,
    ];

    /// Stable short name for reports and counterexample timelines.
    pub fn name(self) -> &'static str {
        match self {
            SchedPoint::LockFast => "lock-fast",
            SchedPoint::LockNest => "lock-nest",
            SchedPoint::LockSlowCas => "lock-slow-cas",
            SchedPoint::LockSpin => "lock-spin",
            SchedPoint::Inflate => "inflate",
            SchedPoint::UnlockThin => "unlock-thin",
            SchedPoint::UnlockNest => "unlock-nest",
            SchedPoint::FatUnlock => "fat-unlock",
            SchedPoint::Deflate => "deflate",
            SchedPoint::FatPark => "fat-park",
            SchedPoint::WaitPark => "wait-park",
            SchedPoint::Notify => "notify",
            SchedPoint::Boundary => "boundary",
        }
    }

    /// The stable index of this point in [`SchedPoint::ALL`]; used by
    /// per-point counter arrays.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|p| *p == self)
            .expect("every point appears in ALL")
    }

    /// True at the two points where [`SchedAction::SkipPark`] applies.
    pub fn is_park(self) -> bool {
        matches!(self, SchedPoint::FatPark | SchedPoint::WaitPark)
    }
}

impl fmt::Display for SchedPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a schedule tells a schedule point to do once the thread is
/// granted its next step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum SchedAction {
    /// Execute the step normally.
    #[default]
    Proceed,
    /// Skip the upcoming park (legal: parks may always wake
    /// spuriously), so the caller re-runs its acquire/wait loop instead
    /// of sleeping. Only meaningful where [`SchedPoint::is_park`] is
    /// true; other sites treat it as [`SchedAction::Proceed`].
    SkipPark,
}

impl fmt::Display for SchedAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SchedAction::Proceed => "proceed",
            SchedAction::SkipPark => "skip-park",
        };
        f.write_str(s)
    }
}

/// A scheduler consulted at every [`SchedPoint`] a structure with an
/// attached schedule passes through.
///
/// Implementations must be `Send + Sync`. Unlike
/// [`TraceSink::record`](crate::events::TraceSink::record), `reached`
/// **may block**: that is its purpose — a serializing scheduler holds
/// the calling thread here until the controller picks it. Threads the
/// implementation does not manage (it keys workers by OS thread id)
/// must pass through immediately with [`SchedAction::Proceed`], so an
/// attached schedule never stalls setup code on the harness thread.
pub trait Schedule: Send + Sync {
    /// Announces that the calling thread is about to execute the step
    /// labeled `point` on `obj` (when the site knows the object), and
    /// blocks until the step is granted.
    fn reached(&self, point: SchedPoint, obj: Option<ObjRef>) -> SchedAction;
}

/// Convenience: consult an optional schedule, treating `None` as
/// [`SchedAction::Proceed`]. This is the zero-cost-when-disabled gate
/// every schedule point goes through — the same shape as
/// [`fault::decide_at`](crate::fault::decide_at).
#[inline]
pub fn reach_at(
    schedule: &Option<std::sync::Arc<dyn Schedule>>,
    point: SchedPoint,
    obj: Option<ObjRef>,
) -> SchedAction {
    match schedule {
        None => SchedAction::Proceed,
        Some(s) => s.reached(point, obj),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Debug)]
    struct AlwaysSkip;
    impl Schedule for AlwaysSkip {
        fn reached(&self, _point: SchedPoint, _obj: Option<ObjRef>) -> SchedAction {
            SchedAction::SkipPark
        }
    }

    #[test]
    fn all_points_have_unique_names_and_indices() {
        let mut names: Vec<&str> = SchedPoint::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SchedPoint::ALL.len());
        for (i, p) in SchedPoint::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(p.to_string(), p.name());
        }
    }

    #[test]
    fn only_park_points_accept_skip_park() {
        let parks: Vec<SchedPoint> = SchedPoint::ALL
            .iter()
            .copied()
            .filter(|p| p.is_park())
            .collect();
        assert_eq!(parks, [SchedPoint::FatPark, SchedPoint::WaitPark]);
    }

    #[test]
    fn reach_at_defaults_to_proceed() {
        let none: Option<Arc<dyn Schedule>> = None;
        assert_eq!(
            reach_at(&none, SchedPoint::LockFast, None),
            SchedAction::Proceed
        );
        let some: Option<Arc<dyn Schedule>> = Some(Arc::new(AlwaysSkip));
        assert_eq!(
            reach_at(&some, SchedPoint::FatPark, None),
            SchedAction::SkipPark
        );
    }

    #[test]
    fn schedule_is_object_safe() {
        let s: Arc<dyn Schedule> = Arc::new(AlwaysSkip);
        assert_eq!(s.reached(SchedPoint::WaitPark, None), SchedAction::SkipPark);
    }

    #[test]
    fn action_default_is_proceed() {
        assert_eq!(SchedAction::default(), SchedAction::Proceed);
        assert_eq!(SchedAction::Proceed.to_string(), "proceed");
        assert_eq!(SchedAction::SkipPark.to_string(), "skip-park");
    }
}
