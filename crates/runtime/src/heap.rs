//! A fixed-capacity object heap with three-word headers.
//!
//! The paper's JVM gives every object a three-word header; the thin lock
//! borrows 24 bits of one of those words, and the remaining 8 bits of that
//! word hold other header data (hash bits, GC bits) that locking must never
//! disturb. This heap reproduces that layout:
//!
//! * word 0 — the lock word ([`crate::arch::LockWordCell`]), whose low byte
//!   is initialized to a per-object pseudo-hash so tests can detect any
//!   protocol that clobbers the shared bits;
//! * word 1 — class id and flags;
//! * word 2 — size / auxiliary data (used by the baselines to stash a
//!   displaced header when a hot lock takes over word 0's role).
//!
//! Objects may additionally carry a fixed number of `i32` instance fields
//! (used by the bytecode VM). Allocation is a wait-free atomic bump over a
//! preallocated arena, mirroring a real VM's nursery; a full heap returns
//! [`SyncError::HeapFull`] rather than growing, because growth would move
//! headers and (per the paper) the header bits may only change "when an
//! object is moved", which our non-moving collector never does.

use std::fmt;
use std::sync::atomic::{AtomicI32, AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

use crate::arch::LockWordCell;
use crate::error::SyncError;
use crate::fault::{FaultAction, FaultInjector, InjectionPoint};
use crate::lockword::LockWord;

/// A reference to a heap object: an index into the heap's arena.
///
/// `ObjRef` is `Copy` and meaningful only together with the [`Heap`] that
/// produced it, like an object pointer is only meaningful within its
/// address space.
///
/// # Example
///
/// ```
/// use thinlock_runtime::heap::Heap;
/// let heap = Heap::with_capacity(4);
/// let a = heap.alloc()?;
/// let b = heap.alloc()?;
/// assert_ne!(a, b);
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjRef(u32);

impl ObjRef {
    /// The arena slot of this object.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a reference from a slot index previously obtained from
    /// [`ObjRef::index`]. The caller must pair it with the right heap.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ObjRef(index as u32)
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// The three-word object header of the paper's JVM.
#[derive(Debug)]
pub struct ObjectHeader {
    lock: LockWordCell,
    class_and_flags: AtomicU32,
    aux: AtomicU32,
}

impl ObjectHeader {
    fn new(hash_bits: u8) -> Self {
        ObjectHeader {
            lock: LockWordCell::new(LockWord::new_unlocked(hash_bits)),
            class_and_flags: AtomicU32::new(0),
            aux: AtomicU32::new(0),
        }
    }

    /// The header word containing the 24-bit lock field.
    #[inline]
    pub fn lock_word(&self) -> &LockWordCell {
        &self.lock
    }

    /// The class-id/flags word (word 1).
    #[inline]
    pub fn class_and_flags(&self) -> &AtomicU32 {
        &self.class_and_flags
    }

    /// The auxiliary word (word 2); baselines use it for displaced headers.
    #[inline]
    pub fn aux(&self) -> &AtomicU32 {
        &self.aux
    }

    /// The 8 non-lock bits of the lock word, fixed at allocation.
    #[inline]
    pub fn hash_bits(&self) -> u8 {
        self.lock.load_relaxed().header_bits()
    }
}

/// A fixed-capacity, non-moving object heap.
///
/// # Example
///
/// ```
/// use thinlock_runtime::heap::Heap;
///
/// let heap = Heap::with_capacity_and_fields(8, 2);
/// let obj = heap.alloc_with_class(17)?;
/// heap.field(obj, 0).store(41, std::sync::atomic::Ordering::Relaxed);
/// assert_eq!(heap.field(obj, 0).load(std::sync::atomic::Ordering::Relaxed), 41);
/// assert_eq!(heap.class_of(obj), 17);
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
pub struct Heap {
    headers: Box<[ObjectHeader]>,
    fields: Box<[AtomicI32]>,
    fields_per_object: usize,
    next: AtomicU32,
    injector: OnceLock<Arc<dyn FaultInjector>>,
}

impl Heap {
    /// Creates a heap that can hold `capacity` field-less objects.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_fields(capacity, 0)
    }

    /// Creates a heap of `capacity` objects, each with `fields_per_object`
    /// signed 32-bit instance fields (all initialized to zero).
    pub fn with_capacity_and_fields(capacity: usize, fields_per_object: usize) -> Self {
        assert!(capacity <= u32::MAX as usize, "heap capacity exceeds u32");
        let headers: Box<[ObjectHeader]> = (0..capacity)
            .map(|i| ObjectHeader::new(pseudo_hash(i)))
            .collect();
        let fields: Box<[AtomicI32]> = (0..capacity * fields_per_object)
            .map(|_| AtomicI32::new(0))
            .collect();
        Heap {
            headers,
            fields,
            fields_per_object,
            next: AtomicU32::new(0),
            injector: OnceLock::new(),
        }
    }

    /// Attaches a fault injector consulted at [`InjectionPoint::HeapAlloc`]
    /// on every allocation. Write-once: the first installed injector wins
    /// and later calls are ignored (mirroring `OnceLock` semantics), so a
    /// chaos harness can install through a shared `Arc<Heap>` without a
    /// `&mut` builder window.
    pub fn set_fault_injector(&self, injector: Arc<dyn FaultInjector>) {
        let _ = self.injector.set(injector);
    }

    /// Total number of objects this heap can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.headers.len()
    }

    /// Number of objects allocated so far.
    #[inline]
    pub fn allocated(&self) -> usize {
        (self.next.load(Ordering::Relaxed) as usize).min(self.capacity())
    }

    /// Instance fields carried by every object.
    #[inline]
    pub fn fields_per_object(&self) -> usize {
        self.fields_per_object
    }

    /// Allocates a fresh object with class id 0.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::HeapFull`] when the arena is exhausted.
    pub fn alloc(&self) -> Result<ObjRef, SyncError> {
        self.alloc_with_class(0)
    }

    /// Allocates a fresh object with the given class id.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::HeapFull`] when the arena is exhausted.
    pub fn alloc_with_class(&self, class_id: u32) -> Result<ObjRef, SyncError> {
        if let Some(injector) = self.injector.get() {
            match injector.decide(InjectionPoint::HeapAlloc) {
                FaultAction::Exhaust => return Err(SyncError::HeapFull),
                FaultAction::Yield => std::thread::yield_now(),
                _ => {}
            }
        }
        let slot = self.next.fetch_add(1, Ordering::Relaxed);
        if (slot as usize) >= self.headers.len() {
            // Undo so `allocated()` stays meaningful; harmless if racy
            // because every loser also decrements its own increment.
            self.next.fetch_sub(1, Ordering::Relaxed);
            return Err(SyncError::HeapFull);
        }
        self.headers[slot as usize]
            .class_and_flags
            .store(class_id, Ordering::Relaxed);
        Ok(ObjRef(slot))
    }

    /// The header of `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` was not produced by this heap (index out of range).
    #[inline]
    pub fn header(&self, obj: ObjRef) -> &ObjectHeader {
        &self.headers[obj.index()]
    }

    /// The class id of `obj`.
    #[inline]
    pub fn class_of(&self, obj: ObjRef) -> u32 {
        self.header(obj).class_and_flags.load(Ordering::Relaxed)
    }

    /// The `i`-th instance field of `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= fields_per_object` or `obj` is out of range.
    #[inline]
    pub fn field(&self, obj: ObjRef, i: usize) -> &AtomicI32 {
        assert!(i < self.fields_per_object, "field index out of range");
        &self.fields[obj.index() * self.fields_per_object + i]
    }

    /// Iterates over all allocated objects.
    pub fn iter(&self) -> impl Iterator<Item = ObjRef> + '_ {
        (0..self.allocated() as u32).map(ObjRef)
    }
}

impl fmt::Debug for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Heap")
            .field("capacity", &self.capacity())
            .field("allocated", &self.allocated())
            .field("fields_per_object", &self.fields_per_object)
            .finish()
    }
}

/// The fixed 8 hash/GC bits an object is born with. Deliberately varied so
/// a protocol that zeroes the low byte fails tests immediately.
///
/// Bit 0 is kept clear: the IBM 1.1.2 hot-lock baseline overloads bit 0 of
/// the header word as its "this word is a hot-lock pointer" marker, exactly
/// as the paper describes ("One bit in the header word indicates whether
/// the word is a hot lock pointer or regular header data"), so a real
/// header word must never have it set.
fn pseudo_hash(index: usize) -> u8 {
    (((index as u32).wrapping_mul(0x9E37_79B9) >> 24) as u8) & 0xFE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_full() {
        let heap = Heap::with_capacity(3);
        assert_eq!(heap.capacity(), 3);
        let a = heap.alloc().unwrap();
        let b = heap.alloc().unwrap();
        let c = heap.alloc().unwrap();
        assert_eq!(heap.allocated(), 3);
        assert_eq!(heap.alloc(), Err(SyncError::HeapFull));
        assert_eq!(heap.allocated(), 3);
        assert_eq!([a.index(), b.index(), c.index()], [0, 1, 2]);
    }

    #[test]
    fn objects_start_unlocked_with_varied_hash_bits() {
        let heap = Heap::with_capacity(64);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let o = heap.alloc().unwrap();
            let w = heap.header(o).lock_word().load_relaxed();
            assert!(w.is_unlocked());
            assert_eq!(w.header_bits() & 1, 0, "bit 0 reserved for hot marker");
            seen.insert(w.header_bits());
        }
        assert!(seen.len() > 8, "hash bits should vary across objects");
    }

    #[test]
    fn class_ids_are_recorded() {
        let heap = Heap::with_capacity(2);
        let o = heap.alloc_with_class(99).unwrap();
        assert_eq!(heap.class_of(o), 99);
    }

    #[test]
    fn fields_are_independent() {
        let heap = Heap::with_capacity_and_fields(2, 3);
        let a = heap.alloc().unwrap();
        let b = heap.alloc().unwrap();
        heap.field(a, 0).store(1, Ordering::Relaxed);
        heap.field(a, 2).store(3, Ordering::Relaxed);
        heap.field(b, 0).store(10, Ordering::Relaxed);
        assert_eq!(heap.field(a, 0).load(Ordering::Relaxed), 1);
        assert_eq!(heap.field(a, 1).load(Ordering::Relaxed), 0);
        assert_eq!(heap.field(a, 2).load(Ordering::Relaxed), 3);
        assert_eq!(heap.field(b, 0).load(Ordering::Relaxed), 10);
    }

    #[test]
    #[should_panic(expected = "field index out of range")]
    fn field_index_out_of_range_panics() {
        let heap = Heap::with_capacity_and_fields(1, 1);
        let o = heap.alloc().unwrap();
        let _ = heap.field(o, 1);
    }

    #[test]
    fn concurrent_allocation_yields_distinct_objects() {
        let heap = std::sync::Arc::new(Heap::with_capacity(1000));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = std::sync::Arc::clone(&heap);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..250 {
                    got.push(h.alloc().unwrap().index());
                }
                got
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000);
        assert_eq!(heap.alloc(), Err(SyncError::HeapFull));
    }

    #[test]
    fn injected_exhaustion_fails_alloc_without_consuming_capacity() {
        use std::sync::atomic::AtomicBool;

        #[derive(Debug, Default)]
        struct ExhaustOnce(AtomicBool);
        impl FaultInjector for ExhaustOnce {
            fn decide(&self, point: InjectionPoint) -> FaultAction {
                if point == InjectionPoint::HeapAlloc && !self.0.swap(true, Ordering::Relaxed) {
                    FaultAction::Exhaust
                } else {
                    FaultAction::Proceed
                }
            }
        }

        let heap = Heap::with_capacity(2);
        heap.set_fault_injector(Arc::new(ExhaustOnce::default()));
        assert_eq!(heap.alloc(), Err(SyncError::HeapFull));
        assert_eq!(heap.allocated(), 0, "injected failure consumed no slot");
        // Subsequent allocations proceed and the full capacity is usable.
        assert!(heap.alloc().is_ok());
        assert!(heap.alloc().is_ok());
        assert_eq!(heap.alloc(), Err(SyncError::HeapFull));
    }

    #[test]
    fn obj_ref_round_trips_through_index() {
        let r = ObjRef::from_index(41);
        assert_eq!(r.index(), 41);
        assert_eq!(r.to_string(), "obj#41");
    }

    #[test]
    fn iter_covers_allocated_objects() {
        let heap = Heap::with_capacity(5);
        for _ in 0..3 {
            heap.alloc().unwrap();
        }
        let v: Vec<usize> = heap.iter().map(|o| o.index()).collect();
        assert_eq!(v, vec![0, 1, 2]);
    }
}
