//! The common interface of every monitor implementation in the workspace.
//!
//! The paper compares three implementations of Java monitor semantics:
//! thin locks, the Sun JDK 1.1.1 monitor cache, and the IBM 1.1.2 hot
//! locks. [`SyncProtocol`] is the seam that lets the bytecode VM, the trace
//! replayer, and every benchmark run unchanged over all three.
//!
//! Semantics follow the Java language specification (derived from Mesa
//! monitors, as the paper notes): re-entrant mutual exclusion per object,
//! plus `wait`/`notify`/`notifyAll` condition queues with "notify moves the
//! waiter to the entry queue" (Mesa signal-and-continue) semantics.

use std::time::Duration;

#[allow(unused_imports)] // referenced by doc links; used by the testing oracle
use crate::error::SyncError;
use crate::error::SyncResult;
use crate::events::TraceSink;
use crate::heap::{Heap, ObjRef};
use crate::registry::{ThreadRegistry, ThreadToken};

/// Result of a [`SyncProtocol::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitOutcome {
    /// The thread was woken by `notify`/`notifyAll`.
    Notified,
    /// The timeout elapsed before a notification arrived.
    TimedOut,
}

/// Java monitor semantics over a shared [`Heap`] of objects.
///
/// Calling threads identify themselves with the [`ThreadToken`] issued by
/// the protocol's [`ThreadRegistry`]; this models the execution-environment
/// pointer that the paper's assembly fast path loads the pre-shifted thread
/// index from.
///
/// # Example
///
/// Generic code can take any protocol:
///
/// ```no_run
/// use thinlock_runtime::{SyncProtocol, ObjRef, ThreadToken, SyncResult};
///
/// fn critical_section<P: SyncProtocol>(p: &P, obj: ObjRef, me: ThreadToken) -> SyncResult<()> {
///     p.lock(obj, me)?;
///     // ... guarded work ...
///     p.unlock(obj, me)
/// }
/// ```
pub trait SyncProtocol: Send + Sync {
    /// Acquires the monitor of `obj` for thread `t`, re-entrantly.
    ///
    /// Blocks (spinning or queuing, per implementation) under contention.
    ///
    /// # Errors
    ///
    /// Implementation-specific resource exhaustion
    /// ([`SyncError::MonitorIndexExhausted`], …).
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()>;

    /// Releases one level of the monitor of `obj`.
    ///
    /// # Errors
    ///
    /// [`SyncError::NotOwner`] / [`SyncError::NotLocked`] when `t` does not
    /// own the monitor — Java's `IllegalMonitorStateException`.
    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()>;

    /// Releases the monitor entirely (all nesting levels), waits for a
    /// notification or timeout, then re-acquires to the previous nesting
    /// level before returning.
    ///
    /// # Errors
    ///
    /// [`SyncError::NotOwner`] if `t` does not own the monitor;
    /// [`SyncError::Interrupted`] if the thread was interrupted (the
    /// monitor is still re-acquired first, as the JLS requires).
    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome>;

    /// Wakes one thread waiting on `obj`, if any.
    ///
    /// # Errors
    ///
    /// [`SyncError::NotOwner`] if `t` does not own the monitor.
    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()>;

    /// Wakes every thread waiting on `obj`.
    ///
    /// # Errors
    ///
    /// [`SyncError::NotOwner`] if `t` does not own the monitor.
    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()>;

    /// True if thread `t` currently owns the monitor of `obj`.
    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool;

    /// Attempts to acquire the monitor of `obj` without blocking.
    ///
    /// Returns `Ok(true)` if acquired (including re-entrantly) and
    /// `Ok(false)` if the monitor was held by another thread. The default
    /// delegates to [`SyncProtocol::lock`] and therefore **may block**;
    /// it exists so protocols without a non-blocking path (the JDK 1.1.1
    /// monitor-cache baseline) stay correct, merely without the timeliness
    /// guarantee. The thin-lock protocol overrides it with a genuinely
    /// non-blocking attempt.
    ///
    /// # Errors
    ///
    /// Same resource-exhaustion errors as [`SyncProtocol::lock`].
    fn try_lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<bool> {
        self.lock(obj, t).map(|()| true)
    }

    /// Acquires the monitor of `obj`, giving up after `timeout`.
    ///
    /// On success the monitor is held exactly as after
    /// [`SyncProtocol::lock`]. On timeout the monitor is **not** held and
    /// [`SyncError::Timeout`] is returned; implementations with a
    /// deadlock watchdog may return [`SyncError::DeadlockDetected`]
    /// instead when the caller was on a waits-for cycle at the deadline.
    /// The default delegates to [`SyncProtocol::lock`] and ignores the
    /// timeout (unbounded blocking), so it never reports either error.
    ///
    /// # Errors
    ///
    /// [`SyncError::Timeout`], [`SyncError::DeadlockDetected`], plus the
    /// resource-exhaustion errors of [`SyncProtocol::lock`].
    fn lock_deadline(&self, obj: ObjRef, t: ThreadToken, timeout: Duration) -> SyncResult<()> {
        let _ = timeout;
        self.lock(obj, t)
    }

    /// Applies a static pre-inflation hint to `obj`, if the protocol has a
    /// cheaper-up-front lock representation it can skip.
    ///
    /// Static analysis (the `lockcheck` nest-depth pass) can prove that an
    /// object's lock nesting may exceed a thin lock's 8-bit count, which
    /// would force an inflation in the middle of a critical section. A
    /// protocol that distinguishes cheap and expensive lock shapes can use
    /// this hint to switch the object to the expensive shape *before* the
    /// workload runs. Returns `true` if the hint changed the object's
    /// representation. The default does nothing: protocols without an
    /// inflation step (monitor caches, oracles) have nothing to pre-arm.
    fn pre_inflate_hint(&self, obj: ObjRef) -> bool {
        let _ = obj;
        false
    }

    /// Static FIFO-admission hint, delivered before a workload runs.
    ///
    /// A contention analysis that predicts a hot multi-thread mutex can
    /// ask the protocol to admit `obj`'s acquirers in FIFO order from
    /// the start, instead of waiting for a dynamic policy to observe the
    /// contention first. Returns `true` if the protocol honors the pin.
    /// The default does nothing: most protocols have no admission-order
    /// machinery to arm (the probe `BackendChoice::fifo_admission` names
    /// the ones that do).
    fn pin_fifo_hint(&self, obj: ObjRef) -> bool {
        let _ = obj;
        false
    }

    /// The event sink this protocol records lock events into, if any.
    ///
    /// Protocols that support event tracing (the thin-lock protocol with
    /// a `thinlock-obs` tracer attached) return their sink here so
    /// generic harness code — the bytecode VM, the trace replayer, the
    /// `reproduce` binary — can record protocol-adjacent events (sync
    /// elision hits, hint deliveries) into the *same* event stream the
    /// protocol's own recording points feed, without knowing the
    /// concrete protocol or sink type. The default is `None`: tracing
    /// is strictly opt-in and costs untraced protocols nothing.
    fn trace_sink(&self) -> Option<&dyn TraceSink> {
        None
    }

    /// The heap whose objects this protocol synchronizes.
    fn heap(&self) -> &Heap;

    /// The registry that issued the tokens this protocol accepts.
    fn registry(&self) -> &ThreadRegistry;

    /// Short stable name used in benchmark reports ("ThinLock", "JDK111",
    /// "IBM112").
    fn name(&self) -> &'static str;
}

/// RAII guard: releases the monitor when dropped, even on unwind, so a
/// panicking critical section cannot leak a lock (Java's `synchronized`
/// unlocks on exception for the same reason).
#[derive(Debug)]
pub struct MonitorGuard<'p, P: SyncProtocol + ?Sized> {
    protocol: &'p P,
    obj: ObjRef,
    token: ThreadToken,
}

impl<'p, P: SyncProtocol + ?Sized> MonitorGuard<'p, P> {
    /// The guarded object.
    pub fn object(&self) -> ObjRef {
        self.obj
    }

    /// Waits on the guarded object's condition queue.
    ///
    /// # Errors
    ///
    /// See [`SyncProtocol::wait`].
    pub fn wait(&self, timeout: Option<Duration>) -> SyncResult<WaitOutcome> {
        self.protocol.wait(self.obj, self.token, timeout)
    }

    /// Notifies one waiter on the guarded object.
    ///
    /// # Errors
    ///
    /// See [`SyncProtocol::notify`].
    pub fn notify(&self) -> SyncResult<()> {
        self.protocol.notify(self.obj, self.token)
    }

    /// Notifies all waiters on the guarded object.
    ///
    /// # Errors
    ///
    /// See [`SyncProtocol::notify_all`].
    pub fn notify_all(&self) -> SyncResult<()> {
        self.protocol.notify_all(self.obj, self.token)
    }
}

impl<'p, P: SyncProtocol + ?Sized> Drop for MonitorGuard<'p, P> {
    fn drop(&mut self) {
        // Destructors never fail (C-DTOR-FAIL): a guard only exists for a
        // lock we own, so the only conceivable error here is a protocol
        // bug; surface it loudly in debug builds, swallow it during unwind.
        let r = self.protocol.unlock(self.obj, self.token);
        debug_assert!(r.is_ok(), "guard unlock failed: {r:?}");
    }
}

/// Blanket convenience layer over [`SyncProtocol`].
pub trait SyncProtocolExt: SyncProtocol {
    /// Acquires `obj` and returns a guard that releases it on drop.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncProtocol::lock`] errors.
    fn enter(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<MonitorGuard<'_, Self>> {
        self.lock(obj, t)?;
        Ok(MonitorGuard {
            protocol: self,
            obj,
            token: t,
        })
    }

    /// Runs `f` with the monitor of `obj` held — the `synchronized` block.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncProtocol::lock`] errors; `f`'s value is returned on
    /// success. The monitor is released even if `f` panics.
    fn synchronized<R>(&self, obj: ObjRef, t: ThreadToken, f: impl FnOnce() -> R) -> SyncResult<R> {
        let _guard = self.enter(obj, t)?;
        Ok(f())
    }

    /// Attempts [`SyncProtocol::try_lock`]; on success returns a guard
    /// that releases on drop, on contention returns `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncProtocol::try_lock`] errors.
    fn try_enter(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<Option<MonitorGuard<'_, Self>>> {
        Ok(self.try_lock(obj, t)?.then(|| MonitorGuard {
            protocol: self,
            obj,
            token: t,
        }))
    }

    /// Acquires with [`SyncProtocol::lock_deadline`] and returns a guard
    /// that releases on drop.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncProtocol::lock_deadline`] errors, including
    /// [`SyncError::Timeout`].
    fn enter_deadline(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Duration,
    ) -> SyncResult<MonitorGuard<'_, Self>> {
        self.lock_deadline(obj, t, timeout)?;
        Ok(MonitorGuard {
            protocol: self,
            obj,
            token: t,
        })
    }
}

impl<P: SyncProtocol + ?Sized> SyncProtocolExt for P {}

/// A trivial protocol for tests of generic machinery: a global mutex table
/// keyed by object index. Not a reproduction artifact — exists so substrate
/// crates can test `SyncProtocol`-generic code without depending on the
/// real protocols (which live upstack).
#[cfg(any(test, feature = "testing"))]
pub mod testing {
    use super::*;
    use std::collections::HashMap;
    use std::sync::{Condvar, Mutex};

    /// Reference monitor implementation used as an oracle in tests.
    #[derive(Debug)]
    pub struct TableMonitor {
        heap: Heap,
        registry: ThreadRegistry,
        state: Mutex<HashMap<usize, (u16, u32)>>, // obj -> (owner, count)
        cv: Condvar,
    }

    impl TableMonitor {
        /// Creates an oracle over a fresh heap of `cap` objects.
        pub fn new(cap: usize) -> Self {
            TableMonitor {
                heap: Heap::with_capacity(cap),
                registry: ThreadRegistry::new(),
                state: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
            }
        }
    }

    impl SyncProtocol for TableMonitor {
        fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
            let mut st = self.state.lock().unwrap();
            loop {
                match st.get_mut(&obj.index()) {
                    None => {
                        st.insert(obj.index(), (t.index().get(), 1));
                        return Ok(());
                    }
                    Some((owner, count)) if *owner == t.index().get() => {
                        *count += 1;
                        return Ok(());
                    }
                    Some(_) => {
                        st = self.cv.wait(st).unwrap();
                    }
                }
            }
        }

        fn try_lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<bool> {
            let mut st = self.state.lock().unwrap();
            match st.get_mut(&obj.index()) {
                None => {
                    st.insert(obj.index(), (t.index().get(), 1));
                    Ok(true)
                }
                Some((owner, count)) if *owner == t.index().get() => {
                    *count += 1;
                    Ok(true)
                }
                Some(_) => Ok(false),
            }
        }

        fn lock_deadline(&self, obj: ObjRef, t: ThreadToken, timeout: Duration) -> SyncResult<()> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.state.lock().unwrap();
            loop {
                match st.get_mut(&obj.index()) {
                    None => {
                        st.insert(obj.index(), (t.index().get(), 1));
                        return Ok(());
                    }
                    Some((owner, count)) if *owner == t.index().get() => {
                        *count += 1;
                        return Ok(());
                    }
                    Some(_) => {
                        let Some(remaining) = deadline
                            .checked_duration_since(std::time::Instant::now())
                            .filter(|d| !d.is_zero())
                        else {
                            return Err(SyncError::Timeout);
                        };
                        st = self.cv.wait_timeout(st, remaining).unwrap().0;
                    }
                }
            }
        }

        fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
            let mut st = self.state.lock().unwrap();
            match st.get_mut(&obj.index()) {
                Some((owner, count)) if *owner == t.index().get() => {
                    *count -= 1;
                    if *count == 0 {
                        st.remove(&obj.index());
                        self.cv.notify_all();
                    }
                    Ok(())
                }
                Some(_) => Err(SyncError::NotOwner),
                None => Err(SyncError::NotLocked),
            }
        }

        fn wait(
            &self,
            _obj: ObjRef,
            _t: ThreadToken,
            _timeout: Option<Duration>,
        ) -> SyncResult<WaitOutcome> {
            unimplemented!("oracle does not model wait")
        }

        fn notify(&self, _obj: ObjRef, _t: ThreadToken) -> SyncResult<()> {
            Ok(())
        }

        fn notify_all(&self, _obj: ObjRef, _t: ThreadToken) -> SyncResult<()> {
            Ok(())
        }

        fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
            self.state
                .lock()
                .unwrap()
                .get(&obj.index())
                .is_some_and(|(owner, _)| *owner == t.index().get())
        }

        fn heap(&self) -> &Heap {
            &self.heap
        }

        fn registry(&self) -> &ThreadRegistry {
            &self.registry
        }

        fn name(&self) -> &'static str {
            "TableOracle"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::TableMonitor;
    use super::*;

    #[test]
    fn guard_releases_on_drop() {
        let p = TableMonitor::new(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        {
            let g = p.enter(obj, t).unwrap();
            assert!(p.holds_lock(obj, t));
            assert_eq!(g.object(), obj);
        }
        assert!(!p.holds_lock(obj, t));
    }

    #[test]
    fn synchronized_returns_value_and_unlocks() {
        let p = TableMonitor::new(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        let v = p.synchronized(obj, t, || 42).unwrap();
        assert_eq!(v, 42);
        assert!(!p.holds_lock(obj, t));
    }

    #[test]
    fn guard_releases_on_panic() {
        let p = TableMonitor::new(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = p.enter(obj, t).unwrap();
            panic!("boom");
        }));
        assert!(result.is_err());
        assert!(!p.holds_lock(obj, t), "lock released during unwind");
    }

    #[test]
    fn reentrancy_in_oracle() {
        let p = TableMonitor::new(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        p.lock(obj, t).unwrap();
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        assert!(!p.holds_lock(obj, t));
        assert_eq!(p.unlock(obj, t), Err(SyncError::NotLocked));
    }

    #[test]
    fn unlock_by_non_owner_is_rejected() {
        let p = TableMonitor::new(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, ra.token()).unwrap();
        assert_eq!(p.unlock(obj, rb.token()), Err(SyncError::NotOwner));
        p.unlock(obj, ra.token()).unwrap();
    }

    #[test]
    fn protocol_is_object_safe() {
        let p = TableMonitor::new(1);
        let dynp: &dyn SyncProtocol = &p;
        assert_eq!(dynp.name(), "TableOracle");
    }

    #[test]
    fn trace_sink_defaults_to_none() {
        let p = TableMonitor::new(1);
        assert!(p.trace_sink().is_none(), "tracing is opt-in");
    }

    #[test]
    fn try_lock_succeeds_uncontended_and_reentrantly() {
        let p = TableMonitor::new(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        assert_eq!(p.try_lock(obj, t), Ok(true));
        assert_eq!(p.try_lock(obj, t), Ok(true), "re-entrant try succeeds");
        p.unlock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        assert!(!p.holds_lock(obj, t));
    }

    #[test]
    fn try_lock_fails_under_contention_without_blocking() {
        let p = TableMonitor::new(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, ra.token()).unwrap();
        assert_eq!(p.try_lock(obj, rb.token()), Ok(false));
        assert!(!p.holds_lock(obj, rb.token()));
        p.unlock(obj, ra.token()).unwrap();
        assert_eq!(p.try_lock(obj, rb.token()), Ok(true));
        p.unlock(obj, rb.token()).unwrap();
    }

    #[test]
    fn lock_deadline_times_out_and_later_succeeds() {
        let p = TableMonitor::new(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, ra.token()).unwrap();
        assert_eq!(
            p.lock_deadline(obj, rb.token(), Duration::from_millis(20)),
            Err(SyncError::Timeout)
        );
        assert!(!p.holds_lock(obj, rb.token()), "timeout leaves lock unheld");
        p.unlock(obj, ra.token()).unwrap();
        p.lock_deadline(obj, rb.token(), Duration::from_millis(20))
            .unwrap();
        assert!(p.holds_lock(obj, rb.token()));
        p.unlock(obj, rb.token()).unwrap();
    }

    #[test]
    fn try_enter_guard_and_contention() {
        let p = TableMonitor::new(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        {
            let g = p.try_enter(obj, ra.token()).unwrap();
            assert!(g.is_some());
            assert!(p.try_enter(obj, rb.token()).unwrap().is_none());
        }
        assert!(!p.holds_lock(obj, ra.token()), "guard released on drop");
    }

    #[test]
    fn enter_deadline_returns_guard() {
        let p = TableMonitor::new(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        {
            let _g = p.enter_deadline(obj, t, Duration::from_millis(5)).unwrap();
            assert!(p.holds_lock(obj, t));
        }
        assert!(!p.holds_lock(obj, t));
    }
}
