//! The fault-injection seam: labeled protocol points where a test
//! harness can force the schedule the happy path never takes.
//!
//! The thin-lock protocol's correctness argument rests on invariants
//! (owner-only writes, one-way inflation, spin-then-inflate) that
//! ordinary tests exercise only under whatever interleavings the OS
//! scheduler happens to produce. [`FaultInjector`] is the seam that lets
//! a deterministic harness (the `thinlock-fault` crate's seeded
//! `FaultPlan`) steer execution through the worst-case orders instead:
//! a CAS that loses exactly when it matters, a thread descheduled in the
//! middle of an unlock store, a parker that wakes spuriously, a monitor
//! table that reports exhaustion on demand.
//!
//! The design mirrors [`TraceSink`](crate::events::TraceSink): protocol
//! structures hold an `Option<Arc<dyn FaultInjector>>`, and when it is
//! `None` the only hot-path cost is one never-taken branch. Production
//! builds never attach an injector; chaos tests always do.
//!
//! # Contract
//!
//! An injection site consults the injector with its [`InjectionPoint`]
//! label and receives a [`FaultAction`]. The site applies the action if
//! it is applicable at that point and proceeds normally otherwise (an
//! injector answering [`FaultAction::Exhaust`] at a spin point is simply
//! ignored). Crucially, every action corresponds to an event that is
//! *legal* at that point in the real system — a CAS can always lose, a
//! thread can always be descheduled, a condition variable can always
//! wake spuriously, a fixed-size table can always fill up — so an
//! injected run is always a run the protocol must survive, and any
//! invariant violation it provokes is a genuine bug.
//!
//! # Example
//!
//! ```
//! use thinlock_runtime::fault::{FaultAction, FaultInjector, InjectionPoint};
//!
//! /// Forces the first `n` fast-path CAS attempts to fail.
//! #[derive(Debug)]
//! struct FailFirstN(std::sync::atomic::AtomicU32);
//!
//! impl FaultInjector for FailFirstN {
//!     fn decide(&self, point: InjectionPoint) -> FaultAction {
//!         use std::sync::atomic::Ordering;
//!         if point == InjectionPoint::LockFastCas
//!             && self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
//!                 n.checked_sub(1)
//!             }).is_ok()
//!         {
//!             FaultAction::FailCas
//!         } else {
//!             FaultAction::Proceed
//!         }
//!     }
//! }
//! ```

use std::fmt;

/// A labeled place in the locking protocol where faults can be injected.
///
/// Each variant names one step of the protocol state machine; the doc
/// comment states which [`FaultAction`]s are applicable there
/// ([`FaultAction::Abort`] is applicable at *every* point — a process
/// can die anywhere). The list is the injection-point catalog of
/// DESIGN.md §11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum InjectionPoint {
    /// The thin fast-path acquiring CAS (scenario 1). Applicable:
    /// `FailCas` (the CAS observes interference and loses), `Yield`.
    LockFastCas,
    /// The slow-path acquiring CAS in the contention loop. Applicable:
    /// `FailCas`, `Yield`.
    LockSlowCas,
    /// One spin round while the lock is thin-held by another thread.
    /// Applicable: `Yield`.
    LockSpin,
    /// Immediately before the thin unlock store. Applicable: `Yield`
    /// (deschedule the owner with the release half-done).
    UnlockStore,
    /// Immediately before an inflated word is published. Applicable:
    /// `Yield`.
    Inflate,
    /// A monitor-table slot allocation. Applicable: `Exhaust` (report
    /// [`MonitorIndexExhausted`](crate::error::SyncError::MonitorIndexExhausted)
    /// without consuming a slot), `Yield`.
    MonitorAllocate,
    /// A heap object allocation. Applicable: `Exhaust` (report
    /// [`HeapFull`](crate::error::SyncError::HeapFull)).
    HeapAlloc,
    /// Entry to the fat-lock acquire loop (before the monitor's internal
    /// mutex is taken). Applicable: `Yield`.
    FatAcquire,
    /// Immediately before parking in the fat-lock entry queue.
    /// Applicable: `SpuriousWake` (the park returns without a permit),
    /// `Yield`.
    FatPark,
    /// Immediately before parking in a `wait` (timed or untimed).
    /// Applicable: `SpuriousWake`, `Yield`.
    WaitPark,
    /// A thread registration is being released (the orphan sweep is
    /// about to run). Applicable: `Yield` (widen the race window between
    /// thread death and index recycling).
    RegistryRelease,
}

impl InjectionPoint {
    /// Every injection point, in catalog order. Chaos suites use this to
    /// assert that a run exercised the full catalog.
    pub const ALL: [InjectionPoint; 11] = [
        InjectionPoint::LockFastCas,
        InjectionPoint::LockSlowCas,
        InjectionPoint::LockSpin,
        InjectionPoint::UnlockStore,
        InjectionPoint::Inflate,
        InjectionPoint::MonitorAllocate,
        InjectionPoint::HeapAlloc,
        InjectionPoint::FatAcquire,
        InjectionPoint::FatPark,
        InjectionPoint::WaitPark,
        InjectionPoint::RegistryRelease,
    ];

    /// Stable short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            InjectionPoint::LockFastCas => "lock-fast-cas",
            InjectionPoint::LockSlowCas => "lock-slow-cas",
            InjectionPoint::LockSpin => "lock-spin",
            InjectionPoint::UnlockStore => "unlock-store",
            InjectionPoint::Inflate => "inflate",
            InjectionPoint::MonitorAllocate => "monitor-allocate",
            InjectionPoint::HeapAlloc => "heap-alloc",
            InjectionPoint::FatAcquire => "fat-acquire",
            InjectionPoint::FatPark => "fat-park",
            InjectionPoint::WaitPark => "wait-park",
            InjectionPoint::RegistryRelease => "registry-release",
        }
    }

    /// The stable index of this point in [`InjectionPoint::ALL`]; used
    /// by per-point counter arrays.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|p| *p == self)
            .expect("every point appears in ALL")
    }

    /// Parses a [`name`](InjectionPoint::name) back into its point —
    /// the inverse used by CLI flags (`chaos-agent --abort-at`,
    /// `supervisor matrix --points`).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for InjectionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an injector tells an injection site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum FaultAction {
    /// No fault: execute the step normally.
    #[default]
    Proceed,
    /// Treat the upcoming CAS as if it lost (without executing it), so
    /// the code takes its retry/fallback path.
    FailCas,
    /// Yield the processor before the step, simulating a deschedule at
    /// the worst moment.
    Yield,
    /// Skip the upcoming park, simulating a spurious wakeup (the parker
    /// returns with no permit and no notification).
    SpuriousWake,
    /// Report resource exhaustion from an allocation step without
    /// consuming the resource.
    Exhaust,
    /// Kill the whole process (`std::process::abort`) at this point —
    /// the crash-chaos supervisor's worker-death probe, modeling a
    /// worker that dies abruptly mid-protocol (OOM-killed, segfaulted,
    /// power-cut) at a labeled step.
    ///
    /// Unlike every other action, `Abort` never *reaches* an injection
    /// site: a conforming injector (the `thinlock-fault` crate's
    /// `FaultPlan`) performs the abort inside its own `decide` the
    /// moment the rule fires, so the crash lands at the exact
    /// consultation point no matter how the site dispatches on the
    /// returned action. The variant exists so plans can be *configured*
    /// to crash at a labeled point; a site that somehow receives it
    /// treats it as [`Proceed`](FaultAction::Proceed). [`decide_at`]
    /// honors the same contract for third-party injectors.
    Abort,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultAction::Proceed => "proceed",
            FaultAction::FailCas => "fail-cas",
            FaultAction::Yield => "yield",
            FaultAction::SpuriousWake => "spurious-wake",
            FaultAction::Exhaust => "exhaust",
            FaultAction::Abort => "abort",
        };
        f.write_str(s)
    }
}

/// A source of fault decisions, consulted at every [`InjectionPoint`] a
/// structure with an attached injector passes through.
///
/// Implementations must be `Send + Sync` (sites call from any thread)
/// and should be cheap: `decide` sits on the same paths as
/// [`TraceSink::record`](crate::events::TraceSink::record). They must
/// also terminate the schedules they steer — e.g. an injector that
/// answers [`FaultAction::SpuriousWake`] unconditionally at
/// [`InjectionPoint::WaitPark`] turns an untimed `wait` into a busy
/// loop that can never park. Seeded probabilistic plans (the
/// `thinlock-fault` crate) satisfy this by construction.
pub trait FaultInjector: Send + Sync {
    /// Decides what happens at `point`. Called once per site visit.
    fn decide(&self, point: InjectionPoint) -> FaultAction;
}

/// Convenience: consult an optional injector, treating `None` as
/// [`FaultAction::Proceed`]. This is the zero-cost-when-disabled gate
/// every injection site goes through.
#[inline]
pub fn decide_at(
    injector: &Option<std::sync::Arc<dyn FaultInjector>>,
    point: InjectionPoint,
) -> FaultAction {
    match injector {
        None => FaultAction::Proceed,
        // Backstop for injectors that return Abort instead of aborting
        // inside `decide` (see the FaultAction::Abort contract): the
        // crash still happens at the labeled point.
        Some(i) => match i.decide(point) {
            FaultAction::Abort => std::process::abort(),
            action => action,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Debug)]
    struct AlwaysYield;
    impl FaultInjector for AlwaysYield {
        fn decide(&self, _point: InjectionPoint) -> FaultAction {
            FaultAction::Yield
        }
    }

    #[test]
    fn all_points_have_unique_names_and_indices() {
        let mut names: Vec<&str> = InjectionPoint::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), InjectionPoint::ALL.len());
        for (i, p) in InjectionPoint::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(p.to_string(), p.name());
        }
    }

    #[test]
    fn decide_at_defaults_to_proceed() {
        let none: Option<Arc<dyn FaultInjector>> = None;
        assert_eq!(
            decide_at(&none, InjectionPoint::LockFastCas),
            FaultAction::Proceed
        );
        let some: Option<Arc<dyn FaultInjector>> = Some(Arc::new(AlwaysYield));
        assert_eq!(
            decide_at(&some, InjectionPoint::LockFastCas),
            FaultAction::Yield
        );
    }

    #[test]
    fn injector_is_object_safe() {
        let i: Arc<dyn FaultInjector> = Arc::new(AlwaysYield);
        assert_eq!(i.decide(InjectionPoint::WaitPark), FaultAction::Yield);
    }

    #[test]
    fn action_default_is_proceed() {
        assert_eq!(FaultAction::default(), FaultAction::Proceed);
        assert_eq!(FaultAction::Proceed.to_string(), "proceed");
        assert_eq!(FaultAction::SpuriousWake.to_string(), "spurious-wake");
        assert_eq!(FaultAction::Abort.to_string(), "abort");
    }

    #[test]
    fn point_names_round_trip() {
        for point in InjectionPoint::ALL {
            assert_eq!(InjectionPoint::from_name(point.name()), Some(point));
        }
        assert_eq!(InjectionPoint::from_name("no-such-point"), None);
    }
}
