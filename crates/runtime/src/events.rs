//! The lock-event recording seam between protocols and observability.
//!
//! The statistics counters in [`stats`](crate::stats) reproduce the
//! paper's *totals* (Table 1, Figure 3) but cannot explain *when* or
//! *why* an individual lock inflated, how long a thread spun, or which
//! object is hottest. [`TraceSink`] is the seam that lets a protocol
//! stream individual, timestamped lock events to an observability
//! backend without this crate depending on one: the `thinlock-obs`
//! crate provides the production implementation (fixed-capacity
//! per-thread event rings), while tests can plug in anything.
//!
//! Recording is strictly optional. Protocols hold an
//! `Option<Arc<dyn TraceSink>>`; when it is `None` the only cost on the
//! hot path is one never-taken branch — the same zero-cost-when-disabled
//! discipline as [`stats::LockStats`](crate::stats::LockStats).
//!
//! # Example
//!
//! A sink that counts inflations by cause:
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use thinlock_runtime::events::{TraceEventKind, TraceSink};
//! use thinlock_runtime::heap::ObjRef;
//! use thinlock_runtime::lockword::ThreadIndex;
//!
//! #[derive(Debug, Default)]
//! struct InflationCounter(AtomicU64);
//!
//! impl TraceSink for InflationCounter {
//!     fn record(
//!         &self,
//!         _thread: Option<ThreadIndex>,
//!         _obj: Option<ObjRef>,
//!         kind: TraceEventKind,
//!     ) {
//!         if matches!(kind, TraceEventKind::Inflated { .. }) {
//!             self.0.fetch_add(1, Ordering::Relaxed);
//!         }
//!     }
//! }
//! ```

use crate::heap::ObjRef;
use crate::lockword::ThreadIndex;
use crate::stats::InflationCause;

/// One lock-protocol event, as emitted from the recording points inside a
/// protocol implementation.
///
/// The variants mirror the scenarios of Section 2 of the paper plus the
/// transitions the scenario counters cannot attribute: every inflation
/// carries its [`InflationCause`], contended acquisitions carry the spin
/// rounds they burned, and static-analysis outcomes (sync elision,
/// pre-inflation hints) appear as first-class events so a profile can
/// credit them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    /// Scenario 1: locked a previously unlocked object on the fast path.
    AcquireUnlocked,
    /// Scenarios 2–3: nested acquisition by the owner at `depth` (1 is
    /// the first lock, so nested events start at 2).
    AcquireNested {
        /// Nesting depth after this acquisition.
        depth: u32,
    },
    /// Acquired an already-inflated lock through the monitor table.
    AcquireFat {
        /// True if another thread owned the monitor when we arrived
        /// (scenario 5: we queued); false for the fat fast path.
        contended: bool,
    },
    /// Scenario 4: found the object thin-locked by another thread, spun
    /// `spin_rounds` backoff rounds, then acquired and inflated.
    AcquireContendedThin {
        /// Backoff rounds spent spinning before the acquiring CAS won.
        spin_rounds: u32,
    },
    /// The lock inflated into a fat monitor.
    Inflated {
        /// Why the inflation happened.
        cause: InflationCause,
    },
    /// Store-based release of a thin lock.
    UnlockThin,
    /// Monitor release of a fat lock.
    UnlockFat,
    /// A `wait` was performed on the object's monitor.
    Wait,
    /// A `notify` or `notifyAll` was performed on the object's monitor.
    Notify,
    /// The monitor table allocated a fat-lock slot; `index` is the
    /// permanent 23-bit monitor index. Emitted by the table itself, so
    /// it also covers allocations that lose the installing race and leak
    /// a slot (see `ThinLocks::pre_inflate`).
    MonitorAllocated {
        /// The allocated monitor index.
        index: u32,
    },
    /// A synchronization operation proven thread-local by the escape
    /// analysis was elided before execution; one event per elided
    /// monitor operation.
    ElisionHit,
    /// A static pre-inflation hint was delivered to the protocol.
    PreInflateHint {
        /// True if the hint changed the object's representation (a
        /// successful `Inflated { cause: Hint }` event follows).
        applied: bool,
    },
    /// A deflating release restored the object's lock word from its fat
    /// shape back to the neutral thin shape, releasing the monitor for
    /// reuse. Only protocols with a deflation step (the CJM backend)
    /// emit this; under the thin protocol inflation is one-way and this
    /// event never occurs.
    Deflated {
        /// The monitor index the object's fat word pointed at before
        /// the deflating store (the slot returned to the pool).
        index: u32,
    },
    /// The registry's exit sweep force-released a lock whose owner
    /// deregistered (died) while still holding it; `thread` is the dead
    /// owner and `obj` the reclaimed object.
    OrphanReclaimed {
        /// True if the orphaned lock was inflated (released through its
        /// fat monitor); false if it was thin (lock field cleared).
        fat: bool,
    },
    /// A timed acquisition found the caller on a waits-for cycle and
    /// surfaced [`SyncError::DeadlockDetected`](crate::error::SyncError::DeadlockDetected);
    /// `obj` is the lock the caller was blocked on.
    DeadlockDetected {
        /// Number of threads on the detected cycle.
        threads: u32,
    },
    /// A `try_lock` or `lock_deadline` gave up without acquiring; `obj`
    /// is the lock that stayed contended.
    AcquireTimedOut,
    /// The interpreter read or wrote an object field; `obj` is the
    /// accessed object and `field` its field index. Emitted by the VM
    /// (not the protocol) through the same sink so the dynamic Eraser
    /// sanitizer can pair accesses with the locks held around them.
    FieldAccess {
        /// Field index within the object.
        field: u16,
        /// True for a write (`PutField`/`PutFieldDyn`).
        write: bool,
    },
    /// The dynamic Eraser sanitizer's verdict: `obj`'s `field` reached
    /// Shared-Modified with an empty candidate lockset — a data race.
    /// Emitted at most once per (object, field).
    RaceDetected {
        /// Field index within the object.
        field: u16,
    },
}

impl TraceEventKind {
    /// Stable short name for reports and JSON export.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::AcquireUnlocked => "acquire-unlocked",
            TraceEventKind::AcquireNested { .. } => "acquire-nested",
            TraceEventKind::AcquireFat { .. } => "acquire-fat",
            TraceEventKind::AcquireContendedThin { .. } => "acquire-contended-thin",
            TraceEventKind::Inflated { .. } => "inflated",
            TraceEventKind::UnlockThin => "unlock-thin",
            TraceEventKind::UnlockFat => "unlock-fat",
            TraceEventKind::Wait => "wait",
            TraceEventKind::Notify => "notify",
            TraceEventKind::MonitorAllocated { .. } => "monitor-allocated",
            TraceEventKind::ElisionHit => "elision-hit",
            TraceEventKind::PreInflateHint { .. } => "pre-inflate-hint",
            TraceEventKind::Deflated { .. } => "deflated",
            TraceEventKind::OrphanReclaimed { .. } => "orphan-reclaimed",
            TraceEventKind::DeadlockDetected { .. } => "deadlock-detected",
            TraceEventKind::AcquireTimedOut => "acquire-timed-out",
            TraceEventKind::FieldAccess { write: false, .. } => "field-read",
            TraceEventKind::FieldAccess { write: true, .. } => "field-write",
            TraceEventKind::RaceDetected { .. } => "race-detected",
        }
    }
}

/// A consumer of lock events.
///
/// Implementations must be cheap and non-blocking: `record` is called
/// from lock/unlock fast paths and from inside inflation, so it must not
/// allocate, take locks, or otherwise stall the caller. The
/// `thinlock-obs` crate's `LockTracer` (fixed-capacity per-thread rings,
/// relaxed stores, wraparound with drop counters) is the reference
/// implementation.
///
/// `thread` is `None` for events that no specific thread performed
/// (e.g. [`TraceEventKind::MonitorAllocated`] from the monitor table);
/// `obj` is `None` when the event is not attributable to one object.
pub trait TraceSink: Send + Sync {
    /// Records one event. Must not block or allocate.
    fn record(&self, thread: Option<ThreadIndex>, obj: Option<ObjRef>, kind: TraceEventKind);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Debug, Default)]
    struct CountingSink {
        events: AtomicU64,
        inflations: AtomicU64,
    }

    impl TraceSink for CountingSink {
        fn record(&self, _t: Option<ThreadIndex>, _o: Option<ObjRef>, kind: TraceEventKind) {
            self.events.fetch_add(1, Ordering::Relaxed);
            if matches!(kind, TraceEventKind::Inflated { .. }) {
                self.inflations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn sink_is_object_safe_and_callable() {
        let sink = CountingSink::default();
        let dynsink: &dyn TraceSink = &sink;
        dynsink.record(None, None, TraceEventKind::AcquireUnlocked);
        dynsink.record(
            None,
            None,
            TraceEventKind::Inflated {
                cause: InflationCause::Contention,
            },
        );
        assert_eq!(sink.events.load(Ordering::Relaxed), 2);
        assert_eq!(sink.inflations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TraceEventKind::AcquireUnlocked.name(), "acquire-unlocked");
        assert_eq!(
            TraceEventKind::Inflated {
                cause: InflationCause::Hint
            }
            .name(),
            "inflated"
        );
        assert_eq!(
            TraceEventKind::PreInflateHint { applied: true }.name(),
            "pre-inflate-hint"
        );
        assert_eq!(
            TraceEventKind::FieldAccess {
                field: 3,
                write: false
            }
            .name(),
            "field-read"
        );
        assert_eq!(
            TraceEventKind::FieldAccess {
                field: 3,
                write: true
            }
            .name(),
            "field-write"
        );
        assert_eq!(
            TraceEventKind::RaceDetected { field: 0 }.name(),
            "race-detected"
        );
    }
}
