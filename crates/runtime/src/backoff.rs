//! Spin-wait backoff for the contention path.
//!
//! Section 2.3.4: a thread that finds an object thin-locked by another
//! thread spins until the owner releases, then acquires and inflates. The
//! paper notes that "standard back-off techniques [Anderson 90] for
//! reducing the cost of spin-locking can be applied"; this module is that
//! technique: bounded exponential busy-wait that degrades to
//! `yield_now`, which is also what makes the spin loop livelock-free on a
//! uniprocessor (such as the single-CPU container this reproduction runs
//! in — the owner can only make progress if the spinner yields).

use std::fmt;

/// How the contention path waits for the owner to release (Section 2.3.4
/// leaves this open: "standard back-off techniques… can be applied").
/// Exposed as a knob so the ablation benches can measure the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpinPolicy {
    /// Exponential busy-wait escalating to scheduler yields — the default,
    /// and the only livelock-free choice on a uniprocessor.
    #[default]
    SpinThenYield,
    /// Yield to the scheduler on every round (no busy-wait at all);
    /// cheapest when the owner almost always needs a full quantum.
    YieldOnly,
    /// Keep busy-waiting with a capped pulse count, yielding only every
    /// 64th round as a safety valve. Models aggressive SMP spinning; on a
    /// uniprocessor this is the paper's "pathological case".
    SpinHard,
}

/// Exponential spin/yield backoff.
///
/// # Example
///
/// ```
/// use thinlock_runtime::backoff::Backoff;
///
/// let mut b = Backoff::new();
/// for _ in 0..4 {
///     b.snooze(); // cheap busy-wait first, then yields to the scheduler
/// }
/// assert!(b.rounds() == 4);
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: u32,
    rounds: u64,
    policy: SpinPolicy,
}

/// Past this step, each snooze yields the processor instead of busy
/// spinning. Kept small: on the paper's locality-of-contention assumption
/// the spin is rare and short, and on a uniprocessor only a yield lets the
/// lock owner run at all.
const SPIN_LIMIT: u32 = 5;

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Creates a fresh backoff at the cheapest step with the default
    /// policy.
    pub fn new() -> Self {
        Self::with_policy(SpinPolicy::SpinThenYield)
    }

    /// Creates a backoff with an explicit policy (ablation benches).
    pub fn with_policy(policy: SpinPolicy) -> Self {
        Backoff {
            step: 0,
            rounds: 0,
            policy,
        }
    }

    /// Waits one backoff round according to the policy.
    pub fn snooze(&mut self) {
        self.rounds += 1;
        match self.policy {
            SpinPolicy::SpinThenYield => {
                if self.step <= SPIN_LIMIT {
                    for _ in 0..(1u32 << self.step) {
                        std::hint::spin_loop();
                    }
                    self.step += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            SpinPolicy::YieldOnly => std::thread::yield_now(),
            SpinPolicy::SpinHard => {
                if self.rounds.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    for _ in 0..(1u32 << SPIN_LIMIT.min(self.step)) {
                        std::hint::spin_loop();
                    }
                    self.step = (self.step + 1).min(SPIN_LIMIT);
                }
            }
        }
    }

    /// The policy this backoff runs under.
    pub fn policy(&self) -> SpinPolicy {
        self.policy
    }

    /// True once the backoff has escalated to yielding (always true under
    /// [`SpinPolicy::YieldOnly`]).
    pub fn is_yielding(&self) -> bool {
        matches!(self.policy, SpinPolicy::YieldOnly) || self.step > SPIN_LIMIT
    }

    /// Total snoozes since creation or [`reset`](Self::reset); protocols use
    /// this as the spin count reported to statistics.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Returns to the cheapest step (after successfully acquiring).
    pub fn reset(&mut self) {
        self.step = 0;
        self.rounds = 0;
    }
}

impl fmt::Display for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "backoff(step={}, rounds={})", self.step, self.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_to_yielding() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..=SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_yielding());
        assert_eq!(b.rounds(), u64::from(SPIN_LIMIT) + 1);
    }

    #[test]
    fn reset_returns_to_spinning() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        b.reset();
        assert!(!b.is_yielding());
        assert_eq!(b.rounds(), 0);
    }

    #[test]
    fn display_mentions_state() {
        let b = Backoff::new();
        assert_eq!(b.to_string(), "backoff(step=0, rounds=0)");
    }

    #[test]
    fn yield_only_policy_is_always_yielding() {
        let mut b = Backoff::with_policy(SpinPolicy::YieldOnly);
        assert!(b.is_yielding());
        for _ in 0..3 {
            b.snooze();
        }
        assert_eq!(b.rounds(), 3);
        assert_eq!(b.policy(), SpinPolicy::YieldOnly);
    }

    #[test]
    fn spin_hard_policy_never_escalates_past_limit() {
        let mut b = Backoff::with_policy(SpinPolicy::SpinHard);
        for _ in 0..200 {
            b.snooze();
        }
        // SpinHard caps at the spin limit instead of switching to yields.
        assert!(!b.is_yielding());
        assert_eq!(b.rounds(), 200);
    }

    #[test]
    fn default_policy_is_spin_then_yield() {
        assert_eq!(SpinPolicy::default(), SpinPolicy::SpinThenYield);
        assert_eq!(Backoff::new().policy(), SpinPolicy::SpinThenYield);
    }
}
