//! Spin-wait backoff for the contention path.
//!
//! Section 2.3.4: a thread that finds an object thin-locked by another
//! thread spins until the owner releases, then acquires and inflates. The
//! paper notes that "standard back-off techniques [Anderson 90] for
//! reducing the cost of spin-locking can be applied"; this module is that
//! technique: bounded exponential busy-wait that degrades to
//! `yield_now`, which is also what makes the spin loop livelock-free on a
//! uniprocessor (such as the single-CPU container this reproduction runs
//! in — the owner can only make progress if the spinner yields).

use std::fmt;
use std::time::Duration;

use crate::prng::SplitMix64;

/// How the contention path waits for the owner to release (Section 2.3.4
/// leaves this open: "standard back-off techniques… can be applied").
/// Exposed as a knob so the ablation benches can measure the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpinPolicy {
    /// Exponential busy-wait escalating to scheduler yields — the default,
    /// and the only livelock-free choice on a uniprocessor.
    #[default]
    SpinThenYield,
    /// Yield to the scheduler on every round (no busy-wait at all);
    /// cheapest when the owner almost always needs a full quantum.
    YieldOnly,
    /// Keep busy-waiting with a capped pulse count, yielding only every
    /// 64th round as a safety valve. Models aggressive SMP spinning; on a
    /// uniprocessor this is the paper's "pathological case".
    SpinHard,
}

/// Exponential spin/yield backoff.
///
/// # Example
///
/// ```
/// use thinlock_runtime::backoff::Backoff;
///
/// let mut b = Backoff::new();
/// for _ in 0..4 {
///     b.snooze(); // cheap busy-wait first, then yields to the scheduler
/// }
/// assert!(b.rounds() == 4);
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: u32,
    rounds: u64,
    policy: SpinPolicy,
    jitter: Option<SplitMix64>,
}

/// Past this step, each snooze yields the processor instead of busy
/// spinning. Kept small: on the paper's locality-of-contention assumption
/// the spin is rare and short, and on a uniprocessor only a yield lets the
/// lock owner run at all.
const SPIN_LIMIT: u32 = 5;

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Creates a fresh backoff at the cheapest step with the default
    /// policy.
    pub fn new() -> Self {
        Self::with_policy(SpinPolicy::SpinThenYield)
    }

    /// Creates a backoff with an explicit policy (ablation benches).
    pub fn with_policy(policy: SpinPolicy) -> Self {
        Backoff {
            step: 0,
            rounds: 0,
            policy,
            jitter: None,
        }
    }

    /// Creates a backoff whose busy-wait pulse counts are *jittered* by a
    /// PRNG seeded from `seed`: each round spins its exponential base plus
    /// a uniform draw below it. Jitter decorrelates spinners that entered
    /// the contention loop in lockstep (Anderson's randomized backoff);
    /// the draw sequence is a pure function of the seed, so a seeded
    /// harness replays the identical waits. The protocol crates seed this
    /// with the spinning thread's index, which keeps replays deterministic
    /// per thread while giving every thread a distinct pulse sequence.
    pub fn jittered(policy: SpinPolicy, seed: u64) -> Self {
        Backoff {
            step: 0,
            rounds: 0,
            policy,
            jitter: Some(SplitMix64::new(seed)),
        }
    }

    /// One busy-wait burst of `1 << step` pulses, stretched by up to the
    /// same amount again when jitter is enabled.
    #[inline]
    fn pulse(&mut self, step: u32) {
        let base = 1u32 << step;
        let extra = match &mut self.jitter {
            Some(rng) => (rng.next_u64() % u64::from(base)) as u32,
            None => 0,
        };
        for _ in 0..(base + extra) {
            std::hint::spin_loop();
        }
    }

    /// Waits one backoff round according to the policy.
    pub fn snooze(&mut self) {
        self.rounds += 1;
        match self.policy {
            SpinPolicy::SpinThenYield => {
                if self.step <= SPIN_LIMIT {
                    self.pulse(self.step);
                    self.step += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            SpinPolicy::YieldOnly => std::thread::yield_now(),
            SpinPolicy::SpinHard => {
                if self.rounds.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    self.pulse(SPIN_LIMIT.min(self.step));
                    self.step = (self.step + 1).min(SPIN_LIMIT);
                }
            }
        }
    }

    /// The policy this backoff runs under.
    pub fn policy(&self) -> SpinPolicy {
        self.policy
    }

    /// True once the backoff has escalated to yielding (always true under
    /// [`SpinPolicy::YieldOnly`]).
    pub fn is_yielding(&self) -> bool {
        matches!(self.policy, SpinPolicy::YieldOnly) || self.step > SPIN_LIMIT
    }

    /// Total snoozes since creation or [`reset`](Self::reset); protocols use
    /// this as the spin count reported to statistics.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Returns to the cheapest step (after successfully acquiring).
    pub fn reset(&mut self) {
        self.step = 0;
        self.rounds = 0;
    }
}

impl fmt::Display for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "backoff(step={}, rounds={})", self.step, self.rounds)
    }
}

/// Seeded, jittered exponential backoff over wall-clock durations — the
/// retry policy shared by everything in the workspace that re-attempts a
/// *failed* operation rather than spinning on a busy one: the crash-chaos
/// supervisor re-launching a dead agent process, and any future
/// remote/IO retry loop.
///
/// Delay for attempt `n` is drawn uniformly from `[cap_n/2, cap_n]` where
/// `cap_n = min(base << n, cap)` — "equal jitter", which keeps the
/// exponential envelope (so retry storms die out) while desynchronizing
/// fleets that failed together. Every draw derives from the seed, so a
/// supervisor replaying a run schedules byte-identical retry timelines.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use thinlock_runtime::backoff::RetryBackoff;
///
/// let base = Duration::from_millis(10);
/// let cap = Duration::from_millis(80);
/// let mut a = RetryBackoff::new(7, base, cap);
/// let mut b = RetryBackoff::new(7, base, cap);
/// let d = a.next_delay();
/// assert_eq!(d, b.next_delay(), "same seed, same schedule");
/// assert!(d >= base / 2 && d <= base);
/// assert_eq!(a.attempts(), 1);
/// ```
#[derive(Debug)]
pub struct RetryBackoff {
    rng: SplitMix64,
    base: Duration,
    cap: Duration,
    attempts: u32,
}

impl RetryBackoff {
    /// Creates a retry policy drawing from `seed`, starting at `base`
    /// (clamped to at least 1µs so the envelope actually grows) and never
    /// exceeding `cap` per delay.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Self {
        RetryBackoff {
            rng: SplitMix64::new(seed),
            base: base.max(Duration::from_micros(1)),
            cap: cap.max(base),
            attempts: 0,
        }
    }

    /// The delay to sleep before the next retry; each call advances the
    /// exponential envelope by one attempt.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempts.min(31);
        self.attempts += 1;
        let envelope = self
            .base
            .saturating_mul(1u32 << shift)
            .min(self.cap)
            .max(self.base);
        let env_nanos = envelope.as_nanos().min(u128::from(u64::MAX)) as u64;
        let half = env_nanos / 2;
        let jitter = self.rng.next_u64() % (env_nanos - half + 1);
        Duration::from_nanos(half + jitter)
    }

    /// Delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

impl fmt::Display for RetryBackoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retry-backoff(attempts={}, base={:?}, cap={:?})",
            self.attempts, self.base, self.cap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_to_yielding() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..=SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_yielding());
        assert_eq!(b.rounds(), u64::from(SPIN_LIMIT) + 1);
    }

    #[test]
    fn reset_returns_to_spinning() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        b.reset();
        assert!(!b.is_yielding());
        assert_eq!(b.rounds(), 0);
    }

    #[test]
    fn display_mentions_state() {
        let b = Backoff::new();
        assert_eq!(b.to_string(), "backoff(step=0, rounds=0)");
    }

    #[test]
    fn yield_only_policy_is_always_yielding() {
        let mut b = Backoff::with_policy(SpinPolicy::YieldOnly);
        assert!(b.is_yielding());
        for _ in 0..3 {
            b.snooze();
        }
        assert_eq!(b.rounds(), 3);
        assert_eq!(b.policy(), SpinPolicy::YieldOnly);
    }

    #[test]
    fn spin_hard_policy_never_escalates_past_limit() {
        let mut b = Backoff::with_policy(SpinPolicy::SpinHard);
        for _ in 0..200 {
            b.snooze();
        }
        // SpinHard caps at the spin limit instead of switching to yields.
        assert!(!b.is_yielding());
        assert_eq!(b.rounds(), 200);
    }

    #[test]
    fn default_policy_is_spin_then_yield() {
        assert_eq!(SpinPolicy::default(), SpinPolicy::SpinThenYield);
        assert_eq!(Backoff::new().policy(), SpinPolicy::SpinThenYield);
    }

    #[test]
    fn jittered_backoff_escalates_like_unjittered() {
        let mut b = Backoff::jittered(SpinPolicy::SpinThenYield, 99);
        assert!(!b.is_yielding());
        for _ in 0..=SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_yielding());
        assert_eq!(b.rounds(), u64::from(SPIN_LIMIT) + 1);
    }

    #[test]
    fn retry_delays_are_seeded_and_bounded() {
        let base = Duration::from_millis(2);
        let cap = Duration::from_millis(40);
        let mut a = RetryBackoff::new(1234, base, cap);
        let mut b = RetryBackoff::new(1234, base, cap);
        let mut envelope = base;
        for attempt in 0..12 {
            let da = a.next_delay();
            let db = b.next_delay();
            assert_eq!(da, db, "attempt {attempt}: same seed, same delay");
            assert!(da >= envelope / 2, "attempt {attempt}: below half envelope");
            assert!(da <= cap, "attempt {attempt}: above the cap");
            envelope = (envelope * 2).min(cap);
        }
        assert_eq!(a.attempts(), 12);
    }

    #[test]
    fn retry_seeds_decorrelate() {
        let base = Duration::from_millis(4);
        let cap = Duration::from_secs(1);
        let mut a = RetryBackoff::new(1, base, cap);
        let mut b = RetryBackoff::new(2, base, cap);
        let distinct = (0..8).any(|_| a.next_delay() != b.next_delay());
        assert!(distinct, "different seeds should produce different jitter");
    }

    #[test]
    fn retry_display_mentions_attempts() {
        let mut r = RetryBackoff::new(0, Duration::from_millis(1), Duration::from_millis(8));
        let _ = r.next_delay();
        assert!(r.to_string().contains("attempts=1"));
    }
}
