//! Architecture profiles and the atomic lock-word cell.
//!
//! Section 3.5 of the paper ("Tradeoffs" / "Architectural Variations")
//! describes three hardware targets that one binary had to serve:
//!
//! * **PowerPC uniprocessor** — user-level `lwarx`/`stwcx.` compare-and-swap,
//!   no `isync`/`sync` memory barriers needed;
//! * **PowerPC multiprocessor** — the same CAS, but locking must be followed
//!   by `isync` and unlocking preceded by `sync` so other processors observe
//!   a consistent state;
//! * **POWER / POWER2** — no user-level atomics at all; compare-and-swap is
//!   a *kernel* routine reached through a system call.
//!
//! The paper's final implementation tests the CPU type dynamically on every
//! lock/unlock (cheap thanks to surplus superscalar parallelism). We model
//! the same space with [`ArchProfile`]:
//!
//! * fences map onto Rust atomic orderings (`Acquire` on lock ≈ `isync`,
//!   `Release` on unlock ≈ `sync`, `Relaxed` ≈ no barrier), and
//! * the kernel-CAS trap cost is simulated by a short calibrated busy loop
//!   ([`simulate_kernel_trap`]).
//!
//! # Soundness
//!
//! `Relaxed` operations are still *atomic* — there is never a data race on
//! the lock word itself. What the uniprocessor profile gives up is the
//! happens-before edge for **other** memory protected by the lock. It
//! exists to let the Figure 6 benchmarks measure fence cost, and those
//! benchmarks only guard data that is itself atomic. Correct general-purpose
//! use goes through [`ArchProfile::default`], which is the multiprocessor
//! profile.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::lockword::LockWord;

/// Hardware model under which the lock fast paths execute.
///
/// # Example
///
/// ```
/// use thinlock_runtime::arch::ArchProfile;
/// // The safe default is the multiprocessor profile.
/// assert_eq!(ArchProfile::default(), ArchProfile::PowerPcMp);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArchProfile {
    /// PowerPC 604 uniprocessor: user-level CAS, no barriers.
    PowerPcUp,
    /// PowerPC multiprocessor: user-level CAS plus `isync`/`sync` barriers.
    #[default]
    PowerPcMp,
    /// Older POWER/POWER2 uniprocessor: CAS through a (simulated) kernel
    /// trap, no barriers.
    PowerKernelCas,
}

impl ArchProfile {
    /// All profiles, in the order Figure 6 discusses them.
    pub const ALL: [ArchProfile; 3] = [
        ArchProfile::PowerPcUp,
        ArchProfile::PowerPcMp,
        ArchProfile::PowerKernelCas,
    ];

    /// True if CAS must go through the simulated kernel trap.
    #[inline]
    pub fn uses_kernel_cas(self) -> bool {
        matches!(self, ArchProfile::PowerKernelCas)
    }

    /// True if lock/unlock must publish with acquire/release barriers.
    #[inline]
    pub fn needs_fences(self) -> bool {
        matches!(self, ArchProfile::PowerPcMp)
    }

    /// Ordering used on a successful lock acquisition (`isync` analogue).
    #[inline]
    pub fn acquire_ordering(self) -> Ordering {
        if self.needs_fences() {
            Ordering::Acquire
        } else {
            Ordering::Relaxed
        }
    }

    /// Ordering used when releasing a lock (`sync` analogue).
    #[inline]
    pub fn release_ordering(self) -> Ordering {
        if self.needs_fences() {
            Ordering::Release
        } else {
            Ordering::Relaxed
        }
    }
}

impl fmt::Display for ArchProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ArchProfile::PowerPcUp => "powerpc-up",
            ArchProfile::PowerPcMp => "powerpc-mp",
            ArchProfile::PowerKernelCas => "power-kernel-cas",
        };
        f.write_str(name)
    }
}

/// Number of arithmetic steps used to simulate the kernel trap of the
/// POWER compare-and-swap system call.
///
/// Chosen so the simulated trap costs roughly an order of magnitude more
/// than the ~17-instruction user-level fast path, matching the paper's
/// qualitative description of the syscall being the dominant cost on
/// POWER. Benchmarks sweep relative numbers, so only the ratio matters.
pub const KERNEL_TRAP_SPINS: u32 = 192;

/// Burns the simulated cost of the POWER kernel compare-and-swap trap.
///
/// The loop is opaque to the optimizer so it cannot be folded away.
///
/// # Example
///
/// ```
/// thinlock_runtime::arch::simulate_kernel_trap();
/// ```
#[inline(never)]
pub fn simulate_kernel_trap() {
    let mut acc: u32 = 0x9E37_79B9;
    for i in 0..KERNEL_TRAP_SPINS {
        acc = std::hint::black_box(acc.rotate_left(5) ^ i);
    }
    std::hint::black_box(acc);
}

/// The atomic header word holding an object's [`LockWord`].
///
/// This is the only memory the locking protocols ever touch with atomic
/// instructions; everything else follows the paper's owner-only store
/// discipline. All operations take the [`ArchProfile`] so the Figure 6
/// variants can be expressed without duplicating protocol code.
///
/// # Example
///
/// ```
/// use thinlock_runtime::arch::{ArchProfile, LockWordCell};
/// use thinlock_runtime::lockword::{LockWord, ThreadIndex};
///
/// let cell = LockWordCell::new(LockWord::new_unlocked(0));
/// let me = ThreadIndex::new(1)?;
/// let old = cell.load_relaxed().with_lock_field_clear();
/// let new = old.locked_once_by(me);
/// assert!(cell.try_cas(old, new, ArchProfile::default()).is_ok());
/// assert_eq!(cell.load_relaxed().thin_owner(), Some(me));
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
#[derive(Debug)]
pub struct LockWordCell(AtomicU32);

impl LockWordCell {
    /// Creates a cell holding `word`.
    #[inline]
    pub fn new(word: LockWord) -> Self {
        LockWordCell(AtomicU32::new(word.bits()))
    }

    /// Plain load, no ordering. The thin-lock fast paths always start here:
    /// per Section 2.3.2 a stale value is harmless because ownership is a
    /// stable property.
    #[inline]
    pub fn load_relaxed(&self) -> LockWord {
        LockWord::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Acquire load, used when following an inflated word to the monitor
    /// table so the monitor's initialization is visible.
    #[inline]
    pub fn load_acquire(&self) -> LockWord {
        LockWord::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Owner-only plain store (nested lock/unlock bookkeeping). Maps to a
    /// simple store instruction in the paper.
    #[inline]
    pub fn store_relaxed(&self, word: LockWord) {
        self.0.store(word.bits(), Ordering::Relaxed);
    }

    /// Owner-only releasing store: the unlock store, preceded by `sync` on
    /// the multiprocessor profile.
    #[inline]
    pub fn store_unlock(&self, word: LockWord, profile: ArchProfile) {
        self.0.store(word.bits(), profile.release_ordering());
    }

    /// Releasing store regardless of profile; used when publishing an
    /// inflated word so the monitor contents are visible to all readers.
    #[inline]
    pub fn store_release(&self, word: LockWord) {
        self.0.store(word.bits(), Ordering::Release);
    }

    /// Compare-and-swap of the full header word.
    ///
    /// On [`ArchProfile::PowerKernelCas`] this first pays the simulated
    /// trap cost. Success uses the profile's acquire ordering (the `isync`
    /// after a successful lock).
    ///
    /// # Errors
    ///
    /// Returns the actual current word if it differed from `old`.
    #[inline]
    pub fn try_cas(
        &self,
        old: LockWord,
        new: LockWord,
        profile: ArchProfile,
    ) -> Result<(), LockWord> {
        if profile.uses_kernel_cas() {
            simulate_kernel_trap();
        }
        match self.0.compare_exchange(
            old.bits(),
            new.bits(),
            ordering_at_least_relaxed(profile.acquire_ordering()),
            Ordering::Relaxed,
        ) {
            Ok(_) => Ok(()),
            Err(actual) => Err(LockWord::from_bits(actual)),
        }
    }

    /// Compare-and-swap with release semantics on success — the Figure 6
    /// "UnlkC&S" variant that releases the lock with an atomic operation
    /// instead of a store, demonstrating the cost of the extra atomic.
    ///
    /// # Errors
    ///
    /// Returns the actual current word if it differed from `old`.
    #[inline]
    pub fn try_cas_release(
        &self,
        old: LockWord,
        new: LockWord,
        profile: ArchProfile,
    ) -> Result<(), LockWord> {
        if profile.uses_kernel_cas() {
            simulate_kernel_trap();
        }
        let success = match profile.release_ordering() {
            Ordering::Release => Ordering::Release,
            _ => Ordering::Relaxed,
        };
        match self
            .0
            .compare_exchange(old.bits(), new.bits(), success, Ordering::Relaxed)
        {
            Ok(_) => Ok(()),
            Err(actual) => Err(LockWord::from_bits(actual)),
        }
    }
}

/// `compare_exchange` forbids `Release`-only success with stronger failure;
/// clamp the acquire side to something valid.
#[inline]
fn ordering_at_least_relaxed(o: Ordering) -> Ordering {
    match o {
        Ordering::Acquire => Ordering::Acquire,
        _ => Ordering::Relaxed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockword::ThreadIndex;

    #[test]
    fn default_profile_is_multiprocessor() {
        assert_eq!(ArchProfile::default(), ArchProfile::PowerPcMp);
        assert!(ArchProfile::default().needs_fences());
    }

    #[test]
    fn profile_predicates() {
        assert!(!ArchProfile::PowerPcUp.needs_fences());
        assert!(!ArchProfile::PowerPcUp.uses_kernel_cas());
        assert!(ArchProfile::PowerPcMp.needs_fences());
        assert!(!ArchProfile::PowerPcMp.uses_kernel_cas());
        assert!(!ArchProfile::PowerKernelCas.needs_fences());
        assert!(ArchProfile::PowerKernelCas.uses_kernel_cas());
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(ArchProfile::PowerPcUp.to_string(), "powerpc-up");
        assert_eq!(ArchProfile::PowerPcMp.to_string(), "powerpc-mp");
        assert_eq!(ArchProfile::PowerKernelCas.to_string(), "power-kernel-cas");
    }

    #[test]
    fn cas_succeeds_only_from_expected_word() {
        for profile in ArchProfile::ALL {
            let cell = LockWordCell::new(LockWord::new_unlocked(7));
            let me = ThreadIndex::new(3).unwrap();
            let old = LockWord::new_unlocked(7);
            let new = old.locked_once_by(me);
            assert!(cell.try_cas(old, new, profile).is_ok());
            // Second CAS from the stale old value must fail and report the
            // actual current word.
            let err = cell.try_cas(old, new, profile).unwrap_err();
            assert_eq!(err, new);
            assert_eq!(cell.load_relaxed(), new);
        }
    }

    #[test]
    fn cas_release_variant_behaves_like_cas() {
        let cell = LockWordCell::new(LockWord::new_unlocked(0));
        let me = ThreadIndex::new(3).unwrap();
        let locked = LockWord::new_unlocked(0).locked_once_by(me);
        cell.store_relaxed(locked);
        assert!(cell
            .try_cas_release(locked, LockWord::new_unlocked(0), ArchProfile::PowerPcMp)
            .is_ok());
        assert!(cell.load_relaxed().is_unlocked());
        // Failure path reports current value.
        let err = cell
            .try_cas_release(locked, LockWord::new_unlocked(0), ArchProfile::PowerPcUp)
            .unwrap_err();
        assert!(err.is_unlocked());
    }

    #[test]
    fn stores_round_trip() {
        let cell = LockWordCell::new(LockWord::new_unlocked(1));
        let me = ThreadIndex::new(9).unwrap();
        let w = LockWord::new_unlocked(1).locked_once_by(me);
        cell.store_relaxed(w);
        assert_eq!(cell.load_relaxed(), w);
        cell.store_unlock(w.with_lock_field_clear(), ArchProfile::PowerPcMp);
        assert!(cell.load_acquire().is_unlocked());
        cell.store_release(w);
        assert_eq!(cell.load_acquire(), w);
    }

    #[test]
    fn kernel_trap_simulation_runs() {
        // Just exercise it; the cost assertion lives in the benchmarks.
        simulate_kernel_trap();
    }
}
