//! The 24-bit lock field of the paper, embedded in a 32-bit header word.
//!
//! Figure 1 of the paper reserves 24 bits of one header word for the lock;
//! the remaining 8 bits are "either constant or subject to change only when
//! an object is moved", so the locking protocol may treat them as constant.
//! We place those 8 bits in the **low** byte of the word (the paper's
//! diagrams put the lock field in the high-order bits, which is what makes
//! the pre-shifted thread index and the single-compare nested-lock test
//! work on PowerPC immediates):
//!
//! ```text
//!  31          30..16            15..8       7..0
//! +-------+------------------+-----------+----------+
//! | shape | thread index(15) | count (8) | hdr bits |   shape = 0: thin
//! +-------+------------------+-----------+----------+
//! | shape |      monitor index (23)      | hdr bits |   shape = 1: fat
//! +-------+------------------+-----------+----------+
//! ```
//!
//! * A **thin** lock (`shape == 0`) holds a 15-bit thread index and an
//!   8-bit nested-lock count. Thread index 0 means *unlocked* (and then the
//!   count must also be 0). The count stores *locks − 1*: an object locked
//!   once by thread `A` has count 0.
//! * A **fat** (inflated) lock (`shape == 1`) holds a 23-bit index into the
//!   monitor table.
//!
//! The module exposes both the paper's branch-minimal predicates (the XOR
//! trick of Section 2.3.3) and a structured [`LockState`] decoding; a
//! property test in this module proves they agree on every word.

use std::fmt;

use crate::error::SyncError;

/// Mask of the 8 low "other header data" bits that share the word with the
/// lock field. Locking must never change these bits.
pub const HEADER_BITS_MASK: u32 = 0x0000_00FF;

/// Mask of the full 24-bit lock field.
pub const LOCK_FIELD_MASK: u32 = !HEADER_BITS_MASK;

/// The monitor shape bit: 0 = thin, 1 = fat (inflated).
pub const SHAPE_BIT: u32 = 1 << 31;

/// Bit offset of the nested-lock count within the word.
pub const COUNT_SHIFT: u32 = 8;

/// Mask of the 8-bit nested-lock count.
pub const COUNT_MASK: u32 = 0xFF << COUNT_SHIFT;

/// Bit offset of the 15-bit thread index within the word.
///
/// Thread indices are stored *pre-shifted* by this amount in each thread's
/// execution environment (Section 2.3.1) so the lock fast path needs no
/// extra ALU operation.
pub const TID_SHIFT: u32 = 16;

/// Mask of the 15-bit thread index.
pub const TID_MASK: u32 = 0x7FFF << TID_SHIFT;

/// Bit offset of the 23-bit monitor index within the word.
pub const MONITOR_SHIFT: u32 = 8;

/// Mask of the 23-bit monitor index.
pub const MONITOR_MASK: u32 = 0x7F_FFFF << MONITOR_SHIFT;

/// Maximum value of the stored count field (locks − 1), i.e. 255.
///
/// The paper inflates on the lock that would exceed this: "we define
/// excessive as 257" — the 256 thin-representable acquisitions plus the one
/// that overflows.
pub const MAX_THIN_COUNT: u32 = 0xFF;

/// The paper's nested-lock-test limit: `255 << 8`, which "happens to fit
/// into a 16-bit unsigned immediate field on most RISC architectures".
pub const NESTED_LIMIT: u32 = 0xFF << COUNT_SHIFT;

/// A 15-bit thread index (1..=32767). Index 0 is reserved to mean
/// *unlocked* and cannot be constructed.
///
/// # Example
///
/// ```
/// use thinlock_runtime::lockword::ThreadIndex;
/// let t = ThreadIndex::new(5)?;
/// assert_eq!(t.get(), 5);
/// assert_eq!(t.shifted(), 5 << 16);
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadIndex(u16);

impl ThreadIndex {
    /// Largest representable thread index.
    pub const MAX: u16 = 0x7FFF;

    /// Creates a thread index.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::ThreadIndexExhausted`] if `raw` is 0 or exceeds
    /// the 15-bit space.
    pub fn new(raw: u16) -> Result<Self, SyncError> {
        if raw == 0 || raw > Self::MAX {
            Err(SyncError::ThreadIndexExhausted)
        } else {
            Ok(ThreadIndex(raw))
        }
    }

    /// The raw index value (never 0).
    #[inline]
    pub fn get(self) -> u16 {
        self.0
    }

    /// The index pre-shifted into thread-index position of a lock word.
    ///
    /// This is the value each thread caches in its execution environment so
    /// that building the "locked once by me" word is a single OR.
    #[inline]
    pub fn shifted(self) -> u32 {
        u32::from(self.0) << TID_SHIFT
    }
}

impl fmt::Display for ThreadIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A 23-bit index into the fat-lock (monitor) table.
///
/// # Example
///
/// ```
/// use thinlock_runtime::lockword::MonitorIndex;
/// let m = MonitorIndex::new(42)?;
/// assert_eq!(m.get(), 42);
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonitorIndex(u32);

impl MonitorIndex {
    /// Largest representable monitor index.
    pub const MAX: u32 = 0x7F_FFFF;

    /// Creates a monitor index.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::MonitorIndexExhausted`] if `raw` exceeds the
    /// 23-bit space.
    pub fn new(raw: u32) -> Result<Self, SyncError> {
        if raw > Self::MAX {
            Err(SyncError::MonitorIndexExhausted)
        } else {
            Ok(MonitorIndex(raw))
        }
    }

    /// The raw index value.
    #[inline]
    pub fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MonitorIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Structured view of a lock word, for slow paths, debugging, and tests.
///
/// The fast paths never build this; they use the raw-word predicates on
/// [`LockWord`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockState {
    /// Lock field is all zeroes: nobody owns the object.
    Unlocked,
    /// Thin lock held by `owner`, acquired `count + 1` times.
    Thin {
        /// Owning thread.
        owner: ThreadIndex,
        /// Stored count, i.e. number of acquisitions minus one.
        count: u8,
    },
    /// Inflated lock; all state lives in the monitor table at `index`.
    Fat {
        /// Index of the fat lock in the monitor table.
        index: MonitorIndex,
    },
}

/// A snapshot of an object's 32-bit header word containing the lock field.
///
/// `LockWord` is a *value*: loading, deciding, and storing are performed by
/// the protocols on the underlying atomic. All methods are total and
/// branch-free where the paper's assembly was.
///
/// # Example
///
/// ```
/// use thinlock_runtime::lockword::{LockWord, ThreadIndex};
///
/// let hdr = LockWord::new_unlocked(0xAB);
/// let t = ThreadIndex::new(7)?;
/// let locked = hdr.locked_once_by(t);
/// assert_eq!(locked.thin_owner(), Some(t));
/// assert_eq!(locked.thin_count(), 0); // count stores locks - 1
/// assert_eq!(locked.header_bits(), 0xAB); // low byte untouched
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LockWord(u32);

impl LockWord {
    /// Creates the word for an unlocked object whose "other header data"
    /// byte is `header_bits`.
    #[inline]
    pub fn new_unlocked(header_bits: u8) -> Self {
        LockWord(u32::from(header_bits))
    }

    /// Reinterprets a raw 32-bit header word.
    #[inline]
    pub fn from_bits(bits: u32) -> Self {
        LockWord(bits)
    }

    /// The raw 32-bit word.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// The 8 "other header data" bits that share the word with the lock.
    #[inline]
    pub fn header_bits(self) -> u8 {
        (self.0 & HEADER_BITS_MASK) as u8
    }

    /// The word with the entire 24-bit lock field cleared — the "old value"
    /// a locking thread feeds to compare-and-swap (Section 2.3.1 constructs
    /// it "by loading the lock word and masking out the high 24 bits").
    #[inline]
    pub fn with_lock_field_clear(self) -> Self {
        LockWord(self.0 & HEADER_BITS_MASK)
    }

    /// True if the monitor shape bit is 0 (thin or unlocked).
    #[inline]
    pub fn is_thin_shape(self) -> bool {
        self.0 & SHAPE_BIT == 0
    }

    /// True if the monitor shape bit is 1 (inflated).
    #[inline]
    pub fn is_fat(self) -> bool {
        self.0 & SHAPE_BIT != 0
    }

    /// True if the lock field is all zeroes (unlocked, never inflated).
    #[inline]
    pub fn is_unlocked(self) -> bool {
        self.0 & LOCK_FIELD_MASK == 0
    }

    /// The owning thread of a thin lock, if this word is a held thin lock.
    #[inline]
    pub fn thin_owner(self) -> Option<ThreadIndex> {
        if self.is_fat() {
            return None;
        }
        let raw = ((self.0 & TID_MASK) >> TID_SHIFT) as u16;
        ThreadIndex::new(raw).ok()
    }

    /// The stored thin count (locks − 1). Meaningless unless
    /// [`thin_owner`](Self::thin_owner) is `Some`.
    #[inline]
    pub fn thin_count(self) -> u8 {
        ((self.0 & COUNT_MASK) >> COUNT_SHIFT) as u8
    }

    /// The monitor index of an inflated word, if the shape bit is set.
    #[inline]
    pub fn monitor_index(self) -> Option<MonitorIndex> {
        if self.is_fat() {
            Some(MonitorIndex((self.0 & MONITOR_MASK) >> MONITOR_SHIFT))
        } else {
            None
        }
    }

    /// The word representing "locked once by `owner`": the bitwise OR of
    /// the cleared word and the pre-shifted thread index (Figure 1(d)).
    #[inline]
    pub fn locked_once_by(self, owner: ThreadIndex) -> Self {
        LockWord((self.0 & HEADER_BITS_MASK) | owner.shifted())
    }

    /// The paper's single-compare nested-lock test (Section 2.3.3):
    /// XOR the word with the pre-shifted owner index and check the result
    /// is `< 255 << 8`. True exactly when the shape bit is 0, the owner
    /// matches, and the count can be incremented without overflow.
    #[inline]
    pub fn can_nest(self, owner_shifted: u32) -> bool {
        (self.0 ^ owner_shifted) < NESTED_LIMIT
    }

    /// True exactly when this word is a thin lock held *once* by the given
    /// owner: shape 0, matching index, count 0. This is the expected "old
    /// value" of the common-case unlock (Section 2.3.2, Figure 1(d)); a
    /// single XOR against the pre-shifted index leaves at most header bits.
    #[inline]
    pub fn is_locked_once_by(self, owner_shifted: u32) -> bool {
        (self.0 ^ owner_shifted) <= HEADER_BITS_MASK
    }

    /// Like [`can_nest`](Self::can_nest) but also true at the maximum
    /// count: shape is 0 and the owner matches, irrespective of overflow.
    /// Used by the unlock and overflow-detection paths.
    #[inline]
    pub fn is_thin_owned_by(self, owner_shifted: u32) -> bool {
        (self.0 ^ owner_shifted) <= (COUNT_MASK | HEADER_BITS_MASK)
    }

    /// The word with the nested count incremented by one — a single ADD of
    /// `1 << 8` as in the paper. Caller must have checked
    /// [`can_nest`](Self::can_nest).
    #[inline]
    pub fn with_count_incremented(self) -> Self {
        debug_assert!(self.is_thin_shape());
        debug_assert!(self.thin_count() < MAX_THIN_COUNT as u8);
        LockWord(self.0 + (1 << COUNT_SHIFT))
    }

    /// The word with the nested count decremented by one. Caller must hold
    /// the lock with a positive count.
    #[inline]
    pub fn with_count_decremented(self) -> Self {
        debug_assert!(self.is_thin_shape());
        debug_assert!(self.thin_count() > 0);
        LockWord(self.0 - (1 << COUNT_SHIFT))
    }

    /// The inflated form of this word: shape bit set and the monitor index
    /// installed, preserving the header byte (Figure 2(a)).
    #[inline]
    pub fn inflated(self, index: MonitorIndex) -> Self {
        LockWord((self.0 & HEADER_BITS_MASK) | SHAPE_BIT | (index.0 << MONITOR_SHIFT))
    }

    /// Full structured decoding, for slow paths and diagnostics.
    pub fn state(self) -> LockState {
        if self.is_fat() {
            LockState::Fat {
                index: self.monitor_index().expect("shape bit checked"),
            }
        } else {
            match self.thin_owner() {
                None => LockState::Unlocked,
                Some(owner) => LockState::Thin {
                    owner,
                    count: self.thin_count(),
                },
            }
        }
    }
}

impl fmt::Debug for LockWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LockWord({:#010x} = {:?})", self.0, self.state())
    }
}

impl fmt::Display for LockWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.state() {
            LockState::Unlocked => write!(f, "unlocked(hdr={:#04x})", self.header_bits()),
            LockState::Thin { owner, count } => {
                write!(f, "thin({owner}, locks={})", u32::from(count) + 1)
            }
            LockState::Fat { index } => write!(f, "fat({index})"),
        }
    }
}

impl fmt::LowerHex for LockWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for LockWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for LockWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u16) -> ThreadIndex {
        ThreadIndex::new(i).unwrap()
    }

    #[test]
    fn unlocked_word_has_zero_lock_field() {
        let w = LockWord::new_unlocked(0xCD);
        assert!(w.is_unlocked());
        assert!(w.is_thin_shape());
        assert!(!w.is_fat());
        assert_eq!(w.header_bits(), 0xCD);
        assert_eq!(w.thin_owner(), None);
        assert_eq!(w.state(), LockState::Unlocked);
    }

    #[test]
    fn thread_index_rejects_zero_and_too_large() {
        assert_eq!(ThreadIndex::new(0), Err(SyncError::ThreadIndexExhausted));
        assert_eq!(
            ThreadIndex::new(0x8000),
            Err(SyncError::ThreadIndexExhausted)
        );
        assert!(ThreadIndex::new(1).is_ok());
        assert!(ThreadIndex::new(ThreadIndex::MAX).is_ok());
    }

    #[test]
    fn monitor_index_bounds() {
        assert!(MonitorIndex::new(0).is_ok());
        assert!(MonitorIndex::new(MonitorIndex::MAX).is_ok());
        assert_eq!(
            MonitorIndex::new(MonitorIndex::MAX + 1),
            Err(SyncError::MonitorIndexExhausted)
        );
    }

    #[test]
    fn locked_once_sets_owner_and_zero_count() {
        let w = LockWord::new_unlocked(0x3C).locked_once_by(t(123));
        assert!(!w.is_unlocked());
        assert_eq!(w.thin_owner(), Some(t(123)));
        assert_eq!(w.thin_count(), 0);
        assert_eq!(w.header_bits(), 0x3C);
        assert_eq!(
            w.state(),
            LockState::Thin {
                owner: t(123),
                count: 0
            }
        );
    }

    #[test]
    fn nested_increment_and_decrement_are_adds_of_256() {
        let w0 = LockWord::new_unlocked(0xFF).locked_once_by(t(9));
        let w1 = w0.with_count_incremented();
        assert_eq!(w1.bits(), w0.bits() + 256);
        assert_eq!(w1.thin_count(), 1);
        assert_eq!(w1.thin_owner(), Some(t(9)));
        assert_eq!(w1.with_count_decremented(), w0);
    }

    #[test]
    fn can_nest_matches_paper_conditions() {
        let owner = t(77);
        let os = owner.shifted();
        // Unlocked: owner bits differ -> cannot nest.
        assert!(!LockWord::new_unlocked(0).can_nest(os));
        // Owned, count 0..=254: can nest.
        let mut w = LockWord::new_unlocked(0xAA).locked_once_by(owner);
        for _ in 0..MAX_THIN_COUNT {
            assert!(w.can_nest(os), "count {}", w.thin_count());
            w = w.with_count_incremented();
        }
        // Count == 255: cannot nest (would overflow 8 bits).
        assert_eq!(w.thin_count(), 255);
        assert!(!w.can_nest(os));
        // ... but is still recognizably owned.
        assert!(w.is_thin_owned_by(os));
        // Different owner: cannot nest.
        let other = LockWord::new_unlocked(0xAA).locked_once_by(t(78));
        assert!(!other.can_nest(os));
        assert!(!other.is_thin_owned_by(os));
        // Fat: cannot nest.
        let fat = w.inflated(MonitorIndex::new(3).unwrap());
        assert!(!fat.can_nest(os));
        assert!(!fat.is_thin_owned_by(os));
    }

    #[test]
    fn is_locked_once_by_matches_decoded_check() {
        let owner = t(300);
        let os = owner.shifted();
        let once = LockWord::new_unlocked(0x44).locked_once_by(owner);
        assert!(once.is_locked_once_by(os));
        assert!(!once.with_count_incremented().is_locked_once_by(os));
        assert!(!LockWord::new_unlocked(0x44).is_locked_once_by(os));
        assert!(!once
            .inflated(MonitorIndex::new(1).unwrap())
            .is_locked_once_by(os));
        assert!(!LockWord::new_unlocked(0x44)
            .locked_once_by(t(301))
            .is_locked_once_by(os));
    }

    #[test]
    fn nested_limit_fits_sixteen_bit_immediate() {
        // The paper notes 255 << 8 fits a 16-bit unsigned immediate.
        const { assert!(NESTED_LIMIT <= 0xFFFF) };
    }

    #[test]
    fn inflation_preserves_header_bits_and_sets_shape() {
        let thin = LockWord::new_unlocked(0x5A).locked_once_by(t(4));
        let idx = MonitorIndex::new(0x7F_FFFF).unwrap();
        let fat = thin.inflated(idx);
        assert!(fat.is_fat());
        assert_eq!(fat.header_bits(), 0x5A);
        assert_eq!(fat.monitor_index(), Some(idx));
        assert_eq!(fat.state(), LockState::Fat { index: idx });
        assert_eq!(fat.thin_owner(), None);
    }

    #[test]
    fn masks_partition_the_word() {
        assert_eq!(
            HEADER_BITS_MASK | COUNT_MASK | TID_MASK | SHAPE_BIT,
            u32::MAX
        );
        assert_eq!(HEADER_BITS_MASK & COUNT_MASK, 0);
        assert_eq!(COUNT_MASK & TID_MASK, 0);
        assert_eq!(TID_MASK & SHAPE_BIT, 0);
        assert_eq!(MONITOR_MASK, COUNT_MASK | TID_MASK);
    }

    #[test]
    fn max_thread_index_does_not_collide_with_shape_bit() {
        let w = LockWord::new_unlocked(0).locked_once_by(t(ThreadIndex::MAX));
        assert!(w.is_thin_shape());
        assert_eq!(w.thin_owner(), Some(t(ThreadIndex::MAX)));
    }

    #[test]
    fn clearing_lock_field_keeps_header_byte() {
        let w = LockWord::from_bits(0xDEAD_BEEF);
        assert_eq!(w.with_lock_field_clear().bits(), 0xEF);
    }

    #[test]
    fn display_formats() {
        let u = LockWord::new_unlocked(2);
        assert_eq!(u.to_string(), "unlocked(hdr=0x02)");
        let w = u.locked_once_by(t(5)).with_count_incremented();
        assert_eq!(w.to_string(), "thin(t5, locks=2)");
        let f = u.inflated(MonitorIndex::new(9).unwrap());
        assert_eq!(f.to_string(), "fat(m9)");
        // Debug is never empty and includes hex.
        assert!(format!("{w:?}").contains("0x"));
    }

    #[test]
    fn hex_binary_formatting() {
        let w = LockWord::from_bits(0xF0);
        assert_eq!(format!("{w:x}"), "f0");
        assert_eq!(format!("{w:X}"), "F0");
        assert_eq!(format!("{w:b}"), "11110000");
    }
}
