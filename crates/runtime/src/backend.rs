//! The pluggable protocol-backend seam: [`SyncBackend`] extends
//! [`SyncProtocol`] with the introspection probes every harness needs.
//!
//! [`SyncProtocol`] is the *semantic* surface — lock, unlock, wait,
//! notify — and is all the VM interpreter or a benchmark body ever
//! calls. The harnesses around them need more: the chaos harness
//! asserts convergence by asking *who owns this object right now*, the
//! model checker compares physical lock words against its ground-truth
//! model, and the churn benchmarks grade backends on their *monitor
//! population*. Those probes used to be concrete `ThinLocks` methods,
//! which hard-wired every harness to one protocol. [`SyncBackend`]
//! lifts them into a trait so the thin protocol, the deflating CJM
//! backend, and the baselines are interchangeable everywhere they are
//! consumed (see BACKENDS.md for the catalog and the contract each
//! harness enforces).
//!
//! The split matters for layering: this crate cannot name the monitor
//! crate's `FatLock`, so fat-monitor state is surfaced through the
//! plain-data [`MonitorProbe`] snapshot rather than a borrowed monitor
//! reference.
//!
//! # Example
//!
//! Harness code probes any backend without knowing the protocol:
//!
//! ```
//! use thinlock_runtime::backend::SyncBackend;
//! use thinlock_runtime::ObjRef;
//!
//! fn describe(b: &dyn SyncBackend, obj: ObjRef) -> String {
//!     match b.monitor_probe(obj) {
//!         Some(p) => format!("fat: owner={:?} count={}", p.owner, p.count),
//!         None => format!("thin word {:#010x}", b.probe_word(obj).bits()),
//!     }
//! }
//! # let _ = describe;
//! ```

use crate::heap::ObjRef;
use crate::lockword::{LockWord, ThreadIndex};
use crate::protocol::SyncProtocol;
use crate::registry::ThreadToken;

/// A plain-data snapshot of one object's fat monitor, taken at a
/// quiescent point.
///
/// Probes are advisory outside a quiescent state: between the loads that
/// build the snapshot the monitor may move on. The model checker only
/// consults probes while every worker is blocked at a schedule point,
/// where the snapshot is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MonitorProbe {
    /// The thread that owns the monitor, if any.
    pub owner: Option<ThreadIndex>,
    /// The owner's nesting depth (0 when unowned).
    pub count: u32,
    /// Threads queued to enter the monitor.
    pub entry_queue_len: usize,
    /// Threads parked in a `wait` on the monitor.
    pub wait_set_len: usize,
}

impl MonitorProbe {
    /// True when the monitor is quiescent: no owner, nobody queued to
    /// enter, nobody waiting — the precondition a deflating backend
    /// must establish (while *holding* the monitor, so `owner` is the
    /// deflater itself and `count` is 1 at the decision point) before
    /// restoring the object's word to its neutral shape.
    pub fn is_idle(&self) -> bool {
        self.owner.is_none() && self.entry_queue_len == 0 && self.wait_set_len == 0
    }
}

/// A [`SyncProtocol`] that additionally exposes the introspection and
/// accounting probes the workspace harnesses are written against.
///
/// Implementations: `ThinLocks` and `CjmLocks` in the core crate,
/// `TasukiLocks`, and (best-effort) the `baselines` protocols. Probes
/// must be cheap and non-blocking — they are called from convergence
/// loops and from the model checker's per-state invariant sweep.
///
/// # Contract
///
/// * [`probe_word`](SyncBackend::probe_word) returns the object's
///   current physical lock word (acquire load).
/// * [`monitor_probe`](SyncBackend::monitor_probe) returns `Some` iff
///   the object's word currently has the fat shape and the monitor it
///   points at resolves.
/// * The population gauges count *distinct live monitors*, so a
///   deflating backend's [`monitors_live`](SyncBackend::monitors_live)
///   can fall back toward zero while
///   [`monitors_allocated`](SyncBackend::monitors_allocated) only ever
///   grows.
/// * [`deflation_capable`](SyncBackend::deflation_capable) tells the
///   model checker which invariant to arm: one-way inflation for
///   `false`, deflation safety (never deflate an owned or waited-on
///   monitor) for `true`.
pub trait SyncBackend: SyncProtocol {
    /// The object's current lock word (acquire load), for shape and
    /// thin-owner inspection.
    fn probe_word(&self, obj: ObjRef) -> LockWord {
        self.heap().header(obj).lock_word().load_acquire()
    }

    /// Snapshot of the object's fat monitor, or `None` while the word
    /// is not fat (or its monitor index does not resolve).
    ///
    /// The default is for protocols with no fat representation at all
    /// (oracles, monitor-cache baselines); real word-based backends
    /// must override it.
    fn monitor_probe(&self, obj: ObjRef) -> Option<MonitorProbe> {
        let _ = obj;
        None
    }

    /// The thread currently holding `obj`'s monitor, if any — thin
    /// owner from the word, fat owner from the monitor probe.
    fn owner_of(&self, obj: ObjRef) -> Option<ThreadIndex> {
        let word = self.probe_word(obj);
        if word.is_fat() {
            self.monitor_probe(obj).and_then(|p| p.owner)
        } else {
            word.thin_owner()
        }
    }

    /// True while thread `t` is parked in a `wait` on `obj`'s monitor.
    fn in_wait_set(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let _ = (obj, t);
        false
    }

    /// Whether a spin step by thread `t` on `obj` can make progress —
    /// the enabledness the model checker consults before granting a
    /// `LockSpin` step, so exhaustive exploration never schedules a
    /// spinner that is guaranteed to loop back to the same state.
    ///
    /// The default matches spin-until-released protocols: a spinner can
    /// advance once the word is unlocked (the CAS can win) or fat (the
    /// monitor path takes over). FIFO-admission backends override this
    /// to also require that the spinner's ticket has been granted;
    /// without the override the checker would explore ungranted CAS
    /// attempts that the protocol itself never makes.
    fn spin_enabled(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let _ = t;
        let word = self.probe_word(obj);
        word.is_unlocked() || word.is_fat()
    }

    /// True if this backend can restore a fat word back to the neutral
    /// thin shape. Backends that return `true` emit
    /// [`TraceEventKind::Deflated`](crate::events::TraceEventKind::Deflated)
    /// and pass through
    /// [`SchedPoint::Deflate`](crate::schedule::SchedPoint::Deflate);
    /// backends that return `false` promise one-way inflation and the
    /// model checker holds them to it.
    fn deflation_capable(&self) -> bool {
        false
    }

    /// Total thin-to-fat transitions performed so far.
    fn inflation_count(&self) -> u64 {
        0
    }

    /// Total fat-to-thin transitions performed so far. Always 0 for
    /// backends where [`deflation_capable`](SyncBackend::deflation_capable)
    /// is `false`.
    fn deflation_count(&self) -> u64 {
        0
    }

    /// Monitors currently backing a fat word — the population a
    /// deflating backend exists to bound.
    fn monitors_live(&self) -> usize {
        0
    }

    /// High-water mark of [`monitors_live`](SyncBackend::monitors_live).
    fn monitors_peak(&self) -> usize {
        0
    }

    /// Monitor allocations performed over the backend's lifetime
    /// (monotone; recycling a slot does not decrement it).
    fn monitors_allocated(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{SyncError, SyncResult};
    use crate::heap::Heap;
    use crate::protocol::WaitOutcome;
    use crate::registry::ThreadRegistry;
    use std::time::Duration;

    /// Minimal backend over a bare heap: single global spin-less lock
    /// model, enough to exercise the trait defaults.
    #[derive(Debug)]
    struct BareBackend {
        heap: Heap,
        registry: ThreadRegistry,
    }

    impl SyncProtocol for BareBackend {
        fn lock(&self, _obj: ObjRef, _t: ThreadToken) -> SyncResult<()> {
            Ok(())
        }
        fn unlock(&self, _obj: ObjRef, _t: ThreadToken) -> SyncResult<()> {
            Ok(())
        }
        fn wait(
            &self,
            _obj: ObjRef,
            _t: ThreadToken,
            _timeout: Option<Duration>,
        ) -> SyncResult<WaitOutcome> {
            Err(SyncError::NotOwner)
        }
        fn notify(&self, _obj: ObjRef, _t: ThreadToken) -> SyncResult<()> {
            Ok(())
        }
        fn notify_all(&self, _obj: ObjRef, _t: ThreadToken) -> SyncResult<()> {
            Ok(())
        }
        fn holds_lock(&self, _obj: ObjRef, _t: ThreadToken) -> bool {
            false
        }
        fn heap(&self) -> &Heap {
            &self.heap
        }
        fn registry(&self) -> &ThreadRegistry {
            &self.registry
        }
        fn name(&self) -> &'static str {
            "Bare"
        }
    }

    impl SyncBackend for BareBackend {}

    #[test]
    fn defaults_describe_a_thin_only_backend() {
        let b = BareBackend {
            heap: Heap::with_capacity(2),
            registry: ThreadRegistry::new(),
        };
        let obj = b.heap.alloc().unwrap();
        assert!(b.probe_word(obj).is_unlocked());
        assert!(b.monitor_probe(obj).is_none());
        assert_eq!(b.owner_of(obj), None);
        let r = b.registry.register().unwrap();
        assert!(
            b.spin_enabled(obj, r.token()),
            "spinning on an unlocked word is enabled by default"
        );
        assert!(!b.deflation_capable());
        assert_eq!(b.inflation_count(), 0);
        assert_eq!(b.deflation_count(), 0);
        assert_eq!(b.monitors_live(), 0);
        assert_eq!(b.monitors_peak(), 0);
        assert_eq!(b.monitors_allocated(), 0);
    }

    #[test]
    fn backend_is_object_safe() {
        let b = BareBackend {
            heap: Heap::with_capacity(1),
            registry: ThreadRegistry::new(),
        };
        let obj = b.heap.alloc().unwrap();
        let d: &dyn SyncBackend = &b;
        assert_eq!(d.owner_of(obj), None);
        assert_eq!(d.name(), "Bare");
    }

    #[test]
    fn idle_probe_requires_empty_queues_and_no_owner() {
        let idle = MonitorProbe::default();
        assert!(idle.is_idle());
        let waited = MonitorProbe {
            wait_set_len: 1,
            ..MonitorProbe::default()
        };
        assert!(!waited.is_idle());
        let queued = MonitorProbe {
            entry_queue_len: 2,
            ..MonitorProbe::default()
        };
        assert!(!queued.is_idle());
    }
}
