//! Instrumentation counters for the locking-scenario characterization.
//!
//! Section 2 of the paper ranks five locking scenarios by assumed
//! frequency, and Section 3.2 (Table 1, Figure 3) validates the ranking by
//! counting them. [`LockStats`] holds one relaxed atomic counter per
//! scenario plus a nesting-depth histogram, so a protocol (or the trace
//! replay engine) can regenerate those measurements.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The five locking scenarios of Section 2, plus the post-inflation fat
/// cases needed to account for every operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockScenario {
    /// Scenario 1: locking an unlocked object.
    Unlocked,
    /// Scenario 2: shallowly nested locking by the owner (depth ≤ 4, the
    /// deepest the paper ever observed).
    NestedShallow,
    /// Scenario 3: deeply nested locking by the owner (depth > 4).
    NestedDeep,
    /// Scenario 4: locking an object thin-locked by another thread (spin
    /// and inflate); no queue exists yet.
    ContendedThin,
    /// Locking an already-inflated lock without waiting (fat fast path).
    FatUncontended,
    /// Scenario 5: locking an inflated lock that forces queuing.
    FatContended,
}

impl LockScenario {
    /// All scenarios in presentation order.
    pub const ALL: [LockScenario; 6] = [
        LockScenario::Unlocked,
        LockScenario::NestedShallow,
        LockScenario::NestedDeep,
        LockScenario::ContendedThin,
        LockScenario::FatUncontended,
        LockScenario::FatContended,
    ];
}

impl fmt::Display for LockScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockScenario::Unlocked => "unlocked",
            LockScenario::NestedShallow => "nested-shallow",
            LockScenario::NestedDeep => "nested-deep",
            LockScenario::ContendedThin => "contended-thin",
            LockScenario::FatUncontended => "fat-uncontended",
            LockScenario::FatContended => "fat-contended",
        };
        f.write_str(s)
    }
}

/// Why a thin lock was inflated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InflationCause {
    /// A second thread contended for a thin-held lock (Section 2.3.4).
    Contention,
    /// The 8-bit nested count overflowed (the paper's "excessive" 257th
    /// acquisition).
    CountOverflow,
    /// `wait`/`notify`/`notifyAll` was performed on a thin-locked object.
    WaitNotify,
    /// A static pre-inflation hint was applied before the workload ran
    /// (the `lockcheck` nest-depth pass predicted a count overflow).
    Hint,
}

impl InflationCause {
    /// All causes, in the order [`StatsSnapshot::inflations`] is indexed.
    pub const ALL: [InflationCause; 4] = [
        InflationCause::Contention,
        InflationCause::CountOverflow,
        InflationCause::WaitNotify,
        InflationCause::Hint,
    ];

    /// Stable numeric code (the index into [`InflationCause::ALL`]),
    /// used by the event-ring encoding in `thinlock-obs`.
    pub fn code(self) -> u8 {
        match self {
            InflationCause::Contention => 0,
            InflationCause::CountOverflow => 1,
            InflationCause::WaitNotify => 2,
            InflationCause::Hint => 3,
        }
    }

    /// Inverse of [`code`](InflationCause::code).
    pub fn from_code(code: u8) -> Option<InflationCause> {
        InflationCause::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for InflationCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InflationCause::Contention => "contention",
            InflationCause::CountOverflow => "count-overflow",
            InflationCause::WaitNotify => "wait-notify",
            InflationCause::Hint => "hint",
        };
        f.write_str(s)
    }
}

/// Number of buckets in the nesting-depth histogram. Depth 1 is the first
/// lock on an object; the last bucket aggregates everything deeper.
pub const DEPTH_BUCKETS: usize = 8;

/// Relaxed atomic counters describing a run's locking behaviour.
///
/// All increments are `Relaxed`: the counters are monotone and only read
/// after the measured run quiesces, so no ordering is needed and the
/// instrumented fast path stays cheap.
///
/// # Example
///
/// ```
/// use thinlock_runtime::stats::{LockScenario, LockStats};
///
/// let stats = LockStats::new();
/// stats.record_lock(LockScenario::Unlocked, 1);
/// stats.record_lock(LockScenario::NestedShallow, 2);
/// let snap = stats.snapshot();
/// assert_eq!(snap.total_locks(), 2);
/// assert_eq!(snap.depth_histogram[0], 1); // one first-lock
/// assert_eq!(snap.depth_histogram[1], 1); // one second-lock
/// ```
#[derive(Debug, Default)]
pub struct LockStats {
    scenarios: [AtomicU64; 6],
    depths: [AtomicU64; DEPTH_BUCKETS],
    inflations: [AtomicU64; 4],
    unlocks_thin: AtomicU64,
    unlocks_fat: AtomicU64,
    spin_rounds: AtomicU64,
    waits: AtomicU64,
    notifies: AtomicU64,
}

impl LockStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        LockStats::default()
    }

    fn scenario_slot(s: LockScenario) -> usize {
        match s {
            LockScenario::Unlocked => 0,
            LockScenario::NestedShallow => 1,
            LockScenario::NestedDeep => 2,
            LockScenario::ContendedThin => 3,
            LockScenario::FatUncontended => 4,
            LockScenario::FatContended => 5,
        }
    }

    fn cause_slot(c: InflationCause) -> usize {
        match c {
            InflationCause::Contention => 0,
            InflationCause::CountOverflow => 1,
            InflationCause::WaitNotify => 2,
            InflationCause::Hint => 3,
        }
    }

    /// Records one lock acquisition under `scenario` at nesting `depth`
    /// (1 = first lock on the object).
    pub fn record_lock(&self, scenario: LockScenario, depth: u32) {
        self.scenarios[Self::scenario_slot(scenario)].fetch_add(1, Ordering::Relaxed);
        let bucket = (depth.max(1) as usize - 1).min(DEPTH_BUCKETS - 1);
        self.depths[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records an inflation and its cause.
    pub fn record_inflation(&self, cause: InflationCause) {
        self.inflations[Self::cause_slot(cause)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a thin (store-based) unlock.
    pub fn record_unlock_thin(&self) {
        self.unlocks_thin.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fat (monitor) unlock.
    pub fn record_unlock_fat(&self) {
        self.unlocks_fat.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds spin-loop rounds spent waiting to inflate.
    pub fn record_spin_rounds(&self, rounds: u64) {
        self.spin_rounds.fetch_add(rounds, Ordering::Relaxed);
    }

    /// Records a `wait` operation.
    pub fn record_wait(&self) {
        self.waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `notify`/`notifyAll` operation.
    pub fn record_notify(&self) {
        self.notifies.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting (run must be
    /// quiescent for exact totals).
    pub fn snapshot(&self) -> StatsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            scenario_counts: std::array::from_fn(|i| load(&self.scenarios[i])),
            depth_histogram: std::array::from_fn(|i| load(&self.depths[i])),
            inflations: std::array::from_fn(|i| load(&self.inflations[i])),
            unlocks_thin: load(&self.unlocks_thin),
            unlocks_fat: load(&self.unlocks_fat),
            spin_rounds: load(&self.spin_rounds),
            waits: load(&self.waits),
            notifies: load(&self.notifies),
        }
    }
}

/// Plain-data snapshot of [`LockStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Counts per scenario, indexed like [`LockScenario::ALL`].
    pub scenario_counts: [u64; 6],
    /// Lock acquisitions by nesting depth; bucket 0 is depth 1 (first
    /// lock), the final bucket aggregates depth ≥ [`DEPTH_BUCKETS`].
    pub depth_histogram: [u64; DEPTH_BUCKETS],
    /// Inflations by cause: contention, count overflow, wait/notify,
    /// static pre-inflation hint.
    pub inflations: [u64; 4],
    /// Store-based unlocks of thin locks.
    pub unlocks_thin: u64,
    /// Monitor unlocks of fat locks.
    pub unlocks_fat: u64,
    /// Spin-loop rounds spent in the contention path.
    pub spin_rounds: u64,
    /// `wait` operations.
    pub waits: u64,
    /// `notify` + `notifyAll` operations.
    pub notifies: u64,
}

impl StatsSnapshot {
    /// Total lock acquisitions across all scenarios.
    pub fn total_locks(&self) -> u64 {
        self.scenario_counts.iter().sum()
    }

    /// Total inflations across all causes.
    pub fn total_inflations(&self) -> u64 {
        self.inflations.iter().sum()
    }

    /// Fraction (0..=1) of lock operations that found the object unlocked —
    /// the paper's headline "median of 80% of all lock operations are on
    /// unlocked objects".
    pub fn first_lock_fraction(&self) -> f64 {
        let total = self.total_locks();
        if total == 0 {
            return 0.0;
        }
        self.depth_histogram[0] as f64 / total as f64
    }

    /// Deepest nesting bucket with a nonzero count (1-based depth), or 0 if
    /// no locks were recorded.
    pub fn max_observed_depth(&self) -> usize {
        self.depth_histogram
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1)
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "locks: {}", self.total_locks())?;
        for (s, c) in LockScenario::ALL.iter().zip(self.scenario_counts) {
            writeln!(f, "  {s:<16} {c}")?;
        }
        writeln!(
            f,
            "inflations: {} (contention {}, overflow {}, wait {}, hint {})",
            self.total_inflations(),
            self.inflations[0],
            self.inflations[1],
            self.inflations[2],
            self.inflations[3]
        )?;
        writeln!(
            f,
            "unlocks: thin {}, fat {}; spins {}; waits {}; notifies {}",
            self.unlocks_thin, self.unlocks_fat, self.spin_rounds, self.waits, self.notifies
        )?;
        write!(f, "depth histogram: {:?}", self.depth_histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_counting() {
        let s = LockStats::new();
        s.record_lock(LockScenario::Unlocked, 1);
        s.record_lock(LockScenario::Unlocked, 1);
        s.record_lock(LockScenario::NestedShallow, 2);
        s.record_lock(LockScenario::FatContended, 1);
        let snap = s.snapshot();
        assert_eq!(snap.scenario_counts[0], 2);
        assert_eq!(snap.scenario_counts[1], 1);
        assert_eq!(snap.scenario_counts[5], 1);
        assert_eq!(snap.total_locks(), 4);
    }

    #[test]
    fn depth_histogram_buckets_and_saturation() {
        let s = LockStats::new();
        s.record_lock(LockScenario::Unlocked, 1);
        s.record_lock(LockScenario::NestedShallow, 4);
        s.record_lock(LockScenario::NestedDeep, 100); // saturates last bucket
        let snap = s.snapshot();
        assert_eq!(snap.depth_histogram[0], 1);
        assert_eq!(snap.depth_histogram[3], 1);
        assert_eq!(snap.depth_histogram[DEPTH_BUCKETS - 1], 1);
        assert_eq!(snap.max_observed_depth(), DEPTH_BUCKETS);
    }

    #[test]
    fn first_lock_fraction() {
        let s = LockStats::new();
        for _ in 0..8 {
            s.record_lock(LockScenario::Unlocked, 1);
        }
        for _ in 0..2 {
            s.record_lock(LockScenario::NestedShallow, 2);
        }
        let snap = s.snapshot();
        assert!((snap.first_lock_fraction() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_calm() {
        let snap = LockStats::new().snapshot();
        assert_eq!(snap.total_locks(), 0);
        assert_eq!(snap.first_lock_fraction(), 0.0);
        assert_eq!(snap.max_observed_depth(), 0);
    }

    #[test]
    fn inflation_causes_tracked_separately() {
        let s = LockStats::new();
        s.record_inflation(InflationCause::Contention);
        s.record_inflation(InflationCause::Contention);
        s.record_inflation(InflationCause::CountOverflow);
        s.record_inflation(InflationCause::WaitNotify);
        s.record_inflation(InflationCause::Hint);
        let snap = s.snapshot();
        assert_eq!(snap.inflations, [2, 1, 1, 1]);
        assert_eq!(snap.total_inflations(), 5);
    }

    #[test]
    fn display_contains_key_lines() {
        let s = LockStats::new();
        s.record_lock(LockScenario::Unlocked, 1);
        s.record_unlock_thin();
        let text = s.snapshot().to_string();
        assert!(text.contains("locks: 1"));
        assert!(text.contains("unlocked"));
        assert!(text.contains("depth histogram"));
    }

    #[test]
    fn scenario_display_names() {
        assert_eq!(LockScenario::Unlocked.to_string(), "unlocked");
        assert_eq!(InflationCause::WaitNotify.to_string(), "wait-notify");
    }
}
