//! The seeded chaos sweep: ≥1000 randomized schedules through the
//! faulted protocol, every one cross-checked against the std-Mutex
//! oracle, with full injection-point catalog coverage asserted over
//! the sweep.

use thinlock_fault::{run_schedule, ChaosConfig, ChaosTotals};
use thinlock_runtime::fault::InjectionPoint;

/// The acceptance sweep: 1024 seeds, zero divergence, all 11 points.
#[test]
fn thousand_seed_sweep_converges_with_full_point_coverage() {
    let mut totals = ChaosTotals::default();
    let mut orphan_runs = 0u64;
    for seed in 0..1024u64 {
        let cfg = ChaosConfig::quick(seed);
        if cfg.kill_thread {
            orphan_runs += 1;
        }
        match run_schedule(cfg) {
            Ok(report) => totals.absorb(&report),
            Err(msg) => panic!("oracle divergence: {msg}"),
        }
    }
    assert_eq!(totals.runs, 1024);
    assert_eq!(orphan_runs, 256, "every 4th seed kills a thread mid-run");
    assert!(
        totals.report.orphaned,
        "kill runs exercised the orphan sweep"
    );
    assert!(
        totals.report.acquisitions > 10_000,
        "sweep did real work: {} acquisitions",
        totals.report.acquisitions
    );
    let unfired = totals.unfired_points();
    assert!(
        unfired.is_empty(),
        "injection points never exercised across 1024 seeds: {unfired:?}"
    );
    assert!(
        totals.report.total_fires() > 1000,
        "fault rate injected a real fault volume: {}",
        totals.report.total_fires()
    );
}

/// Replay: the same seed re-derives the same per-worker operation
/// streams, so the replay executes the identical op count. (Interleaving
/// — and therefore which ops contend or time out — still belongs to the
/// OS scheduler; the seed pins the *decisions*, not the clock.)
#[test]
fn same_seed_replays_same_operation_streams() {
    for seed in [3, 17, 92, 100] {
        let cfg = ChaosConfig::quick(seed);
        let a = run_schedule(cfg).expect("first run converges");
        let b = run_schedule(cfg).expect("replay converges");
        assert_eq!(a.ops, b.ops, "seed {seed}: op counts differ");
        assert_eq!(a.orphaned, b.orphaned, "seed {seed}: kill behavior differs");
    }
}

/// A fault-free schedule (rate 0) also converges, and injects nothing.
#[test]
fn zero_rate_schedule_is_clean() {
    let report = run_schedule(ChaosConfig {
        seed: 7,
        threads: 4,
        objects: 3,
        ops_per_thread: 50,
        fault_rate_ppm: 0,
        kill_thread: false,
    })
    .expect("fault-free schedule converges");
    assert_eq!(report.total_fires(), 0);
    assert!(report.acquisitions > 0);
}

/// Cranking the rate to certainty on the always-applicable points still
/// converges: every injected action is legal, so the protocol must ride
/// it out.
#[test]
fn high_rate_schedule_survives() {
    let report = run_schedule(ChaosConfig {
        seed: 41,
        threads: 3,
        objects: 2,
        ops_per_thread: 20,
        fault_rate_ppm: 600_000,
        kill_thread: true,
    })
    .expect("high-rate schedule converges");
    assert!(report.orphaned);
    assert!(report.fires[InjectionPoint::LockFastCas.index()] > 0);
}
