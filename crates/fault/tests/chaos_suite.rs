//! The seeded chaos sweep: ≥1000 randomized schedules through the
//! faulted protocol, every one cross-checked against the std-Mutex
//! oracle, with full injection-point catalog coverage asserted over
//! the sweep.

use thinlock::BackendChoice;
use thinlock_fault::{run_schedule, ChaosConfig, ChaosTotals};
use thinlock_runtime::fault::InjectionPoint;

/// The acceptance sweep: 1024 seeds, zero divergence, all 11 points.
#[test]
fn thousand_seed_sweep_converges_with_full_point_coverage() {
    let mut totals = ChaosTotals::default();
    let mut orphan_runs = 0u64;
    for seed in 0..1024u64 {
        let cfg = ChaosConfig::quick(seed);
        if cfg.kill_thread {
            orphan_runs += 1;
        }
        match run_schedule(cfg) {
            Ok(report) => totals.absorb(&report),
            Err(msg) => panic!("oracle divergence: {msg}"),
        }
    }
    assert_eq!(totals.runs, 1024);
    assert_eq!(orphan_runs, 256, "every 4th seed kills a thread mid-run");
    assert!(
        totals.report.orphaned,
        "kill runs exercised the orphan sweep"
    );
    assert!(
        totals.report.acquisitions > 10_000,
        "sweep did real work: {} acquisitions",
        totals.report.acquisitions
    );
    let unfired = totals.unfired_points();
    assert!(
        unfired.is_empty(),
        "injection points never exercised across 1024 seeds: {unfired:?}"
    );
    assert!(
        totals.report.total_fires() > 1000,
        "fault rate injected a real fault volume: {}",
        totals.report.total_fires()
    );
}

/// Replay: the same seed re-derives the same per-worker operation
/// streams, so the replay executes the identical op count. (Interleaving
/// — and therefore which ops contend or time out — still belongs to the
/// OS scheduler; the seed pins the *decisions*, not the clock.)
#[test]
fn same_seed_replays_same_operation_streams() {
    for seed in [3, 17, 92, 100] {
        let cfg = ChaosConfig::quick(seed);
        let a = run_schedule(cfg).expect("first run converges");
        let b = run_schedule(cfg).expect("replay converges");
        assert_eq!(a.ops, b.ops, "seed {seed}: op counts differ");
        assert_eq!(a.orphaned, b.orphaned, "seed {seed}: kill behavior differs");
    }
}

/// A fault-free schedule (rate 0) also converges, and injects nothing.
#[test]
fn zero_rate_schedule_is_clean() {
    let report = run_schedule(ChaosConfig {
        seed: 7,
        threads: 4,
        objects: 3,
        ops_per_thread: 50,
        fault_rate_ppm: 0,
        kill_thread: false,
        backend: BackendChoice::Thin,
        abort_at: None,
    })
    .expect("fault-free schedule converges");
    assert_eq!(report.total_fires(), 0);
    assert!(report.acquisitions > 0);
}

/// Cranking the rate to certainty on the always-applicable points still
/// converges: every injected action is legal, so the protocol must ride
/// it out.
#[test]
fn high_rate_schedule_survives() {
    let report = run_schedule(ChaosConfig {
        seed: 41,
        threads: 3,
        objects: 2,
        ops_per_thread: 20,
        fault_rate_ppm: 600_000,
        kill_thread: true,
        backend: BackendChoice::Thin,
        abort_at: None,
    })
    .expect("high-rate schedule converges");
    assert!(report.orphaned);
    assert!(report.fires[InjectionPoint::LockFastCas.index()] > 0);
}

/// The Tasuki backend — park-based contention, deflation, a
/// never-recycled table — survives a faulted sweep including kill runs:
/// its exit sweeper must clear the dead owner's words *and* wake the
/// lobby, or a parked contender sleeps forever and the run never
/// converges. (Population bounds are not asserted here: the Tasuki table
/// reports cumulative inflations, see
/// `BackendChoice::bounded_monitor_population`.)
#[test]
fn tasuki_survives_faulted_sweep_with_kill_runs() {
    let mut totals = ChaosTotals::default();
    for seed in 0..256u64 {
        let cfg = ChaosConfig::quick_on(seed, BackendChoice::Tasuki);
        match run_schedule(cfg) {
            Ok(report) => totals.absorb(&report),
            Err(msg) => panic!("oracle divergence under tasuki: {msg}"),
        }
    }
    assert_eq!(totals.runs, 256);
    assert!(
        totals.report.orphaned,
        "kill runs exercised the tasuki orphan sweep"
    );
    assert!(
        totals.report.total_fires() > 100,
        "tasuki consulted the plan for real: {} fires",
        totals.report.total_fires()
    );
}

/// The CJM backend survives the same 1024-seed faulted sweep the thin
/// protocol does, and the monitor population stays bounded: the peak
/// never exceeds the object count (one bound monitor per object — a
/// violated bound means a pool slot leaked through a faulted
/// inflate/deflate cycle, and `run_schedule` reports it as a
/// divergence), deflation actually happens across the sweep, and the
/// pool never deflates more than it inflated.
#[test]
fn cjm_monitor_population_stays_bounded_under_thousand_seed_chaos() {
    let mut totals = ChaosTotals::default();
    for seed in 0..1024u64 {
        let cfg = ChaosConfig::quick_on(seed, BackendChoice::Cjm);
        match run_schedule(cfg) {
            Ok(report) => {
                assert!(
                    report.deflations <= report.inflations,
                    "seed {seed}: {} deflations exceed {} inflations",
                    report.deflations,
                    report.inflations
                );
                totals.absorb(&report);
            }
            Err(msg) => panic!("oracle divergence under cjm: {msg}"),
        }
    }
    assert_eq!(totals.runs, 1024);
    assert!(
        totals.report.orphaned,
        "kill runs exercised the cjm orphan sweep"
    );
    assert!(
        totals.report.inflations > 0 && totals.report.deflations > 0,
        "sweep exercised the inflate/deflate cycle: {} inflations, {} deflations",
        totals.report.inflations,
        totals.report.deflations
    );
    assert!(
        totals.report.monitors_peak <= 4,
        "peak population {} exceeded the 4-object bound in some run",
        totals.report.monitors_peak
    );
    assert!(
        totals.report.total_fires() > 1000,
        "fault rate injected a real fault volume under cjm: {}",
        totals.report.total_fires()
    );
}
