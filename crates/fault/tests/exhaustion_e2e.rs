//! End-to-end exhaustion behavior (satellite: exhaustion errors leave
//! the runtime usable).
//!
//! Each resource-exhaustion error — [`SyncError::ThreadIndexExhausted`],
//! [`SyncError::MonitorIndexExhausted`], [`SyncError::HeapFull`] — is
//! driven both for real (filling the actual resource) and through the
//! injection seam (reporting exhaustion *without* consuming anything),
//! and in every case the runtime must keep serving the resources it
//! still has and recover fully once pressure lifts.

use std::sync::Arc;
use std::time::Duration;

use thinlock::{CjmLocks, ThinLocks};
use thinlock_fault::{FaultPlan, PPM};
use thinlock_runtime::backend::SyncBackend;
use thinlock_runtime::error::SyncError;
use thinlock_runtime::fault::{FaultAction, InjectionPoint};
use thinlock_runtime::heap::Heap;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_runtime::registry::ThreadRegistry;

/// Thread indices: a full registry rejects the next registration, keeps
/// serving the registered thread, and recovers when an index frees up.
#[test]
fn thread_index_exhaustion_recovers_after_release() {
    let heap = Arc::new(Heap::with_capacity(2));
    let locks = ThinLocks::new(Arc::clone(&heap), ThreadRegistry::with_max_threads(1));
    let obj = heap.alloc().unwrap();

    let first = locks.registry().register().unwrap();
    assert_eq!(
        locks.registry().register().err(),
        Some(SyncError::ThreadIndexExhausted)
    );

    // The registered thread is unimpaired by the failed registration.
    locks.lock(obj, first.token()).unwrap();
    locks.unlock(obj, first.token()).unwrap();

    drop(first);
    let second = locks.registry().register().unwrap();
    locks.lock(obj, second.token()).unwrap();
    locks.unlock(obj, second.token()).unwrap();
}

/// Heap: a genuinely full heap rejects allocation but existing objects
/// keep locking normally.
#[test]
fn real_heap_exhaustion_keeps_existing_objects_usable() {
    let locks = ThinLocks::with_capacity(2);
    let a = locks.heap().alloc().unwrap();
    let b = locks.heap().alloc().unwrap();
    assert_eq!(locks.heap().alloc().err(), Some(SyncError::HeapFull));

    let reg = locks.registry().register().unwrap();
    let t = reg.token();
    for obj in [a, b] {
        locks.lock(obj, t).unwrap();
        locks.unlock(obj, t).unwrap();
    }
}

/// Heap, injected: a budgeted `Exhaust` reports `HeapFull` without
/// consuming a slot, so the very next allocation succeeds — and the
/// capacity check proves nothing leaked.
#[test]
fn injected_heap_exhaustion_consumes_nothing() {
    let plan = Arc::new(
        FaultPlan::new(21)
            .with_rule(InjectionPoint::HeapAlloc, FaultAction::Exhaust, PPM)
            .with_budget(InjectionPoint::HeapAlloc, 1),
    );
    let locks = ThinLocks::with_capacity(2).with_fault_injector(plan.clone());

    assert_eq!(locks.heap().alloc().err(), Some(SyncError::HeapFull));
    assert_eq!(
        locks.heap().allocated(),
        0,
        "injected failure consumed nothing"
    );
    let obj = locks
        .heap()
        .alloc()
        .expect("budget spent: allocation recovers");
    let again = locks.heap().alloc().expect("full capacity still available");
    assert_eq!(plan.fires(InjectionPoint::HeapAlloc), 1);

    let reg = locks.registry().register().unwrap();
    for o in [obj, again] {
        locks.lock(o, reg.token()).unwrap();
        locks.unlock(o, reg.token()).unwrap();
    }
}

/// Monitors, injected: inflation reports `MonitorIndexExhausted`, the
/// object stays a working *thin* lock, and once pressure lifts the same
/// object inflates fine.
#[test]
fn monitor_exhaustion_leaves_thin_locking_intact() {
    let plan = Arc::new(
        FaultPlan::new(33)
            .with_rule(InjectionPoint::MonitorAllocate, FaultAction::Exhaust, PPM)
            .with_budget(InjectionPoint::MonitorAllocate, 1),
    );
    let locks = ThinLocks::with_capacity(2).with_fault_injector(plan.clone());
    let obj = locks.heap().alloc().unwrap();

    assert_eq!(
        locks.pre_inflate(obj).err(),
        Some(SyncError::MonitorIndexExhausted)
    );
    assert_eq!(
        locks.inflated_count(),
        0,
        "failed inflation left no monitor"
    );

    // Thin locking is untouched by the failed inflation.
    let reg = locks.registry().register().unwrap();
    let t = reg.token();
    locks.lock(obj, t).unwrap();
    locks.unlock(obj, t).unwrap();

    // Budget spent: the same object now inflates and locks fat.
    assert_eq!(locks.pre_inflate(obj), Ok(true));
    assert_eq!(locks.inflated_count(), 1);
    locks.lock(obj, t).unwrap();
    locks.unlock(obj, t).unwrap();
    assert_eq!(plan.fires(InjectionPoint::MonitorAllocate), 1);
}

/// All three exhaustion paths in one protocol instance, back to back:
/// errors are reported, nothing corrupts, and after recovery the
/// instance does real multi-threaded work.
#[test]
fn runtime_survives_serial_exhaustion_of_every_resource() {
    let plan = Arc::new(
        FaultPlan::new(55)
            .with_rule(InjectionPoint::HeapAlloc, FaultAction::Exhaust, PPM)
            .with_budget(InjectionPoint::HeapAlloc, 1)
            .with_rule(InjectionPoint::MonitorAllocate, FaultAction::Exhaust, PPM)
            .with_budget(InjectionPoint::MonitorAllocate, 1),
    );
    let heap = Arc::new(Heap::with_capacity(4));
    let locks = Arc::new(
        ThinLocks::new(Arc::clone(&heap), ThreadRegistry::with_max_threads(2))
            .with_fault_injector(plan),
    );

    // Exhaust, in turn: heap (injected), monitors (injected), threads (real).
    assert_eq!(locks.heap().alloc().err(), Some(SyncError::HeapFull));
    let obj = locks.heap().alloc().unwrap();
    assert_eq!(
        locks.pre_inflate(obj).err(),
        Some(SyncError::MonitorIndexExhausted)
    );
    let r1 = locks.registry().register().unwrap();
    let r2 = locks.registry().register().unwrap();
    assert_eq!(
        locks.registry().register().err(),
        Some(SyncError::ThreadIndexExhausted)
    );
    drop(r2);

    // Recovery: two threads contend on the once-refused object hard
    // enough to inflate it for real.
    let t1 = r1.token();
    let worker_locks = Arc::clone(&locks);
    let worker = std::thread::spawn(move || {
        let reg = worker_locks.registry().register().unwrap();
        let t = reg.token();
        for _ in 0..200 {
            worker_locks.lock(obj, t).unwrap();
            worker_locks.unlock(obj, t).unwrap();
        }
    });
    for _ in 0..200 {
        locks.lock(obj, t1).unwrap();
        locks.unlock(obj, t1).unwrap();
    }
    worker.join().unwrap();
    assert_eq!(locks.owner_of(obj), None);
}

/// CJM's recycling pool, genuinely full (bound 1, slot held by another
/// object): the acquire path that must inflate surfaces
/// [`SyncError::MonitorIndexExhausted`] instead of blocking or
/// panicking, thin locking keeps working throughout, and deflating the
/// slot's current tenant restores full service.
#[test]
fn cjm_tiny_pool_exhaustion_errors_then_recycles() {
    let heap = Arc::new(Heap::with_capacity(4));
    let locks = CjmLocks::with_monitor_bound(Arc::clone(&heap), ThreadRegistry::new(), 1);
    let reg = locks.registry().register().unwrap();
    let t = reg.token();
    let a = heap.alloc().unwrap();
    let b = heap.alloc().unwrap();

    // Occupy the single slot: `a` inflates via wait and stays inflated
    // while locked.
    locks.lock(a, t).unwrap();
    assert_eq!(
        locks.wait(a, t, Some(Duration::from_millis(1))),
        Ok(thinlock_runtime::protocol::WaitOutcome::TimedOut)
    );
    assert!(locks.lock_word(a).is_fat());

    // Pool full: `b` cannot inflate — the error is surfaced, not a hang.
    locks.lock(b, t).unwrap();
    assert_eq!(
        locks.wait(b, t, Some(Duration::from_millis(1))),
        Err(SyncError::MonitorIndexExhausted)
    );
    assert_eq!(locks.notify(b, t), Err(SyncError::MonitorIndexExhausted));
    assert_eq!(
        locks.pre_inflate(heap.alloc().unwrap()),
        Err(SyncError::MonitorIndexExhausted)
    );

    // Thin locking on `b` is unimpaired by the refused inflations.
    assert!(locks.lock_word(b).is_thin_shape());
    locks.unlock(b, t).unwrap();
    for _ in 0..10 {
        locks.lock(b, t).unwrap();
        locks.unlock(b, t).unwrap();
    }

    // Quiet release of `a` deflates and recycles the slot; `b` can now
    // inflate for real.
    locks.unlock(a, t).unwrap();
    assert!(locks.lock_word(a).is_unlocked(), "quiet release deflated");
    assert!(locks.deflation_count() >= 1);
    locks.lock(b, t).unwrap();
    assert_eq!(
        locks.wait(b, t, Some(Duration::from_millis(1))),
        Ok(thinlock_runtime::protocol::WaitOutcome::TimedOut)
    );
    locks.unlock(b, t).unwrap();
}

/// Contended acquisition under a full pool must *not* fail: contention
/// inflation tolerates `MonitorIndexExhausted` (contenders keep
/// spinning on the thin word), so the lock still changes hands and
/// mutual exclusion holds with zero pool slots available.
#[test]
fn cjm_contention_survives_with_zero_pool_slots() {
    let heap = Arc::new(Heap::with_capacity(2));
    let locks = Arc::new(CjmLocks::with_monitor_bound(
        Arc::clone(&heap),
        ThreadRegistry::new(),
        0,
    ));
    let obj = heap.alloc().unwrap();
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..3 {
        let locks = Arc::clone(&locks);
        let counter = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            let reg = locks.registry().register().unwrap();
            let t = reg.token();
            for _ in 0..200 {
                locks.lock(obj, t).unwrap();
                let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                std::hint::spin_loop();
                counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                locks.unlock(obj, t).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 600);
    assert_eq!(locks.inflation_count(), 0, "nothing to inflate with");
    let reg = locks.registry().register().unwrap();
    assert!(!locks.holds_lock(obj, reg.token()));
}
