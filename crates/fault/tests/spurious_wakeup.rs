//! Property tests for timed waiting under injected spurious wakeups
//! (satellite: `Parker::park_timeout` discipline).
//!
//! A spurious wakeup is modeled as the parker returning without a
//! permit ([`FaultAction::SpuriousWake`] skips the park). The
//! properties: a timed `wait` still honors its deadline — it returns
//! `TimedOut` no earlier than the timeout, at any injection rate — and
//! the waiter re-acquires the monitor at *exactly* its entry nesting
//! depth, never one level off.

use std::sync::Arc;
use std::time::{Duration, Instant};

use thinlock::ThinLocks;
use thinlock_fault::{FaultPlan, PPM};
use thinlock_runtime::error::SyncError;
use thinlock_runtime::fault::{FaultAction, InjectionPoint};
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::Parker;

/// The raw primitive honors its timeout with no permit outstanding.
#[test]
fn park_timeout_expires_without_permit() {
    let parker = Parker::new();
    let timeout = Duration::from_millis(25);
    let start = Instant::now();
    assert!(!parker.park_timeout(timeout), "no permit: must time out");
    assert!(
        start.elapsed() >= timeout,
        "woke early: {:?}",
        start.elapsed()
    );
}

/// With a permit already available, the park returns true immediately.
#[test]
fn park_timeout_consumes_existing_permit() {
    let parker = Parker::new();
    parker.unpark();
    let start = Instant::now();
    assert!(parker.park_timeout(Duration::from_secs(5)));
    assert!(start.elapsed() < Duration::from_secs(1));
}

fn faulted_locks(rate_ppm: u32, seed: u64) -> (ThinLocks, Arc<FaultPlan>) {
    let plan = Arc::new(FaultPlan::new(seed).with_rule(
        InjectionPoint::WaitPark,
        FaultAction::SpuriousWake,
        rate_ppm,
    ));
    let locks = ThinLocks::with_capacity(2).with_fault_injector(plan.clone());
    (locks, plan)
}

/// The property, swept over injection rates × nesting depths: a timed
/// wait with no notifier in sight returns `TimedOut`, not before its
/// deadline, and restores the exact nesting depth.
#[test]
fn timed_wait_respects_deadline_and_depth_under_spurious_wakeups() {
    for (rate, seed) in [(0, 1u64), (3 * PPM / 10, 2), (PPM, 3)] {
        for depth in 1..=4usize {
            let (locks, plan) = faulted_locks(rate, seed ^ (depth as u64) << 32);
            let obj = locks.heap().alloc().unwrap();
            let reg = locks.registry().register().unwrap();
            let t = reg.token();

            for _ in 0..depth {
                locks.lock(obj, t).unwrap();
            }
            let timeout = Duration::from_millis(30);
            let start = Instant::now();
            let outcome = locks.wait(obj, t, Some(timeout)).unwrap();
            let elapsed = start.elapsed();
            assert_eq!(
                outcome,
                WaitOutcome::TimedOut,
                "rate {rate}: nobody notifies, so the wait must time out"
            );
            assert!(
                elapsed >= timeout,
                "rate {rate}, depth {depth}: woke {elapsed:?} before the {timeout:?} deadline"
            );

            // Exact depth restoration: `depth` unlocks succeed, one
            // more is rejected.
            assert!(locks.holds_lock(obj, t));
            for level in 0..depth {
                locks
                    .unlock(obj, t)
                    .unwrap_or_else(|e| panic!("unlock {level} of {depth} failed: {e}"));
            }
            let extra = locks.unlock(obj, t);
            assert!(
                matches!(extra, Err(SyncError::NotOwner | SyncError::NotLocked)),
                "rate {rate}, depth {depth}: wait over-restored the nesting depth ({extra:?})"
            );

            if rate == PPM {
                assert!(
                    plan.fires(InjectionPoint::WaitPark) > 0,
                    "full-rate plan must actually have injected wakeups"
                );
            }
        }
    }
}

/// Even with every park skipped (rate 1.0), a notification still gets
/// through: spurious wakeups degrade the wait into polling, never into
/// a lost wakeup or a phantom notification.
#[test]
fn notification_is_delivered_through_full_spurious_interference() {
    let (locks, _plan) = faulted_locks(PPM, 77);
    let locks = Arc::new(locks);
    let obj = locks.heap().alloc().unwrap();

    let waiter_locks = Arc::clone(&locks);
    let waiter = std::thread::spawn(move || {
        let reg = waiter_locks.registry().register().unwrap();
        let t = reg.token();
        waiter_locks.lock(obj, t).unwrap();
        let outcome = waiter_locks
            .wait(obj, t, Some(Duration::from_secs(10)))
            .unwrap();
        waiter_locks.unlock(obj, t).unwrap();
        outcome
    });

    // Wait until the waiter has released the monitor into its wait.
    while locks.owner_of(obj).is_some() || locks.inflated_count() == 0 {
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(10));

    let reg = locks.registry().register().unwrap();
    let t = reg.token();
    locks.lock(obj, t).unwrap();
    locks.notify(obj, t).unwrap();
    locks.unlock(obj, t).unwrap();

    assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified);
}
