//! End-to-end crash-matrix slice against the real `chaos-agent`
//! binary: an agent armed with `--abort-at` must be observed dying
//! mid-protocol, leave no torn artifact, and converge clean on the
//! seeded disarmed retry. The full backend × point matrix runs from
//! `scripts/supervise.sh --full`; this test keeps a representative
//! slice in `cargo test` (one cell per backend, two extra points on
//! thin) so regressions surface without shell tooling.

use std::path::PathBuf;
use std::time::Duration;

use thinlock::BackendChoice;
use thinlock_fault::supervise::{crash_matrix, supervise, AgentSpec, Outcome, SupervisorConfig};
use thinlock_obs::parse::parse;
use thinlock_runtime::fault::InjectionPoint;

fn agent_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_chaos-agent"))
}

fn cfg(seed: u64) -> SupervisorConfig {
    SupervisorConfig {
        seed,
        // Generous budgets: the container may be single-CPU and the
        // release agent is built on demand.
        deadline: Duration::from_secs(60),
        heartbeat_grace: Duration::from_secs(30),
        max_retries: 1,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        quorum_percent: 100,
    }
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thinlock-matrix-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn matrix_slice_passes_on_every_backend() {
    let dir = workdir("slice");
    let report = crash_matrix(
        &cfg(1001),
        &agent_bin(),
        &dir,
        &[
            BackendChoice::Thin,
            BackendChoice::Tasuki,
            BackendChoice::Cjm,
        ],
        &[InjectionPoint::LockFastCas],
    );
    assert_eq!(report.cells.len(), 3);
    assert!(
        report.failures().is_empty(),
        "matrix slice failed: {}",
        report.to_json()
    );
    let doc = parse(&report.to_json()).expect("matrix report is valid JSON");
    assert_eq!(doc.get("pass").and_then(|v| v.as_bool()), Some(true));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn matrix_covers_slow_path_points_on_thin() {
    let dir = workdir("points");
    let report = crash_matrix(
        &cfg(2002),
        &agent_bin(),
        &dir,
        &[BackendChoice::Thin],
        &[InjectionPoint::Inflate, InjectionPoint::UnlockStore],
    );
    assert!(
        report.failures().is_empty(),
        "thin slow-path cells failed: {}",
        report.to_json()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn matrix_is_deterministic_given_the_supervisor_seed() {
    let dir = workdir("det");
    let run = || {
        crash_matrix(
            &cfg(3003),
            &agent_bin(),
            &dir,
            &[BackendChoice::Cjm],
            &[InjectionPoint::MonitorAllocate],
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.cells.len(), 1);
    assert_eq!(a.cells[0].crash_seed, b.cells[0].crash_seed);
    assert_eq!(a.cells[0].probes, b.cells[0].probes);
    assert_eq!(a.cells[0].pass(), b.cells[0].pass());
    assert!(a.failures().is_empty(), "{}", a.to_json());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The supervisor end-to-end over real agents: one is armed to abort on
/// its first attempt (crash observed), all converge after retries, the
/// degradation report carries the full history.
#[test]
fn supervise_recovers_real_aborting_agent() {
    let agent = agent_bin();
    let mk = |id: &str, extra: Vec<String>| AgentSpec {
        id: id.to_string(),
        program: agent.clone(),
        args: vec![
            "--backend".into(),
            "thin".into(),
            "--seed".into(),
            "{seed}".into(),
            "--ops".into(),
            "40".into(),
        ],
        first_attempt_extra: extra,
    };
    let specs = vec![
        mk("steady", Vec::new()),
        mk("armed", vec!["--abort-at".into(), "lock-fast-cas".into()]),
    ];
    let report = supervise(&cfg(4004), &specs);
    assert!(report.quorum_met(), "{}", report.to_json());
    let steady = &report.agents[0];
    assert_eq!(steady.final_outcome(), Outcome::Clean);
    assert_eq!(steady.attempts.len(), 1);
    assert!(
        steady.attempts[0].heartbeats >= 1,
        "agent heartbeat observed"
    );
    let armed = &report.agents[1];
    assert_eq!(armed.attempts[0].outcome, Outcome::Crash);
    assert_eq!(
        armed.attempts[0].exit_code, None,
        "abort dies by signal, not exit code"
    );
    assert_eq!(armed.final_outcome(), Outcome::Clean);
    assert_eq!(armed.backoffs_ns.len(), 1);
}
