//! End-to-end orphaned-lock recovery: a registration dropped while its
//! thread owns locks must leave the runtime fully usable, and — the
//! ABA-critical property — a *reused* thread index must be able to
//! acquire an object its previous holder orphaned.

use std::sync::Arc;

use thinlock::ThinLocks;
use thinlock_fault::FaultPlan;
use thinlock_runtime::error::SyncError;
use thinlock_runtime::fault::{FaultAction, InjectionPoint};
use thinlock_runtime::heap::Heap;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_runtime::registry::ThreadRegistry;

/// The acceptance scenario: with a single-index registry, the next
/// registration is guaranteed to reuse the dead thread's index, and it
/// must find the orphaned object unlocked — proving the sweep ran
/// *before* the index went back into circulation (otherwise the reused
/// index would appear to already own the orphan: thin-lock ABA).
#[test]
fn reused_thread_index_can_acquire_previously_orphaned_object() {
    let heap = Arc::new(Heap::with_capacity(4));
    let registry = ThreadRegistry::with_max_threads(1);
    let locks = ThinLocks::new(Arc::clone(&heap), registry).with_orphan_recovery();
    let obj = heap.alloc().unwrap();

    let reg = locks.registry().register().unwrap();
    let old = reg.token();
    locks.lock(obj, old).unwrap();
    locks.lock(obj, old).unwrap(); // nested: count > 1 must also be swept
    assert_eq!(locks.owner_of(obj), Some(old.index()));
    drop(reg); // dies owning the lock

    assert_eq!(locks.owner_of(obj), None, "sweep cleared the orphan");

    let reg = locks.registry().register().unwrap();
    let new = reg.token();
    assert_eq!(
        new.index(),
        old.index(),
        "single-index registry must recycle the dead index"
    );
    locks.lock(obj, new).unwrap();
    assert!(locks.holds_lock(obj, new));
    locks.unlock(obj, new).unwrap();
    assert_eq!(locks.owner_of(obj), None);
}

/// Orphan recovery across inflation: a thread dies owning a fat lock,
/// and a blocked waiter (a different thread) gets the monitor.
#[test]
fn blocked_waiter_survives_owner_death_on_fat_lock() {
    let locks = Arc::new(ThinLocks::with_capacity(2).with_orphan_recovery());
    let obj = locks.heap().alloc().unwrap();
    locks.pre_inflate(obj).unwrap();

    let reg_owner = locks.registry().register().unwrap();
    let owner = reg_owner.token();
    locks.lock(obj, owner).unwrap();

    let waiter_locks = Arc::clone(&locks);
    let waiter = std::thread::spawn(move || {
        let reg = waiter_locks.registry().register().unwrap();
        let t = reg.token();
        waiter_locks.lock(obj, t).unwrap();
        let got = waiter_locks.holds_lock(obj, t);
        waiter_locks.unlock(obj, t).unwrap();
        got
    });

    // Give the waiter time to enqueue, then die owning the monitor.
    std::thread::sleep(std::time::Duration::from_millis(20));
    drop(reg_owner);

    assert!(waiter.join().unwrap(), "waiter acquired after owner death");
    assert_eq!(locks.owner_of(obj), None);
}

/// The sweep honors the `RegistryRelease` injection point (widening the
/// death-to-recycle window) and still recovers.
#[test]
fn sweep_recovers_under_release_injection() {
    let plan = Arc::new(FaultPlan::new(11).with_rule(
        InjectionPoint::RegistryRelease,
        FaultAction::Yield,
        thinlock_fault::PPM,
    ));
    let locks = ThinLocks::with_capacity(2)
        .with_fault_injector(plan.clone())
        .with_orphan_recovery();
    let obj = locks.heap().alloc().unwrap();

    let reg = locks.registry().register().unwrap();
    locks.lock(obj, reg.token()).unwrap();
    drop(reg);

    assert_eq!(locks.owner_of(obj), None);
    assert!(plan.fires(InjectionPoint::RegistryRelease) > 0);

    let reg = locks.registry().register().unwrap();
    assert!(locks.try_lock(obj, reg.token()).unwrap());
    locks.unlock(obj, reg.token()).unwrap();
}

/// Without orphan recovery, the hazard the sweep exists to prevent is
/// directly observable: the index recycles with the lock word still
/// carrying it, so a brand-new thread is mistaken for the dead owner
/// (thin-lock ABA) and "inherits" a lock it never took.
#[test]
fn without_recovery_a_recycled_index_inherits_the_orphan() {
    let locks = ThinLocks::with_capacity(2);
    let obj = locks.heap().alloc().unwrap();

    let reg = locks.registry().register().unwrap();
    let dead = reg.token();
    locks.lock(obj, dead).unwrap();
    drop(reg);

    // Orphan persists: the word still names the dead thread.
    assert_eq!(locks.owner_of(obj), Some(dead.index()));

    let reg = locks.registry().register().unwrap();
    let recycled = reg.token();
    assert_eq!(
        recycled.index(),
        dead.index(),
        "LIFO pool recycles the index"
    );
    assert!(
        locks.holds_lock(obj, recycled),
        "ABA: the fresh thread is mistaken for the dead owner"
    );

    // A thread under a *different* index sees the object as stuck.
    let other = locks.registry().register().unwrap();
    assert_eq!(locks.try_lock(obj, other.token()), Ok(false));
    assert_eq!(locks.unlock(obj, other.token()), Err(SyncError::NotOwner));
}
