//! End-to-end timed/try acquisition: bounded waiting across real
//! threads, deadlock classification, and the background watchdog.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use thinlock::{ThinLocks, Watchdog};
use thinlock_runtime::error::SyncError;
use thinlock_runtime::protocol::SyncProtocol;

/// `lock_deadline` under real cross-thread contention: times out while
/// the owner holds on, succeeds once it lets go.
#[test]
fn deadline_times_out_then_succeeds_across_threads() {
    let locks = Arc::new(ThinLocks::with_capacity(2));
    let obj = locks.heap().alloc().unwrap();
    let (hold_tx, hold_rx) = mpsc::channel::<()>();

    let owner_locks = Arc::clone(&locks);
    let owner = std::thread::spawn(move || {
        let reg = owner_locks.registry().register().unwrap();
        owner_locks.lock(obj, reg.token()).unwrap();
        hold_rx.recv().unwrap(); // hold until told to release
        owner_locks.unlock(obj, reg.token()).unwrap();
    });

    let reg = locks.registry().register().unwrap();
    let t = reg.token();
    // Wait for the owner to actually take the lock.
    while locks.owner_of(obj).is_none() {
        std::thread::yield_now();
    }

    let start = Instant::now();
    let timeout = Duration::from_millis(30);
    assert_eq!(
        locks.lock_deadline(obj, t, timeout),
        Err(SyncError::Timeout)
    );
    assert!(
        start.elapsed() >= timeout,
        "timed out early: {:?}",
        start.elapsed()
    );

    hold_tx.send(()).unwrap();
    assert_eq!(
        locks.lock_deadline(obj, t, Duration::from_secs(5)),
        Ok(()),
        "acquisition succeeds once the owner releases"
    );
    locks.unlock(obj, t).unwrap();
    owner.join().unwrap();
}

/// `try_lock` never blocks: contended answers come back immediately.
#[test]
fn try_lock_answers_immediately_under_contention() {
    let locks = Arc::new(ThinLocks::with_capacity(2));
    let obj = locks.heap().alloc().unwrap();
    let (done_tx, done_rx) = mpsc::channel::<()>();

    let owner_locks = Arc::clone(&locks);
    let owner = std::thread::spawn(move || {
        let reg = owner_locks.registry().register().unwrap();
        owner_locks.lock(obj, reg.token()).unwrap();
        done_rx.recv().unwrap();
        owner_locks.unlock(obj, reg.token()).unwrap();
    });
    while locks.owner_of(obj).is_none() {
        std::thread::yield_now();
    }

    let reg = locks.registry().register().unwrap();
    let start = Instant::now();
    assert_eq!(locks.try_lock(obj, reg.token()), Ok(false));
    assert!(
        start.elapsed() < Duration::from_millis(250),
        "try_lock blocked: {:?}",
        start.elapsed()
    );
    done_tx.send(()).unwrap();
    owner.join().unwrap();
}

/// A genuine two-thread cycle (A holds X wants Y, B holds Y wants X):
/// at least one timed acquirer gets the deadlock classification rather
/// than a bare timeout, and after both back out the objects are free.
#[test]
fn cross_lock_cycle_is_classified_as_deadlock() {
    let locks = Arc::new(ThinLocks::with_capacity(4));
    let x = locks.heap().alloc().unwrap();
    let y = locks.heap().alloc().unwrap();

    // Staggered deadlines make detection deterministic: A expires
    // first, while B is still solidly mid-cycle, so A's double-scan
    // confirm must see the cycle; B then acquires once A backs out.
    let spawn = |mine: _, theirs: _, timeout: Duration| {
        let locks = Arc::clone(&locks);
        std::thread::spawn(move || {
            let reg = locks.registry().register().unwrap();
            let t = reg.token();
            locks.lock(mine, t).unwrap();
            // Rendezvous: wait until the partner holds its lock.
            while locks.owner_of(theirs).is_none() {
                std::thread::yield_now();
            }
            let r = locks.lock_deadline(theirs, t, timeout);
            if r.is_ok() {
                locks.unlock(theirs, t).unwrap();
            }
            locks.unlock(mine, t).unwrap();
            r
        })
    };
    let a = spawn(x, y, Duration::from_millis(400));
    let b = spawn(y, x, Duration::from_secs(10));
    let (ra, rb) = (a.join().unwrap(), b.join().unwrap());

    assert_eq!(
        ra,
        Err(SyncError::DeadlockDetected),
        "the first deadline to expire classifies the cycle"
    );
    assert_eq!(rb, Ok(()), "the survivor acquires after the backout");
    assert_eq!(locks.owner_of(x), None);
    assert_eq!(locks.owner_of(y), None);
}

/// The background watchdog spots the same cycle without any timed
/// acquirer: two threads block in plain `lock` and the scanner reports.
#[test]
fn watchdog_reports_cycle_between_untimed_lockers() {
    let locks = Arc::new(ThinLocks::with_capacity(4));
    let x = locks.heap().alloc().unwrap();
    let y = locks.heap().alloc().unwrap();
    let watchdog = Watchdog::spawn(Arc::clone(&locks), Duration::from_millis(5));

    let spawn = |mine: _, theirs: _| {
        let locks = Arc::clone(&locks);
        std::thread::spawn(move || {
            let reg = locks.registry().register().unwrap();
            let t = reg.token();
            locks.lock(mine, t).unwrap();
            while locks.owner_of(theirs).is_none() {
                std::thread::yield_now();
            }
            // Bounded and short, so the test unwinds quickly once the
            // watchdog has had many scan periods to spot the cycle.
            let r = locks.lock_deadline(theirs, t, Duration::from_millis(500));
            if r.is_ok() {
                locks.unlock(theirs, t).unwrap();
            }
            locks.unlock(mine, t).unwrap();
        })
    };
    let a = spawn(x, y);
    let b = spawn(y, x);

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reports = watchdog.reports();
        if let Some(report) = reports.first() {
            assert_eq!(report.threads.len(), 2, "two-thread cycle: {report}");
            break;
        }
        assert!(Instant::now() < deadline, "watchdog never reported");
        std::thread::sleep(Duration::from_millis(2));
    }

    a.join().unwrap();
    b.join().unwrap();
    drop(watchdog);
}

/// Zero timeout on a free lock still acquires (acquisition preferred
/// over punctuality), and on a held lock returns promptly.
#[test]
fn zero_timeout_semantics() {
    let locks = ThinLocks::with_capacity(2);
    let obj = locks.heap().alloc().unwrap();
    let reg = locks.registry().register().unwrap();
    let t = reg.token();

    assert_eq!(locks.lock_deadline(obj, t, Duration::ZERO), Ok(()));
    locks.unlock(obj, t).unwrap();
}
