//! Supervisor unit tests against *mock* agents — small `/bin/sh`
//! scripts that hang, exit nonzero, or emit malformed heartbeat JSON —
//! covering the deadline-kill, retry-with-backoff, and quorum
//! degradation paths without the cost of real chaos schedules.

#![cfg(unix)]

use std::path::PathBuf;
use std::time::Duration;

use thinlock_fault::supervise::{supervise, AgentSpec, Outcome, SupervisorConfig};
use thinlock_obs::parse::parse;

fn sh(id: &str, script: &str) -> AgentSpec {
    AgentSpec {
        id: id.to_string(),
        program: PathBuf::from("/bin/sh"),
        args: vec!["-c".to_string(), script.to_string()],
        first_attempt_extra: Vec::new(),
    }
}

fn quick_cfg() -> SupervisorConfig {
    SupervisorConfig {
        seed: 11,
        deadline: Duration::from_secs(10),
        heartbeat_grace: Duration::from_secs(10),
        max_retries: 0,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
        quorum_percent: 100,
    }
}

#[test]
fn clean_exit_with_result_line_is_clean() {
    let spec = sh(
        "ok",
        r#"echo '{"type":"hb","seq":1}'; echo '{"type":"result","ok":true}'; exit 0"#,
    );
    let report = supervise(&quick_cfg(), &[spec]);
    let agent = &report.agents[0];
    assert_eq!(agent.final_outcome(), Outcome::Clean);
    assert_eq!(agent.attempts.len(), 1);
    assert_eq!(agent.attempts[0].heartbeats, 1);
    assert!(!agent.attempts[0].killed);
    assert!(report.quorum_met());
}

#[test]
fn hang_past_deadline_is_killed_and_timed_out() {
    let mut cfg = quick_cfg();
    cfg.deadline = Duration::from_millis(400);
    // Heartbeats keep flowing, so only the wall-clock deadline can fire.
    let spec = sh(
        "hang",
        r#"i=0; while true; do i=$((i+1)); echo "{\"type\":\"hb\",\"seq\":$i}"; sleep 0.05; done"#,
    );
    let report = supervise(&cfg, &[spec]);
    let attempt = &report.agents[0].attempts[0];
    assert_eq!(attempt.outcome, Outcome::Timeout);
    assert!(attempt.killed, "supervisor must have killed the straggler");
    assert!(attempt.heartbeats >= 1, "it was alive, just endless");
    assert!(!report.quorum_met());
}

#[test]
fn heartbeat_silence_past_grace_is_killed_and_timed_out() {
    let mut cfg = quick_cfg();
    cfg.heartbeat_grace = Duration::from_millis(300);
    // One heartbeat, then silence far longer than the grace window —
    // the deadline (10s) never comes into play.
    let spec = sh("silent", r#"echo '{"type":"hb","seq":1}'; sleep 30"#);
    let report = supervise(&cfg, &[spec]);
    let attempt = &report.agents[0].attempts[0];
    assert_eq!(attempt.outcome, Outcome::Timeout);
    assert!(attempt.killed);
    assert!(
        attempt.duration < Duration::from_secs(8),
        "killed on staleness, not deadline: {:?}",
        attempt.duration
    );
}

#[test]
fn malformed_heartbeats_are_tolerated_and_counted() {
    let spec = sh(
        "garbled",
        r#"echo 'not json at all'; echo '{"type":"hb","seq":1}'; echo '{broken'; echo '{"type":"result","ok":true}'; exit 0"#,
    );
    let report = supervise(&quick_cfg(), &[spec]);
    let attempt = &report.agents[0].attempts[0];
    assert_eq!(
        attempt.outcome,
        Outcome::Clean,
        "garbage does not kill a run"
    );
    assert_eq!(attempt.malformed_lines, 2);
    assert_eq!(attempt.heartbeats, 1);
}

#[test]
fn exit_two_and_ok_false_classify_as_oracle_violation() {
    let by_code = sh("div-code", r#"exit 2"#);
    let by_line = sh(
        "div-line",
        r#"echo '{"type":"result","ok":false,"error":"divergence"}'; exit 1"#,
    );
    let report = supervise(&quick_cfg(), &[by_code, by_line]);
    assert_eq!(report.agents[0].final_outcome(), Outcome::OracleViolation);
    assert_eq!(report.agents[1].final_outcome(), Outcome::OracleViolation);
}

#[test]
fn fail_once_then_succeed_exercises_seeded_retry_backoff() {
    let dir = std::env::temp_dir().join(format!("thinlock-sup-mock-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |marker: &str| {
        let marker = dir.join(marker);
        let script = format!(
            r#"if [ -f {m} ]; then echo '{{"type":"result","ok":true}}'; exit 0; else touch {m}; exit 3; fi"#,
            m = marker.display()
        );
        let mut cfg = quick_cfg();
        cfg.max_retries = 2;
        supervise(&cfg, &[sh("flaky", &script)])
    };
    let a = run("first.marker");
    let agent = &a.agents[0];
    assert_eq!(agent.attempts.len(), 2, "crash, then clean retry");
    assert_eq!(agent.attempts[0].outcome, Outcome::Crash);
    assert_eq!(agent.attempts[1].outcome, Outcome::Clean);
    assert_eq!(agent.final_outcome(), Outcome::Clean);
    assert_eq!(agent.backoffs_ns.len(), 1, "one backoff slept");
    assert!(agent.backoffs_ns[0] > 0);

    // Determinism: the same supervisor seed re-derives the identical
    // agent seed and the identical backoff schedule.
    let b = run("second.marker");
    assert_eq!(a.agents[0].seed, b.agents[0].seed);
    assert_eq!(a.agents[0].backoffs_ns, b.agents[0].backoffs_ns);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn retries_exhausted_keeps_the_failure() {
    let mut cfg = quick_cfg();
    cfg.max_retries = 2;
    let report = supervise(&cfg, &[sh("doomed", "exit 7")]);
    let agent = &report.agents[0];
    assert_eq!(agent.attempts.len(), 3, "initial + 2 retries");
    assert_eq!(agent.final_outcome(), Outcome::Crash);
    assert_eq!(agent.backoffs_ns.len(), 2);
    assert!(!report.quorum_met());
}

#[test]
fn quorum_degradation_succeeds_with_partial_results() {
    let specs = vec![
        sh("ok-1", r#"echo '{"type":"result","ok":true}'; exit 0"#),
        sh("ok-2", r#"echo '{"type":"result","ok":true}'; exit 0"#),
        sh("dead", "exit 9"),
    ];
    let mut cfg = quick_cfg();
    cfg.quorum_percent = 66;
    let report = supervise(&cfg, &specs);
    assert_eq!(report.clean_agents(), 2);
    assert!(report.quorum_met(), "2/3 clean meets a 66% quorum");

    cfg.quorum_percent = 100;
    let strict = supervise(&cfg, &specs);
    assert!(!strict.quorum_met(), "2/3 clean misses a 100% quorum");
}

#[test]
fn first_attempt_extra_args_are_dropped_on_retry() {
    // The extra arg makes the first attempt exit nonzero; the retry,
    // without it, succeeds — the exact shape of a crash-matrix cell.
    let spec = AgentSpec {
        id: "armed".to_string(),
        program: PathBuf::from("/bin/sh"),
        args: vec![
            "-c".to_string(),
            r#"if [ "$0" = "armed" ]; then exit 6; fi; echo '{"type":"result","ok":true}'; exit 0"#
                .to_string(),
        ],
        first_attempt_extra: vec!["armed".to_string()],
    };
    let mut cfg = quick_cfg();
    cfg.max_retries = 1;
    let report = supervise(&cfg, &[spec]);
    let agent = &report.agents[0];
    assert_eq!(agent.attempts[0].outcome, Outcome::Crash);
    assert_eq!(agent.attempts[1].outcome, Outcome::Clean);
}

#[test]
fn degradation_report_serializes_to_valid_json() {
    let mut cfg = quick_cfg();
    cfg.max_retries = 1;
    let report = supervise(
        &cfg,
        &[
            sh("ok", r#"echo '{"type":"result","ok":true}'; exit 0"#),
            sh("dead", "exit 5"),
        ],
    );
    let doc = parse(&report.to_json()).expect("report is valid JSON");
    assert_eq!(
        doc.get("type").and_then(|v| v.as_str()),
        Some("degradation-report")
    );
    assert_eq!(doc.get("agents_total").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(doc.get("agents_clean").and_then(|v| v.as_u64()), Some(1));
    let agents = doc.get("agents").and_then(|v| v.as_array()).unwrap();
    assert_eq!(agents.len(), 2);
    assert_eq!(
        agents[1].get("final").and_then(|v| v.as_str()),
        Some("crash")
    );
}

#[test]
fn missing_program_is_a_crash_not_a_panic() {
    let spec = AgentSpec {
        id: "ghost".to_string(),
        program: PathBuf::from("/nonexistent/thinlock-ghost-agent"),
        args: Vec::new(),
        first_attempt_extra: Vec::new(),
    };
    let report = supervise(&quick_cfg(), &[spec]);
    assert_eq!(report.agents[0].final_outcome(), Outcome::Crash);
}
