//! Seeded, deterministic fault plans.
//!
//! A [`FaultPlan`] is a [`FaultInjector`] built from per-point *rules*:
//! each [`InjectionPoint`] carries an action to inject, a firing
//! probability, and an optional budget capping how many times it may
//! fire. Decisions are drawn from one seeded in-repo PRNG, so a plan
//! constructed from the same seed issues the same decision sequence —
//! the property the chaos suite relies on to replay a failing schedule
//! from nothing but its seed.
//!
//! Plans are *probabilistically terminating* by construction: any rule
//! with probability below 1 eventually answers
//! [`FaultAction::Proceed`], so retry loops steered by a plan make
//! progress with probability one, and budgets give a hard cap where
//! even that is too weak (e.g. forced exhaustion, which callers treat
//! as a terminal error).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use thinlock_runtime::fault::{FaultAction, FaultInjector, InjectionPoint};
use thinlock_runtime::prng::Xorshift128Plus;

/// Number of labeled injection points (the length of
/// [`InjectionPoint::ALL`]).
pub const POINTS: usize = InjectionPoint::ALL.len();

/// Probability scale: a rate of [`PPM`] fires on every consultation.
pub const PPM: u32 = 1_000_000;

/// One injection rule: what to inject at a point, and how often.
#[derive(Debug, Clone, Copy)]
struct Rule {
    action: FaultAction,
    rate_ppm: u32,
}

const NO_RULE: Rule = Rule {
    action: FaultAction::Proceed,
    rate_ppm: 0,
};

/// A deterministic, seeded fault-injection plan.
///
/// # Example
///
/// ```
/// use thinlock_fault::FaultPlan;
/// use thinlock_runtime::fault::{FaultAction, FaultInjector, InjectionPoint};
///
/// // Fail the fast-path CAS once, deterministically.
/// let plan = FaultPlan::new(42)
///     .with_rule(InjectionPoint::LockFastCas, FaultAction::FailCas, thinlock_fault::PPM)
///     .with_budget(InjectionPoint::LockFastCas, 1);
/// assert_eq!(plan.decide(InjectionPoint::LockFastCas), FaultAction::FailCas);
/// assert_eq!(plan.decide(InjectionPoint::LockFastCas), FaultAction::Proceed);
/// assert_eq!(plan.fires(InjectionPoint::LockFastCas), 1);
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    rng: Mutex<Xorshift128Plus>,
    rules: [Rule; POINTS],
    budgets: [AtomicU64; POINTS],
    consults: [AtomicU64; POINTS],
    fired: [AtomicU64; POINTS],
}

impl FaultPlan {
    /// An empty plan (every point proceeds) drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rng: Mutex::new(Xorshift128Plus::seed_from_u64(seed)),
            rules: [NO_RULE; POINTS],
            budgets: std::array::from_fn(|_| AtomicU64::new(u64::MAX)),
            consults: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The action chaos mode injects at `point` — the most disruptive
    /// one that still leaves every schedule able to finish: CAS sites
    /// lose their CAS, park sites wake spuriously, everything else is
    /// descheduled. Exhaustion is deliberately absent (it turns
    /// operations into errors; the exhaustion tests inject it with an
    /// explicit budget instead).
    pub fn natural_action(point: InjectionPoint) -> FaultAction {
        match point {
            InjectionPoint::LockFastCas | InjectionPoint::LockSlowCas => FaultAction::FailCas,
            InjectionPoint::FatPark | InjectionPoint::WaitPark => FaultAction::SpuriousWake,
            _ => FaultAction::Yield,
        }
    }

    /// A plan injecting the [natural](FaultPlan::natural_action) action
    /// at *every* point with probability `rate_ppm` — the all-points
    /// chaos configuration the seeded suite sweeps.
    pub fn chaos(seed: u64, rate_ppm: u32) -> Self {
        let mut plan = Self::new(seed);
        for point in InjectionPoint::ALL {
            plan = plan.with_rule(point, Self::natural_action(point), rate_ppm);
        }
        plan
    }

    /// Arms `point` to [`FaultAction::Abort`] unconditionally: the first
    /// time the protocol consults that point, the process dies there.
    /// The crash-chaos agent layers this over [`FaultPlan::chaos`] to
    /// simulate a worker killed mid-protocol at a chosen step.
    #[must_use]
    pub fn with_abort_at(self, point: InjectionPoint) -> Self {
        self.with_rule(point, FaultAction::Abort, PPM)
    }

    /// Sets the rule for `point`: inject `action` with probability
    /// `rate_ppm` (in parts per million, saturating at [`PPM`] = always).
    #[must_use]
    pub fn with_rule(mut self, point: InjectionPoint, action: FaultAction, rate_ppm: u32) -> Self {
        self.rules[point.index()] = Rule {
            action,
            rate_ppm: rate_ppm.min(PPM),
        };
        self
    }

    /// Caps `point` at firing `budget` times; further consultations
    /// proceed. `u64::MAX` (the default) means unlimited.
    #[must_use]
    pub fn with_budget(self, point: InjectionPoint, budget: u64) -> Self {
        self.budgets[point.index()].store(budget, Ordering::Relaxed);
        self
    }

    /// How many times `point` has been consulted.
    pub fn consults(&self, point: InjectionPoint) -> u64 {
        self.consults[point.index()].load(Ordering::Relaxed)
    }

    /// How many times `point` actually injected its action.
    pub fn fires(&self, point: InjectionPoint) -> u64 {
        self.fired[point.index()].load(Ordering::Relaxed)
    }

    /// Total injections across all points.
    pub fn total_fires(&self) -> u64 {
        InjectionPoint::ALL.iter().map(|p| self.fires(*p)).sum()
    }

    /// Per-point fire counts, indexed like [`InjectionPoint::ALL`].
    pub fn fire_counts(&self) -> [u64; POINTS] {
        std::array::from_fn(|i| self.fired[i].load(Ordering::Relaxed))
    }
}

impl FaultInjector for FaultPlan {
    fn decide(&self, point: InjectionPoint) -> FaultAction {
        let idx = point.index();
        self.consults[idx].fetch_add(1, Ordering::Relaxed);
        let rule = self.rules[idx];
        if rule.rate_ppm == 0 || rule.action == FaultAction::Proceed {
            return FaultAction::Proceed;
        }
        let draw = {
            let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
            rng.next_below(u64::from(PPM)) as u32
        };
        if draw >= rule.rate_ppm {
            return FaultAction::Proceed;
        }
        // Consume budget last so a rate miss never burns it.
        let had_budget = self.budgets[idx]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok();
        if !had_budget {
            return FaultAction::Proceed;
        }
        self.fired[idx].fetch_add(1, Ordering::Relaxed);
        // The Abort contract (see `FaultAction::Abort`): the injector
        // itself kills the process at the consultation point, so every
        // labeled site is abortable without per-site handling.
        if rule.action == FaultAction::Abort {
            std::process::abort();
        }
        rule.action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_proceeds() {
        let plan = FaultPlan::new(7);
        for point in InjectionPoint::ALL {
            assert_eq!(plan.decide(point), FaultAction::Proceed);
        }
        assert_eq!(plan.total_fires(), 0);
        assert_eq!(plan.consults(InjectionPoint::LockFastCas), 1);
    }

    #[test]
    fn same_seed_same_decisions() {
        let mk = || {
            FaultPlan::new(1234).with_rule(InjectionPoint::LockSpin, FaultAction::Yield, PPM / 2)
        };
        let (a, b) = (mk(), mk());
        for _ in 0..200 {
            assert_eq!(
                a.decide(InjectionPoint::LockSpin),
                b.decide(InjectionPoint::LockSpin)
            );
        }
        assert_eq!(
            a.fires(InjectionPoint::LockSpin),
            b.fires(InjectionPoint::LockSpin)
        );
        assert!(
            a.fires(InjectionPoint::LockSpin) > 0,
            "half rate fires in 200 draws"
        );
    }

    #[test]
    fn budget_caps_fires() {
        let plan = FaultPlan::new(5)
            .with_rule(InjectionPoint::HeapAlloc, FaultAction::Exhaust, PPM)
            .with_budget(InjectionPoint::HeapAlloc, 3);
        let mut injected = 0;
        for _ in 0..10 {
            if plan.decide(InjectionPoint::HeapAlloc) == FaultAction::Exhaust {
                injected += 1;
            }
        }
        assert_eq!(injected, 3);
        assert_eq!(plan.fires(InjectionPoint::HeapAlloc), 3);
        assert_eq!(plan.consults(InjectionPoint::HeapAlloc), 10);
    }

    #[test]
    fn chaos_plan_covers_every_point() {
        let plan = FaultPlan::chaos(99, PPM);
        for point in InjectionPoint::ALL {
            let action = plan.decide(point);
            assert_eq!(action, FaultPlan::natural_action(point));
            assert_ne!(action, FaultAction::Proceed);
        }
        assert_eq!(plan.total_fires(), POINTS as u64);
        let counts = plan.fire_counts();
        assert!(counts.iter().all(|&c| c == 1));
    }
}
