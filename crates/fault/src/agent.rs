//! The sacrificial chaos agent: one process, one backend, one seed.
//!
//! The `chaos-agent` binary wraps [`run_schedule`] in the process
//! envelope the crash-chaos supervisor expects:
//!
//! - **Heartbeats.** A monitor thread emits one single-line JSON
//!   heartbeat on stdout every [`AgentConfig::heartbeat`] while the
//!   schedule runs, so the supervisor can distinguish "slow" from
//!   "stuck" without guessing. The stream is framed as `start` →
//!   `hb`\* → `result` (see DESIGN.md §16 for the schema).
//! - **Atomic artifacts.** The converged report is written to
//!   [`AgentConfig::artifact`] via a temp file plus `rename`, so a
//!   crash at *any* instruction can never leave a torn final file —
//!   the property the crash matrix verifies for every backend ×
//!   injection point.
//! - **Crash armament.** The `--abort-at` flag
//!   ([`ChaosConfig::abort_at`](crate::ChaosConfig)) arms
//!   [`FaultPlan::with_abort_at`](crate::FaultPlan::with_abort_at):
//!   the first time the protocol consults that point, the process
//!   dies with `std::process::abort()` mid-critical-section.
//!
//! Exit codes: `0` clean convergence, `2` oracle divergence, anything
//! else (including death by signal) is a crash for the supervisor to
//! classify.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use thinlock::BackendChoice;
use thinlock_obs::json::JsonWriter;
use thinlock_runtime::fault::InjectionPoint;

use crate::chaos::{run_schedule, ChaosConfig, ChaosReport};

/// Exit code for a run whose oracle diverged (kept distinct from the
/// generic `1` so the supervisor can tell "the protocol is wrong" from
/// "the harness fell over").
pub const EXIT_DIVERGED: u8 = 2;

/// Everything one agent process needs, parsed from its command line.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// The chaos schedule to run (seed, backend, shape, fault rate).
    pub chaos: ChaosConfig,
    /// Where to write the converged report atomically; `None` skips the
    /// artifact.
    pub artifact: Option<PathBuf>,
    /// Heartbeat cadence on stdout.
    pub heartbeat: Duration,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            chaos: ChaosConfig {
                seed: 0,
                threads: 3,
                objects: 2,
                ops_per_thread: 96,
                fault_rate_ppm: 200_000,
                kill_thread: false,
                backend: BackendChoice::Thin,
                abort_at: None,
            },
            artifact: None,
            heartbeat: Duration::from_millis(20),
        }
    }
}

impl AgentConfig {
    /// Parses the `chaos-agent` command line.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown flags, missing values, or
    /// unparsable numbers/names.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut cfg = AgentConfig::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{arg} requires a value"))
            };
            match arg.as_str() {
                "--seed" => {
                    cfg.chaos.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?
                }
                "--threads" => {
                    cfg.chaos.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?;
                }
                "--objects" => {
                    cfg.chaos.objects = value()?.parse().map_err(|e| format!("--objects: {e}"))?;
                }
                "--ops" => {
                    cfg.chaos.ops_per_thread =
                        value()?.parse().map_err(|e| format!("--ops: {e}"))?;
                }
                "--rate-ppm" => {
                    cfg.chaos.fault_rate_ppm =
                        value()?.parse().map_err(|e| format!("--rate-ppm: {e}"))?;
                }
                "--kill-thread" => cfg.chaos.kill_thread = true,
                "--backend" => {
                    let name = value()?;
                    cfg.chaos.backend = BackendChoice::from_name(&name)
                        .ok_or_else(|| format!("--backend: unknown backend `{name}`"))?;
                }
                "--abort-at" => {
                    let name = value()?;
                    cfg.chaos.abort_at = Some(
                        InjectionPoint::from_name(&name)
                            .ok_or_else(|| format!("--abort-at: unknown point `{name}`"))?,
                    );
                }
                "--artifact" => cfg.artifact = Some(PathBuf::from(value()?)),
                "--heartbeat-ms" => {
                    cfg.heartbeat = Duration::from_millis(
                        value()?
                            .parse()
                            .map_err(|e| format!("--heartbeat-ms: {e}"))?,
                    );
                }
                other => return Err(format!("unrecognized argument: {other}")),
            }
        }
        Ok(cfg)
    }
}

fn emit(line: &str) {
    // Stdout is the heartbeat channel: one JSON document per line,
    // flushed immediately so the supervisor's staleness clock is honest.
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

fn start_line(cfg: &AgentConfig) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("type", "start");
    w.field_str("backend", cfg.chaos.backend.name());
    w.field_u64("seed", cfg.chaos.seed);
    w.field_u64("pid", u64::from(std::process::id()));
    if let Some(point) = cfg.chaos.abort_at {
        w.field_str("abort_at", point.name());
    }
    w.end_object();
    w.finish()
}

fn heartbeat_line(seq: u64) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("type", "hb");
    w.field_u64("seq", seq);
    w.end_object();
    w.finish()
}

/// The agent's converged-report JSON — also the artifact body, so the
/// supervisor and the crash matrix parse one schema.
pub fn report_json(cfg: &AgentConfig, outcome: &Result<ChaosReport, String>) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("type", "result");
    w.field_str("backend", cfg.chaos.backend.name());
    w.field_u64("seed", cfg.chaos.seed);
    match outcome {
        Ok(report) => {
            w.field_bool("ok", true);
            w.field_u64("ops", report.ops);
            w.field_u64("acquisitions", report.acquisitions);
            w.field_u64("waits", report.waits);
            w.field_u64("waits_refused", report.waits_refused);
            w.field_bool("orphaned", report.orphaned);
            w.field_u64("inflations", report.inflations);
            w.field_u64("deflations", report.deflations);
            w.field_u64("fires", report.total_fires());
        }
        Err(msg) => {
            w.field_bool("ok", false);
            w.field_str("error", msg);
        }
    }
    w.end_object();
    w.finish()
}

/// Writes `body` to `path` atomically: a unique temp file in the same
/// directory, then `rename` — the only durable states are "absent" and
/// "complete", never "torn".
///
/// # Errors
///
/// Propagates any I/O error from the write or the rename.
pub fn write_artifact_atomic(path: &std::path::Path, body: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

/// Runs the agent: heartbeats on stdout, one chaos schedule, an atomic
/// artifact, and the framed `result` line. Returns the process exit
/// code (`0` clean, [`EXIT_DIVERGED`] on oracle divergence).
pub fn run(cfg: &AgentConfig) -> u8 {
    emit(&start_line(cfg));

    let done = Arc::new(AtomicBool::new(false));
    let ticker = {
        let done = Arc::clone(&done);
        let cadence = cfg.heartbeat;
        std::thread::spawn(move || {
            let mut seq = 0u64;
            while !done.load(Ordering::Relaxed) {
                seq += 1;
                emit(&heartbeat_line(seq));
                std::thread::sleep(cadence);
            }
        })
    };

    let outcome = run_schedule(cfg.chaos);
    done.store(true, Ordering::Relaxed);
    let _ = ticker.join();

    let body = report_json(cfg, &outcome);
    if let Some(path) = &cfg.artifact {
        if let Err(e) = write_artifact_atomic(path, &body) {
            eprintln!("chaos-agent: artifact write failed: {e}");
            return 1;
        }
    }
    emit(&body);
    match outcome {
        Ok(_) => 0,
        Err(_) => EXIT_DIVERGED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinlock_obs::parse::parse;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_covers_every_flag() {
        let cfg = AgentConfig::parse(&args(&[
            "--seed",
            "9",
            "--backend",
            "cjm",
            "--threads",
            "2",
            "--objects",
            "3",
            "--ops",
            "17",
            "--rate-ppm",
            "1000",
            "--kill-thread",
            "--abort-at",
            "inflate",
            "--artifact",
            "/tmp/x.json",
            "--heartbeat-ms",
            "5",
        ]))
        .unwrap();
        assert_eq!(cfg.chaos.seed, 9);
        assert_eq!(cfg.chaos.backend, BackendChoice::Cjm);
        assert_eq!(cfg.chaos.threads, 2);
        assert_eq!(cfg.chaos.objects, 3);
        assert_eq!(cfg.chaos.ops_per_thread, 17);
        assert_eq!(cfg.chaos.fault_rate_ppm, 1000);
        assert!(cfg.chaos.kill_thread);
        assert_eq!(cfg.chaos.abort_at, Some(InjectionPoint::Inflate));
        assert_eq!(
            cfg.artifact.as_deref(),
            Some(std::path::Path::new("/tmp/x.json"))
        );
        assert_eq!(cfg.heartbeat, Duration::from_millis(5));
    }

    #[test]
    fn parse_rejects_unknown_flags_and_names() {
        assert!(AgentConfig::parse(&args(&["--bogus"])).is_err());
        assert!(AgentConfig::parse(&args(&["--backend", "nope"])).is_err());
        assert!(AgentConfig::parse(&args(&["--abort-at", "nope"])).is_err());
        assert!(AgentConfig::parse(&args(&["--seed"])).is_err());
    }

    #[test]
    fn report_json_round_trips_through_the_parser() {
        let cfg = AgentConfig::default();
        let ok = report_json(&cfg, &Ok(ChaosReport::default()));
        let doc = parse(&ok).expect("valid JSON");
        assert_eq!(doc.get("type").and_then(|v| v.as_str()), Some("result"));
        assert_eq!(doc.get("ok").and_then(|v| v.as_bool()), Some(true));
        let bad = report_json(&cfg, &Err("seed 7: divergence".to_string()));
        let doc = parse(&bad).expect("valid JSON");
        assert_eq!(doc.get("ok").and_then(|v| v.as_bool()), Some(false));
        assert!(doc.get("error").and_then(|v| v.as_str()).is_some());
    }

    #[test]
    fn artifact_write_is_atomic_by_rename() {
        let dir = std::env::temp_dir().join(format!("thinlock-agent-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_artifact_atomic(&path, "{\"x\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"x\":1}");
        // Overwrite goes through the same rename path.
        write_artifact_atomic(&path, "{\"x\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"x\":2}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_emits_framed_stream_and_artifact() {
        let dir = std::env::temp_dir().join(format!("thinlock-agent-run-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let mut cfg = AgentConfig::default();
        cfg.chaos.ops_per_thread = 8;
        cfg.artifact = Some(path.clone());
        assert_eq!(run(&cfg), 0);
        let body = std::fs::read_to_string(&path).unwrap();
        let doc = parse(&body).expect("artifact is valid JSON");
        assert_eq!(doc.get("ok").and_then(|v| v.as_bool()), Some(true));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
