//! The seeded chaos harness: randomized schedules cross-checked
//! against a `std::sync::Mutex` oracle.
//!
//! [`run_schedule`] builds the protocol selected by
//! [`ChaosConfig::backend`] (any schedulable [`BackendChoice`]) with a
//! [`FaultPlan`] attached, drives it with several threads executing a
//! seed-derived mix of operations (plain/nested acquisition,
//! `try_lock`, `lock_deadline`, timed `wait`), and checks mutual
//! exclusion externally: every object is shadowed by a std `Mutex`
//! whose guard is taken with `try_lock` *immediately after* each
//! protocol acquisition and dropped *immediately before* the matching
//! protocol release. If the protocol ever admits two owners, the
//! oracle `try_lock` fails and the run reports a divergence carrying
//! its seed — which replays the identical decision sequence, because
//! every random choice (per-thread op streams and the fault plan's
//! draws) derives from [`ChaosConfig::seed`].
//!
//! Optionally ([`ChaosConfig::kill_thread`]) one thread dies
//! mid-schedule while owning a lock, exercising the orphan sweep: the
//! run only converges if reclamation returns the object to circulation.
//!
//! Deflation-capable backends get one extra convergence check: the
//! monitor population must respect its bound — the peak never exceeds
//! the object count (one bound monitor per object) and no monitor can
//! be live at the end beyond that same ceiling. Under CJM this is the
//! chaos-side witness for the bounded-pool claim: thousands of faulted
//! inflate/deflate cycles may not leak a single pool slot.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use thinlock::{BackendChoice, BackendSeams};
use thinlock_runtime::backend::SyncBackend;
use thinlock_runtime::error::SyncError;
use thinlock_runtime::fault::InjectionPoint;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::prng::{SplitMix64, Xorshift128Plus};

use crate::plan::{FaultPlan, POINTS};

/// Parameters of one chaos schedule.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Master seed; determines every random choice in the run.
    pub seed: u64,
    /// Worker threads to spawn.
    pub threads: usize,
    /// Objects (and oracle mutexes) the workers contend over.
    pub objects: usize,
    /// Operations each worker executes.
    pub ops_per_thread: usize,
    /// Firing probability handed to [`FaultPlan::chaos`], in parts per
    /// million.
    pub fault_rate_ppm: u32,
    /// When set, worker 0 dies halfway through its schedule while
    /// owning a lock, leaving an orphan for the registry sweep.
    pub kill_thread: bool,
    /// Protocol under test; must be [`BackendChoice::fault_injectable`]
    /// because chaos depends on the fault-injection seam.
    pub backend: BackendChoice,
    /// When set, the plan additionally arms this point with
    /// [`FaultAction::Abort`](thinlock_runtime::fault::FaultAction::Abort):
    /// the first consultation kills the whole process with
    /// `std::process::abort()`. Only meaningful inside a sacrificial
    /// agent process (the crash-chaos supervisor's matrix); never set it
    /// in an in-process harness.
    pub abort_at: Option<InjectionPoint>,
}

impl ChaosConfig {
    /// A small, quick configuration for sweeping many seeds on the
    /// paper's thin-lock protocol.
    pub fn quick(seed: u64) -> Self {
        ChaosConfig::quick_on(seed, BackendChoice::Thin)
    }

    /// [`ChaosConfig::quick`] with the backend chosen explicitly.
    pub fn quick_on(seed: u64, backend: BackendChoice) -> Self {
        ChaosConfig {
            seed,
            threads: 3,
            objects: 4,
            ops_per_thread: 28,
            fault_rate_ppm: 200_000,
            kill_thread: seed.is_multiple_of(4),
            backend,
            abort_at: None,
        }
    }
}

/// What a converged chaos schedule did.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosReport {
    /// Operations completed across all workers.
    pub ops: u64,
    /// Protocol acquisitions that succeeded (and passed the oracle).
    pub acquisitions: u64,
    /// `try_lock` attempts that correctly reported contention.
    pub try_contended: u64,
    /// `lock_deadline` attempts that timed out.
    pub timeouts: u64,
    /// Timed waits performed.
    pub waits: u64,
    /// Timed waits a bounded deflating backend refused with
    /// [`SyncError::MonitorIndexExhausted`] — the pool was transiently
    /// full (deflation frees a slot only *after* the neutral store), the
    /// caller still held the thin lock, and the run degraded gracefully
    /// instead of diverging.
    pub waits_refused: u64,
    /// Whether a worker died owning a lock (and the orphan was swept).
    pub orphaned: bool,
    /// Inflations the backend performed over the run.
    pub inflations: u64,
    /// Deflations the backend performed over the run (0 on the thin
    /// backend, whose inflation is one-way).
    pub deflations: u64,
    /// Peak simultaneous monitor population over the run.
    pub monitors_peak: usize,
    /// Monitors still live when the run converged.
    pub monitors_live: usize,
    /// Per-point fault-injection fire counts, indexed like
    /// [`InjectionPoint::ALL`].
    pub fires: [u64; POINTS],
}

impl ChaosReport {
    /// Total faults injected during the run.
    pub fn total_fires(&self) -> u64 {
        self.fires.iter().sum()
    }

    fn absorb(&mut self, other: &ChaosReport) {
        self.ops += other.ops;
        self.acquisitions += other.acquisitions;
        self.try_contended += other.try_contended;
        self.timeouts += other.timeouts;
        self.waits += other.waits;
        self.waits_refused += other.waits_refused;
        self.orphaned |= other.orphaned;
        self.inflations += other.inflations;
        self.deflations += other.deflations;
        self.monitors_peak = self.monitors_peak.max(other.monitors_peak);
        self.monitors_live = self.monitors_live.max(other.monitors_live);
    }
}

/// Accumulates reports (and a fire-count union) across many seeds so a
/// suite can assert that the whole sweep exercised every injection
/// point even when single runs do not.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosTotals {
    /// Schedules that converged.
    pub runs: u64,
    /// Union of all per-run reports.
    pub report: ChaosReport,
}

impl ChaosTotals {
    /// Folds one converged run into the totals.
    pub fn absorb(&mut self, run: &ChaosReport) {
        self.runs += 1;
        self.report.absorb(run);
        for (sum, f) in self.report.fires.iter_mut().zip(run.fires.iter()) {
            *sum += f;
        }
    }

    /// Points that never fired across the sweep (empty = full catalog
    /// coverage).
    pub fn unfired_points(&self) -> Vec<InjectionPoint> {
        InjectionPoint::ALL
            .into_iter()
            .filter(|p| self.report.fires[p.index()] == 0)
            .collect()
    }
}

/// The oracle mutex carries a counter bumped under each acquisition,
/// giving a second, cumulative consistency check.
type Oracle = Vec<Mutex<u64>>;

struct Shared {
    locks: Arc<dyn SyncBackend + Send + Sync>,
    oracle: Oracle,
    diverged: AtomicBool,
}

/// Runs one seeded schedule. `Ok` carries the converged report; `Err`
/// is a human-readable divergence diagnosis naming the seed.
///
/// # Errors
///
/// Any oracle disagreement (two simultaneous owners, a lock left held
/// at the end, a lost counter increment, a monitor-population bound
/// violation on a deflation-capable backend) or unexpected protocol
/// error.
pub fn run_schedule(cfg: ChaosConfig) -> Result<ChaosReport, String> {
    assert!(cfg.threads >= 1 && cfg.objects >= 1 && cfg.ops_per_thread >= 1);
    assert!(
        cfg.backend.fault_injectable(),
        "chaos needs the fault seam; backend `{}` does not offer it",
        cfg.backend
    );
    assert!(
        !cfg.kill_thread || cfg.backend.orphan_recoverable(),
        "kill_thread needs the exit sweeper; backend `{}` does not offer it",
        cfg.backend
    );
    let mut plan = FaultPlan::chaos(cfg.seed, cfg.fault_rate_ppm);
    if let Some(point) = cfg.abort_at {
        plan = plan.with_abort_at(point);
    }
    let plan = Arc::new(plan);
    let locks = cfg.backend.build_with(
        cfg.objects,
        BackendSeams {
            fault_injector: Some(plan.clone()),
            orphan_recovery: true,
            ..BackendSeams::default()
        },
    );
    let objs: Vec<ObjRef> = (0..cfg.objects)
        .map(|_| locks.heap().alloc().expect("chaos heap sized for objects"))
        .collect();
    let oracle: Oracle = (0..cfg.objects).map(|_| Mutex::new(0)).collect();
    let shared = Arc::new(Shared {
        locks,
        oracle,
        diverged: AtomicBool::new(false),
    });

    // Derive per-worker seeds through SplitMix so neighbouring master
    // seeds do not produce correlated worker streams.
    let mut mix = SplitMix64::new(cfg.seed);
    let worker_seeds: Vec<u64> = (0..cfg.threads).map(|_| mix.next_u64()).collect();

    let mut handles = Vec::with_capacity(cfg.threads);
    for (worker, wseed) in worker_seeds.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        let objs = objs.clone();
        let kill = cfg.kill_thread && worker == 0;
        let ops = cfg.ops_per_thread;
        handles.push(
            std::thread::Builder::new()
                .name(format!("chaos-{worker}"))
                .spawn(move || worker_body(&shared, &objs, wseed, ops, kill))
                .expect("spawn chaos worker"),
        );
    }

    let mut report = ChaosReport::default();
    let mut failure = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(local)) => report.absorb(&local),
            Ok(Err(msg)) => failure = Some(msg),
            Err(_) => failure = Some("worker panicked".to_string()),
        }
    }
    if let Some(msg) = failure {
        return Err(format!("seed {}: {msg}", cfg.seed));
    }

    // Convergence: every lock free (orphans swept), every oracle mutex
    // re-acquirable, and the counters account for every acquisition.
    let mut counted = 0;
    for (i, obj) in objs.iter().enumerate() {
        if let Some(owner) = shared.locks.owner_of(*obj) {
            return Err(format!(
                "seed {}: object {i} still owned by thread {owner} after all workers exited",
                cfg.seed
            ));
        }
        match shared.oracle[i].try_lock() {
            Ok(guard) => counted += *guard,
            Err(_) => {
                return Err(format!(
                    "seed {}: oracle mutex {i} still held after all workers exited",
                    cfg.seed
                ));
            }
        }
    }
    if counted != report.acquisitions {
        return Err(format!(
            "seed {}: oracle counted {counted} critical sections but workers report {}",
            cfg.seed, report.acquisitions
        ));
    }

    // Monitor-population bound: at most one monitor can be bound per
    // object, so neither the peak nor the leftover live population may
    // ever exceed the object count. On CJM a violation here means the
    // pool leaked a slot through a faulted inflate/deflate cycle.
    report.inflations = shared.locks.inflation_count();
    report.deflations = shared.locks.deflation_count();
    report.monitors_peak = shared.locks.monitors_peak();
    report.monitors_live = shared.locks.monitors_live();
    // Tasuki reports cumulative (never-recycled) table length here, so the
    // live-object bound only applies to backends that claim it.
    if cfg.backend.bounded_monitor_population()
        && (report.monitors_peak > cfg.objects || report.monitors_live > cfg.objects)
    {
        return Err(format!(
            "seed {}: monitor population exceeded its bound on `{}`: peak {} live {} over {} objects",
            cfg.seed, cfg.backend, report.monitors_peak, report.monitors_live, cfg.objects
        ));
    }
    report.fires = plan.fire_counts();
    Ok(report)
}

/// Claims the oracle for one critical section: the guard MUST be free
/// the instant the protocol granted us the lock, and the caller holds
/// it until just before the matching protocol release, so any second
/// owner the protocol wrongly admits fails its own claim here.
fn claim_oracle<'a>(
    shared: &'a Shared,
    idx: usize,
    report: &mut ChaosReport,
) -> Result<std::sync::MutexGuard<'a, u64>, String> {
    match shared.oracle[idx].try_lock() {
        Ok(mut guard) => {
            *guard += 1;
            report.acquisitions += 1;
            Ok(guard)
        }
        Err(_) => {
            shared.diverged.store(true, Ordering::Relaxed);
            Err(format!(
                "mutual-exclusion divergence: protocol granted object {idx} while the oracle mutex was held"
            ))
        }
    }
}

/// A short randomized stay inside the critical section, widening the
/// window in which a second wrongful owner would collide with the
/// still-held oracle guard.
fn linger(rng: &mut Xorshift128Plus) {
    for _ in 0..rng.next_below(220) {
        std::hint::spin_loop();
    }
}

fn worker_body(
    shared: &Shared,
    objs: &[ObjRef],
    wseed: u64,
    ops: usize,
    kill: bool,
) -> Result<ChaosReport, String> {
    let mut rng = Xorshift128Plus::seed_from_u64(wseed);
    let reg = shared
        .locks
        .registry()
        .register()
        .map_err(|e| format!("worker registration failed: {e}"))?;
    let t = reg.token();
    let mut report = ChaosReport::default();

    for op in 0..ops {
        if shared.diverged.load(Ordering::Relaxed) {
            break;
        }
        if kill && op == ops / 2 {
            // Die owning a lock: acquire, verify via the oracle, put
            // the oracle guard back, then drop the registration with
            // the protocol lock still held. The exit sweep must
            // reclaim it or the final convergence check fails.
            let idx = rng.range_usize(0, objs.len());
            shared
                .locks
                .lock(objs[idx], t)
                .map_err(|e| format!("kill-path lock failed: {e}"))?;
            report.ops += 1;
            let guard = claim_oracle(shared, idx, &mut report)?;
            drop(guard);
            report.orphaned = true;
            drop(reg);
            return Ok(report);
        }
        let idx = rng.range_usize(0, objs.len());
        let obj = objs[idx];
        match rng.range_u32(0, 100) {
            // Plain blocking acquisition. Workers hold at most one lock
            // at a time, so blocking on any object cannot deadlock.
            0..=39 => {
                shared
                    .locks
                    .lock(obj, t)
                    .map_err(|e| format!("lock: {e}"))?;
                let guard = claim_oracle(shared, idx, &mut report)?;
                linger(&mut rng);
                drop(guard);
                shared
                    .locks
                    .unlock(obj, t)
                    .map_err(|e| format!("unlock: {e}"))?;
            }
            // Nested acquisition (exercises the count field and, past
            // its ceiling, count-overflow inflation).
            40..=54 => {
                let depth = rng.range_usize(2, 4);
                for _ in 0..depth {
                    shared
                        .locks
                        .lock(obj, t)
                        .map_err(|e| format!("nest lock: {e}"))?;
                }
                let guard = claim_oracle(shared, idx, &mut report)?;
                linger(&mut rng);
                drop(guard);
                for _ in 0..depth {
                    shared
                        .locks
                        .unlock(obj, t)
                        .map_err(|e| format!("nest unlock: {e}"))?;
                }
            }
            // Non-blocking attempt; contention is a legal answer.
            55..=69 => {
                if shared
                    .locks
                    .try_lock(obj, t)
                    .map_err(|e| format!("try_lock: {e}"))?
                {
                    let guard = claim_oracle(shared, idx, &mut report)?;
                    drop(guard);
                    shared
                        .locks
                        .unlock(obj, t)
                        .map_err(|e| format!("unlock after try: {e}"))?;
                } else {
                    report.try_contended += 1;
                }
            }
            // Bounded acquisition; timeout is a legal answer.
            70..=84 => {
                let timeout = Duration::from_micros(rng.next_below(1500));
                match shared.locks.lock_deadline(obj, t, timeout) {
                    Ok(()) => {
                        let guard = claim_oracle(shared, idx, &mut report)?;
                        linger(&mut rng);
                        drop(guard);
                        shared
                            .locks
                            .unlock(obj, t)
                            .map_err(|e| format!("unlock after deadline: {e}"))?;
                    }
                    Err(SyncError::Timeout) => report.timeouts += 1,
                    Err(e) => return Err(format!("lock_deadline: {e}")),
                }
            }
            // Timed wait: the monitor is released for the duration, so
            // the oracle guard is dropped before the wait and re-claimed
            // after it (the re-acquisition is a fresh protocol grant).
            _ => {
                shared
                    .locks
                    .lock(obj, t)
                    .map_err(|e| format!("wait lock: {e}"))?;
                let guard = claim_oracle(shared, idx, &mut report)?;
                linger(&mut rng);
                drop(guard);
                let wait_timeout = Duration::from_micros(rng.range_u32(50, 600).into());
                match shared.locks.wait(obj, t, Some(wait_timeout)) {
                    Ok(_) => report.waits += 1,
                    // A bounded deflating backend can transiently refuse
                    // the inflation `wait` needs (deflation frees the
                    // pool slot only after the neutral store). The thin
                    // lock is still held, so this is graceful
                    // degradation, not divergence — like `Timeout` from
                    // `lock_deadline`.
                    Err(SyncError::MonitorIndexExhausted) => report.waits_refused += 1,
                    Err(e) => return Err(format!("wait: {e}")),
                }
                let guard = claim_oracle(shared, idx, &mut report)?;
                linger(&mut rng);
                drop(guard);
                shared
                    .locks
                    .unlock(obj, t)
                    .map_err(|e| format!("unlock after wait: {e}"))?;
            }
        }
        report.ops += 1;
    }
    Ok(report)
}
