//! The crash-chaos supervisor: process-level fault tolerance.
//!
//! Everything else in this crate injects faults *inside* one process;
//! this module exercises the one failure mode that can't be faked
//! in-process — a worker dying abruptly at an arbitrary protocol point.
//! [`supervise`] spawns agent processes (normally the `chaos-agent`
//! binary, or any program speaking the same single-line-JSON heartbeat
//! protocol), watches each through heartbeats plus a wall-clock
//! deadline, SIGKILLs stragglers, retries failures with the seeded
//! jittered exponential backoff from `runtime::backoff`, and folds the
//! classified outcomes into a machine-readable [`DegradationReport`]
//! that succeeds with partial results when a quorum survives.
//!
//! [`crash_matrix`] drives the standing proof on top of that substrate:
//! for each backend × injection point, an agent armed with
//! `--abort-at` must die mid-critical-section, leave no torn artifact
//! (the agent writes via temp-file + `rename`, so the only durable
//! states are "absent" and "complete"), and converge cleanly on a
//! seeded retry with the abort disarmed. Every schedule decision and
//! every retry delay derives from the supervisor seed.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use thinlock::BackendChoice;
use thinlock_obs::json::JsonWriter;
use thinlock_obs::parse::parse;
use thinlock_runtime::backoff::RetryBackoff;
use thinlock_runtime::fault::InjectionPoint;
use thinlock_runtime::prng::SplitMix64;

/// How one finished attempt is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Exited 0 with an `ok:true` result line: converged and verified.
    Clean,
    /// Died without a clean result: killed by a signal (an armed abort
    /// lands here as SIGABRT) or exited with an unexpected code.
    Crash,
    /// Missed its wall-clock deadline or went heartbeat-silent past the
    /// grace window; the supervisor killed it.
    Timeout,
    /// The agent itself reported an invariant violation (exit code 2 or
    /// an `ok:false` result): the protocol is wrong, not the harness.
    OracleViolation,
}

impl Outcome {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Clean => "clean",
            Outcome::Crash => "crash",
            Outcome::Timeout => "timeout",
            Outcome::OracleViolation => "oracle-violation",
        }
    }
}

/// One process the supervisor is responsible for.
#[derive(Debug, Clone)]
pub struct AgentSpec {
    /// Stable identifier used in the report.
    pub id: String,
    /// Program to spawn.
    pub program: PathBuf,
    /// Arguments for every attempt; the literal `{seed}` is replaced by
    /// the agent's derived seed.
    pub args: Vec<String>,
    /// Extra arguments for the *first* attempt only — the crash matrix
    /// puts `--abort-at <point>` here so the retry runs disarmed.
    pub first_attempt_extra: Vec<String>,
}

/// Supervision policy.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Master seed: derives each agent's schedule seed and its retry
    /// backoff stream.
    pub seed: u64,
    /// Hard wall-clock budget per attempt.
    pub deadline: Duration,
    /// Maximum silence between stdout lines before the agent is
    /// presumed stuck and killed.
    pub heartbeat_grace: Duration,
    /// Retries after the first attempt (0 = one attempt only).
    pub max_retries: u32,
    /// First retry delay envelope (see
    /// [`RetryBackoff`]); doubles per retry up to `backoff_cap`.
    pub backoff_base: Duration,
    /// Upper bound on any single retry delay.
    pub backoff_cap: Duration,
    /// Percentage of agents that must end [`Outcome::Clean`] for the
    /// report to count as a success (100 = all).
    pub quorum_percent: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            seed: 0,
            deadline: Duration::from_secs(20),
            heartbeat_grace: Duration::from_secs(5),
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
            quorum_percent: 100,
        }
    }
}

/// What one attempt did, as observed from outside.
#[derive(Debug, Clone)]
pub struct AttemptReport {
    /// Classification of the exit.
    pub outcome: Outcome,
    /// Raw exit code, `None` when killed by a signal.
    pub exit_code: Option<i32>,
    /// Heartbeat lines observed.
    pub heartbeats: u64,
    /// Stdout lines that failed to parse as JSON (tolerated, counted).
    pub malformed_lines: u64,
    /// Whether the supervisor killed the process.
    pub killed: bool,
    /// Wall-clock duration of the attempt.
    pub duration: Duration,
}

/// One agent's full supervised history.
#[derive(Debug, Clone)]
pub struct AgentReport {
    /// The spec's `id`.
    pub id: String,
    /// Seed substituted for `{seed}`.
    pub seed: u64,
    /// Every attempt, in order.
    pub attempts: Vec<AttemptReport>,
    /// Backoff delay slept before each retry, in nanoseconds — recorded
    /// so a replay with the same supervisor seed can be asserted
    /// byte-identical.
    pub backoffs_ns: Vec<u64>,
}

impl AgentReport {
    /// The classification that stands after retries: the last attempt's.
    pub fn final_outcome(&self) -> Outcome {
        self.attempts
            .last()
            .map_or(Outcome::Crash, |attempt| attempt.outcome)
    }
}

/// The machine-readable product of one supervision round.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// Supervisor master seed.
    pub seed: u64,
    /// Quorum policy applied.
    pub quorum_percent: u32,
    /// Per-agent histories.
    pub agents: Vec<AgentReport>,
}

impl DegradationReport {
    /// Agents whose final outcome is [`Outcome::Clean`].
    pub fn clean_agents(&self) -> usize {
        self.agents
            .iter()
            .filter(|a| a.final_outcome() == Outcome::Clean)
            .count()
    }

    /// Whether enough agents survived: `clean / total >= quorum%`.
    pub fn quorum_met(&self) -> bool {
        if self.agents.is_empty() {
            return true;
        }
        self.clean_agents() * 100 >= self.quorum_percent as usize * self.agents.len()
    }

    /// Serializes the report as one JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("type", "degradation-report");
        w.field_u64("seed", self.seed);
        w.field_u64("quorum_percent", u64::from(self.quorum_percent));
        w.field_u64("agents_total", self.agents.len() as u64);
        w.field_u64("agents_clean", self.clean_agents() as u64);
        w.field_bool("quorum_met", self.quorum_met());
        w.begin_named_array("agents");
        for agent in &self.agents {
            w.begin_object();
            w.field_str("id", &agent.id);
            w.field_u64("seed", agent.seed);
            w.field_str("final", agent.final_outcome().name());
            w.begin_named_array("attempts");
            for attempt in &agent.attempts {
                w.begin_object();
                w.field_str("outcome", attempt.outcome.name());
                match attempt.exit_code {
                    Some(code) => w.field_f64("exit_code", f64::from(code)),
                    None => w.field_null("exit_code"),
                }
                w.field_u64("heartbeats", attempt.heartbeats);
                w.field_u64("malformed_lines", attempt.malformed_lines);
                w.field_bool("killed", attempt.killed);
                w.field_u64("duration_ms", attempt.duration.as_millis() as u64);
                w.end_object();
            }
            w.end_array();
            w.begin_named_array("backoffs_ns");
            for ns in &agent.backoffs_ns {
                w.elem_u64(*ns);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// What the stdout reader learned about one attempt.
#[derive(Debug, Default)]
struct StreamStats {
    heartbeats: u64,
    malformed: u64,
    result_ok: Option<bool>,
}

enum StreamEvent {
    Line(String),
    Eof,
}

/// Runs one attempt of `program args` and classifies it.
fn run_attempt(
    program: &Path,
    args: &[String],
    deadline: Duration,
    grace: Duration,
) -> AttemptReport {
    let started = Instant::now();
    let child = Command::new(program)
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn();
    let mut child: Child = match child {
        Ok(child) => child,
        Err(_) => {
            return AttemptReport {
                outcome: Outcome::Crash,
                exit_code: None,
                heartbeats: 0,
                malformed_lines: 0,
                killed: false,
                duration: started.elapsed(),
            };
        }
    };

    // The reader thread forwards each stdout line; the poll loop below
    // owns the liveness clock, so a line's *arrival* is what refreshes
    // the grace window.
    let (tx, rx) = mpsc::channel::<StreamEvent>();
    let stdout = child.stdout.take().expect("stdout was piped");
    // Deliberately detached: a killed agent can leave orphaned
    // grandchildren holding the pipe's write end open, so a join here
    // could block until *they* exit. The thread dies with the pipe.
    std::thread::spawn(move || {
        let mut lines = std::io::BufReader::new(stdout).lines();
        while let Some(Ok(line)) = lines.next() {
            if tx.send(StreamEvent::Line(line)).is_err() {
                return;
            }
        }
        let _ = tx.send(StreamEvent::Eof);
    });

    let mut stats = StreamStats::default();
    let ingest = |stats: &mut StreamStats, line: &str| match parse(line) {
        Ok(doc) => match doc.get("type").and_then(|v| v.as_str()) {
            Some("hb") => stats.heartbeats += 1,
            Some("result") => {
                stats.result_ok = doc.get("ok").and_then(|v| v.as_bool());
            }
            _ => {}
        },
        Err(_) => stats.malformed += 1,
    };
    let mut last_activity = Instant::now();
    let mut killed = false;
    let mut saw_eof = false;
    let status = loop {
        // Drain whatever arrived, then check liveness and exit.
        while let Ok(event) = rx.try_recv() {
            match event {
                StreamEvent::Line(line) => {
                    last_activity = Instant::now();
                    ingest(&mut stats, &line);
                }
                StreamEvent::Eof => saw_eof = true,
            }
        }
        match child.try_wait() {
            Ok(Some(status)) => break Some(status),
            Ok(None) => {}
            Err(_) => break None,
        }
        if started.elapsed() > deadline || last_activity.elapsed() > grace {
            killed = true;
            let _ = child.kill();
            break child.wait().ok();
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    // Late lines (buffered before exit or kill) still count toward
    // stats. A normally-exited child closed its pipe, so Eof arrives
    // promptly and the result line is reliably observed; a killed child
    // may have left grandchildren holding the pipe open, so the drain
    // is bounded rather than waiting for Eof.
    if !saw_eof {
        let drain_budget = if killed {
            Duration::from_millis(50)
        } else {
            Duration::from_secs(2)
        };
        let drain_started = Instant::now();
        loop {
            match rx.recv_timeout(Duration::from_millis(10)) {
                Ok(StreamEvent::Line(line)) => ingest(&mut stats, &line),
                Ok(StreamEvent::Eof) => break,
                Err(_) => {
                    if drain_started.elapsed() > drain_budget {
                        break;
                    }
                }
            }
        }
    }
    while let Ok(StreamEvent::Line(line)) = rx.try_recv() {
        ingest(&mut stats, &line);
    }

    let exit_code = status.as_ref().and_then(|s| s.code());
    let outcome = if killed {
        Outcome::Timeout
    } else {
        match (exit_code, stats.result_ok) {
            (Some(0), Some(true)) => Outcome::Clean,
            // Exit 0 without a result line means the agent does not
            // speak the protocol faithfully; trust the exit code for
            // mock agents but require honesty from real ones.
            (Some(0), None) => Outcome::Clean,
            (Some(code), _) if code == i32::from(crate::agent::EXIT_DIVERGED) => {
                Outcome::OracleViolation
            }
            (Some(_), Some(false)) => Outcome::OracleViolation,
            _ => Outcome::Crash,
        }
    };
    AttemptReport {
        outcome,
        exit_code,
        heartbeats: stats.heartbeats,
        malformed_lines: stats.malformed,
        killed,
        duration: started.elapsed(),
    }
}

fn substitute_seed(args: &[String], seed: u64) -> Vec<String> {
    args.iter()
        .map(|a| a.replace("{seed}", &seed.to_string()))
        .collect()
}

/// Supervises `specs` to completion under `cfg`: each agent gets one
/// attempt plus up to `max_retries` seeded-backoff retries (the first
/// attempt's extra arguments are dropped on retries), and the outcomes
/// fold into a [`DegradationReport`] regardless of individual failures
/// — graceful degradation is the caller's decision via
/// [`DegradationReport::quorum_met`].
pub fn supervise(cfg: &SupervisorConfig, specs: &[AgentSpec]) -> DegradationReport {
    let mut mix = SplitMix64::new(cfg.seed);
    let mut agents = Vec::with_capacity(specs.len());
    for spec in specs {
        let agent_seed = mix.next_u64();
        let backoff_seed = mix.next_u64();
        let mut backoff = RetryBackoff::new(backoff_seed, cfg.backoff_base, cfg.backoff_cap);
        let mut attempts = Vec::new();
        let mut backoffs_ns = Vec::new();
        for attempt in 0..=cfg.max_retries {
            let mut args = substitute_seed(&spec.args, agent_seed);
            if attempt == 0 {
                args.extend(substitute_seed(&spec.first_attempt_extra, agent_seed));
            }
            let report = run_attempt(&spec.program, &args, cfg.deadline, cfg.heartbeat_grace);
            let outcome = report.outcome;
            attempts.push(report);
            if outcome == Outcome::Clean || attempt == cfg.max_retries {
                break;
            }
            let delay = backoff.next_delay();
            backoffs_ns.push(delay.as_nanos().min(u128::from(u64::MAX)) as u64);
            std::thread::sleep(delay);
        }
        agents.push(AgentReport {
            id: spec.id.clone(),
            seed: agent_seed,
            attempts,
            backoffs_ns,
        });
    }
    DegradationReport {
        seed: cfg.seed,
        quorum_percent: cfg.quorum_percent,
        agents,
    }
}

/// One backend × injection-point cell of the crash matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Backend under test.
    pub backend: BackendChoice,
    /// The point armed with `--abort-at`.
    pub point: InjectionPoint,
    /// Seed of the probe that actually reached the point (crashed),
    /// `None` when no probe seed consulted it.
    pub crash_seed: Option<u64>,
    /// Probe runs spent finding a crashing seed.
    pub probes: u32,
    /// The abort was observed as an abnormal exit.
    pub crashed: bool,
    /// After the crash, the artifact file was either absent or complete
    /// valid JSON — never torn.
    pub artifact_intact: bool,
    /// The disarmed retry with the same seed converged clean and wrote
    /// a verified artifact.
    pub retry_clean: bool,
    /// How the disarmed retry was classified (`None` until a probe
    /// crashes) — diagnostic context for a `retry_clean` failure.
    pub retry_outcome: Option<Outcome>,
}

impl MatrixCell {
    /// Whether the cell proves crash tolerance at this point.
    pub fn pass(&self) -> bool {
        self.crashed && self.artifact_intact && self.retry_clean
    }
}

/// The crash matrix: for every requested backend × point, prove that a
/// worker aborted mid-protocol is observed, leaves no torn artifact,
/// and that the same seed converges clean once disarmed.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Supervisor master seed.
    pub seed: u64,
    /// One cell per backend × point.
    pub cells: Vec<MatrixCell>,
}

impl MatrixReport {
    /// Cells that failed (empty = the matrix passes).
    pub fn failures(&self) -> Vec<&MatrixCell> {
        self.cells.iter().filter(|c| !c.pass()).collect()
    }

    /// Serializes the matrix as one JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("type", "crash-matrix");
        w.field_u64("seed", self.seed);
        w.field_u64("cells", self.cells.len() as u64);
        w.field_bool("pass", self.failures().is_empty());
        w.begin_named_array("matrix");
        for cell in &self.cells {
            w.begin_object();
            w.field_str("backend", cell.backend.name());
            w.field_str("point", cell.point.name());
            match cell.crash_seed {
                Some(seed) => w.field_u64("crash_seed", seed),
                None => w.field_null("crash_seed"),
            }
            w.field_u64("probes", u64::from(cell.probes));
            w.field_bool("crashed", cell.crashed);
            w.field_bool("artifact_intact", cell.artifact_intact);
            w.field_bool("retry_clean", cell.retry_clean);
            match cell.retry_outcome {
                Some(outcome) => w.field_str("retry_outcome", outcome.name()),
                None => w.field_null("retry_outcome"),
            }
            w.field_bool("pass", cell.pass());
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Probe seeds tried per cell before giving up: whether a point is
/// consulted on a given seed depends on which protocol paths the
/// schedule takes, so rare points (deep slow-path steps) may need a few
/// draws. The seeds themselves derive from the supervisor seed.
const PROBES_PER_CELL: u32 = 8;

/// Checks a crashed agent's artifact: atomic writes mean the only legal
/// states are "absent" and "complete valid JSON".
fn artifact_intact(path: &Path) -> bool {
    match std::fs::read_to_string(path) {
        Err(_) => true, // absent: the crash predated the rename
        Ok(body) => parse(&body).is_ok(),
    }
}

/// Drives the crash matrix over `backends` × `points` using the agent
/// binary at `agent`, scratch files under `workdir`. Deterministic
/// given `cfg.seed`: probe seeds, schedules, and backoffs all derive
/// from it.
pub fn crash_matrix(
    cfg: &SupervisorConfig,
    agent: &Path,
    workdir: &Path,
    backends: &[BackendChoice],
    points: &[InjectionPoint],
) -> MatrixReport {
    let mut mix = SplitMix64::new(cfg.seed);
    let mut cells = Vec::new();
    for &backend in backends {
        for &point in points {
            let artifact = workdir.join(format!(
                "crash-{}-{}-{}.json",
                backend.name(),
                point.name(),
                std::process::id()
            ));
            let _ = std::fs::remove_file(&artifact);
            let base_args = |seed: u64, artifact: &Path| -> Vec<String> {
                vec![
                    "--backend".into(),
                    backend.name().into(),
                    "--seed".into(),
                    seed.to_string(),
                    "--threads".into(),
                    "3".into(),
                    "--objects".into(),
                    "2".into(),
                    "--ops".into(),
                    "96".into(),
                    "--rate-ppm".into(),
                    "200000".into(),
                    "--artifact".into(),
                    artifact.display().to_string(),
                ]
            };
            let mut cell = MatrixCell {
                backend,
                point,
                crash_seed: None,
                probes: 0,
                crashed: false,
                artifact_intact: false,
                retry_clean: false,
                retry_outcome: None,
            };
            for _ in 0..PROBES_PER_CELL {
                let seed = mix.next_u64();
                cell.probes += 1;
                let mut armed = base_args(seed, &artifact);
                armed.push("--abort-at".into());
                armed.push(point.name().into());
                let attempt = run_attempt(agent, &armed, cfg.deadline, cfg.heartbeat_grace);
                match attempt.outcome {
                    Outcome::Crash => {
                        cell.crash_seed = Some(seed);
                        cell.crashed = true;
                        cell.artifact_intact = artifact_intact(&artifact);
                        // Seeded retry, disarmed: the same schedule must
                        // now converge and leave a verified artifact.
                        let retry = run_attempt(
                            agent,
                            &base_args(seed, &artifact),
                            cfg.deadline,
                            cfg.heartbeat_grace,
                        );
                        cell.retry_outcome = Some(retry.outcome);
                        cell.retry_clean = retry.outcome == Outcome::Clean
                            && std::fs::read_to_string(&artifact)
                                .ok()
                                .and_then(|body| parse(&body).ok())
                                .and_then(|doc| doc.get("ok").and_then(|v| v.as_bool()))
                                == Some(true);
                        break;
                    }
                    // Clean: this seed's schedule never consulted the
                    // point before converging; draw another.
                    Outcome::Clean => continue,
                    // Timeouts and violations are real failures: record
                    // and stop probing.
                    Outcome::Timeout | Outcome::OracleViolation => break,
                }
            }
            let _ = std::fs::remove_file(&artifact);
            cells.push(cell);
        }
    }
    MatrixReport {
        seed: cfg.seed,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_names_are_stable() {
        assert_eq!(Outcome::Clean.name(), "clean");
        assert_eq!(Outcome::Crash.name(), "crash");
        assert_eq!(Outcome::Timeout.name(), "timeout");
        assert_eq!(Outcome::OracleViolation.name(), "oracle-violation");
    }

    #[test]
    fn seed_substitution_replaces_placeholder() {
        let args = vec!["--seed".to_string(), "{seed}".to_string(), "x".to_string()];
        assert_eq!(substitute_seed(&args, 42), vec!["--seed", "42", "x"]);
    }

    #[test]
    fn empty_report_meets_quorum_vacuously() {
        let report = DegradationReport {
            seed: 1,
            quorum_percent: 100,
            agents: Vec::new(),
        };
        assert!(report.quorum_met());
        let doc = parse(&report.to_json()).expect("valid JSON");
        assert_eq!(doc.get("quorum_met").and_then(|v| v.as_bool()), Some(true));
    }

    #[test]
    fn quorum_math_counts_final_outcomes() {
        let clean = AgentReport {
            id: "a".into(),
            seed: 1,
            attempts: vec![AttemptReport {
                outcome: Outcome::Clean,
                exit_code: Some(0),
                heartbeats: 1,
                malformed_lines: 0,
                killed: false,
                duration: Duration::from_millis(1),
            }],
            backoffs_ns: Vec::new(),
        };
        let mut crashed = clean.clone();
        crashed.id = "b".into();
        crashed.attempts[0].outcome = Outcome::Crash;
        let report = DegradationReport {
            seed: 1,
            quorum_percent: 50,
            agents: vec![clean, crashed],
        };
        assert_eq!(report.clean_agents(), 1);
        assert!(report.quorum_met(), "1/2 meets a 50% quorum");
        let strict = DegradationReport {
            quorum_percent: 100,
            ..report
        };
        assert!(!strict.quorum_met(), "1/2 misses a 100% quorum");
    }

    #[test]
    fn missing_artifact_counts_as_intact() {
        assert!(artifact_intact(Path::new(
            "/nonexistent/thinlock-matrix-probe.json"
        )));
    }
}
