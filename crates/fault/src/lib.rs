//! Deterministic fault injection and the seeded chaos harness.
//!
//! This crate is the test-side half of the fault seam declared in
//! `thinlock_runtime::fault`: the protocol crates expose labeled
//! [`InjectionPoint`](thinlock_runtime::fault::InjectionPoint)s behind a
//! zero-cost-when-disabled gate, and this crate supplies the injectors
//! that drive them.
//!
//! - [`FaultPlan`] — a seeded, per-point probabilistic
//!   [`FaultInjector`](thinlock_runtime::fault::FaultInjector) with
//!   rates, budgets, and fire counters. Same seed, same decisions.
//! - [`chaos`] — randomized multi-threaded schedules
//!   driven through a faulted protocol and cross-checked against a
//!   `std::sync::Mutex` oracle; any divergence is reported with the
//!   seed that replays it.
//! - [`agent`] — the process envelope around one chaos schedule: JSON
//!   heartbeats on stdout, atomic artifact writes, and the
//!   `--abort-at` crash armament (the `chaos-agent` binary).
//! - [`mod@supervise`] — the crash-chaos supervisor: spawns agent
//!   processes, watches heartbeats and deadlines, kills stragglers,
//!   retries with seeded jittered backoff, reports graceful
//!   degradation, and drives the backend × injection-point crash
//!   matrix (the `supervisor` binary, `scripts/supervise.sh`).
//!
//! The crate-level tests (`tests/`) are the robustness suite of
//! DESIGN.md §11: the ≥1000-seed chaos sweep, orphaned-lock recovery,
//! timed/try acquisition end-to-end, spurious-wakeup properties, and
//! exhaustion-error recovery. The `chaos` binary runs the same sweep
//! from the command line (`scripts/chaos.sh`). DESIGN.md §16 documents
//! the supervision protocol and the crash-matrix methodology.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod agent;
pub mod chaos;
pub mod plan;
pub mod supervise;

pub use chaos::{run_schedule, ChaosConfig, ChaosReport, ChaosTotals};
pub use plan::{FaultPlan, POINTS, PPM};
pub use supervise::{
    crash_matrix, supervise, AgentSpec, DegradationReport, MatrixReport, Outcome, SupervisorConfig,
};
