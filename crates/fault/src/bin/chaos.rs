//! Command-line driver for the seeded chaos sweep.
//!
//! ```text
//! chaos [--backend B] [--seeds N] [--start S] [--threads T] [--objects O]
//!       [--ops K] [--rate-ppm R] [--kill-every M] [SEED ...]
//! ```
//!
//! With positional seeds, runs exactly those schedules; otherwise
//! sweeps `S .. S+N`. `--backend` picks the protocol under test
//! (`thin` by default, `tasuki` for the parking deflater, `cjm` for
//! the deflating bounded-pool backend);
//! deflation-capable backends additionally get the monitor-population
//! bound checked at every convergence. Every run is checked against
//! the std-Mutex oracle; the first divergence is printed with its seed
//! (which replays it) and the process exits nonzero. `scripts/chaos.sh`
//! runs the fixed sweep that gates the repo.

use std::process::ExitCode;

use thinlock::BackendChoice;
use thinlock_fault::{run_schedule, ChaosConfig, ChaosTotals};
use thinlock_runtime::fault::InjectionPoint;

struct Options {
    seeds: Vec<u64>,
    threads: usize,
    objects: usize,
    ops: usize,
    rate_ppm: u32,
    kill_every: u64,
    backend: BackendChoice,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        seeds: Vec::new(),
        threads: 3,
        objects: 4,
        ops: 28,
        rate_ppm: 200_000,
        kill_every: 4,
        backend: BackendChoice::Thin,
    };
    let mut count: u64 = 256;
    let mut start: u64 = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag = |name: &str| -> Result<Option<String>, String> {
            if arg == name {
                it.next()
                    .cloned()
                    .map(Some)
                    .ok_or_else(|| format!("{name} requires a value"))
            } else {
                Ok(None)
            }
        };
        if let Some(v) = flag("--seeds")? {
            count = v.parse().map_err(|e| format!("--seeds: {e}"))?;
        } else if let Some(v) = flag("--start")? {
            start = v.parse().map_err(|e| format!("--start: {e}"))?;
        } else if let Some(v) = flag("--threads")? {
            opts.threads = v.parse().map_err(|e| format!("--threads: {e}"))?;
        } else if let Some(v) = flag("--objects")? {
            opts.objects = v.parse().map_err(|e| format!("--objects: {e}"))?;
        } else if let Some(v) = flag("--ops")? {
            opts.ops = v.parse().map_err(|e| format!("--ops: {e}"))?;
        } else if let Some(v) = flag("--rate-ppm")? {
            opts.rate_ppm = v.parse().map_err(|e| format!("--rate-ppm: {e}"))?;
        } else if let Some(v) = flag("--kill-every")? {
            opts.kill_every = v.parse().map_err(|e| format!("--kill-every: {e}"))?;
        } else if let Some(v) = flag("--backend")? {
            match BackendChoice::from_name(&v) {
                Some(choice) if choice.fault_injectable() => opts.backend = choice,
                Some(choice) => {
                    return Err(format!(
                        "--backend: `{choice}` has no fault seam and cannot run under chaos"
                    ));
                }
                None => return Err(format!("--backend: unknown backend `{v}`")),
            }
        } else if arg == "--help" || arg == "-h" {
            return Err("usage".to_string());
        } else if let Ok(seed) = arg.parse::<u64>() {
            opts.seeds.push(seed);
        } else {
            return Err(format!("unrecognized argument: {arg}"));
        }
    }
    if opts.seeds.is_empty() {
        opts.seeds = (start..start.saturating_add(count)).collect();
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: chaos [--backend <thin|tasuki|cjm|fissile|hapax|adaptive>] [--seeds N] [--start S] [--threads T] \
                 [--objects O] [--ops K] [--rate-ppm R] [--kill-every M] [SEED ...]"
            );
            return ExitCode::FAILURE;
        }
    };

    let mut totals = ChaosTotals::default();
    for &seed in &opts.seeds {
        let cfg = ChaosConfig {
            seed,
            threads: opts.threads,
            objects: opts.objects,
            ops_per_thread: opts.ops,
            fault_rate_ppm: opts.rate_ppm,
            kill_thread: opts.kill_every != 0
                && seed % opts.kill_every == 0
                && opts.backend.orphan_recoverable(),
            backend: opts.backend,
            abort_at: None,
        };
        match run_schedule(cfg) {
            Ok(report) => totals.absorb(&report),
            Err(msg) => {
                eprintln!("DIVERGENCE: {msg}");
                eprintln!("replay with: chaos --backend {} --threads {} --objects {} --ops {} --rate-ppm {} --kill-every {} {seed}",
                    opts.backend, opts.threads, opts.objects, opts.ops, opts.rate_ppm, opts.kill_every);
                return ExitCode::FAILURE;
            }
        }
    }

    let r = &totals.report;
    println!(
        "chaos[{}]: {} schedules converged ({} ops, {} acquisitions, {} try-contended, {} timeouts, {} waits ({} refused), orphan runs: {})",
        opts.backend, totals.runs, r.ops, r.acquisitions, r.try_contended, r.timeouts, r.waits, r.waits_refused, r.orphaned
    );
    if opts.backend.deflation_capable() {
        println!(
            "monitor population: {} inflations, {} deflations, peak {} (bound {}), live at exit {}",
            r.inflations, r.deflations, r.monitors_peak, opts.objects, r.monitors_live
        );
    }
    println!("injected faults: {} total", r.total_fires());
    for point in InjectionPoint::ALL {
        println!("  {:<18} {:>8}", point.name(), r.fires[point.index()]);
    }
    let unfired = totals.unfired_points();
    if !unfired.is_empty() {
        let names: Vec<&str> = unfired.iter().map(|p| p.name()).collect();
        println!("note: points never fired this sweep: {}", names.join(", "));
    }
    ExitCode::SUCCESS
}
