//! The crash-chaos supervisor CLI.
//!
//! ```text
//! supervisor run    [--agent PATH] [--seed S] [--agents N] [--backend B]
//!                   [--retries R] [--quorum P] [--deadline-secs D]
//! supervisor matrix [--agent PATH] [--seed S] [--backends b1,b2] [--points p1,p2|all]
//! ```
//!
//! `run` supervises N chaos agents (one derived seed each) and prints
//! the degradation report JSON; exit 0 iff the quorum survived.
//! `matrix` drives the crash matrix — for every backend × injection
//! point an agent is killed mid-protocol via `--abort-at` and must be
//! observed crashing, leave no torn artifact, and converge on a seeded
//! disarmed retry — and prints the matrix JSON; exit 0 iff every cell
//! passes. Both locate the `chaos-agent` binary next to this
//! executable unless `--agent` overrides it.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use thinlock::BackendChoice;
use thinlock_fault::supervise::{crash_matrix, supervise, AgentSpec, SupervisorConfig};
use thinlock_runtime::fault::InjectionPoint;

fn sibling_agent() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let agent = exe.parent()?.join("chaos-agent");
    agent.exists().then_some(agent)
}

fn parse_backends(spec: &str) -> Result<Vec<BackendChoice>, String> {
    if spec == "all" {
        return Ok(BackendChoice::ALL.to_vec());
    }
    spec.split(',')
        .map(|name| {
            BackendChoice::from_name(name).ok_or_else(|| format!("unknown backend `{name}`"))
        })
        .collect()
}

fn parse_points(spec: &str) -> Result<Vec<InjectionPoint>, String> {
    if spec == "all" {
        return Ok(InjectionPoint::ALL.to_vec());
    }
    spec.split(',')
        .map(|name| {
            InjectionPoint::from_name(name).ok_or_else(|| format!("unknown point `{name}`"))
        })
        .collect()
}

struct Options {
    mode: String,
    agent: Option<PathBuf>,
    cfg: SupervisorConfig,
    agents: usize,
    backend: BackendChoice,
    backends: Vec<BackendChoice>,
    points: Vec<InjectionPoint>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    let mode = it
        .next()
        .cloned()
        .ok_or_else(|| "expected a subcommand: run | matrix".to_string())?;
    if mode != "run" && mode != "matrix" {
        return Err(format!(
            "unknown subcommand `{mode}` (expected run | matrix)"
        ));
    }
    let mut opts = Options {
        mode,
        agent: None,
        cfg: SupervisorConfig::default(),
        agents: 4,
        backend: BackendChoice::Thin,
        backends: BackendChoice::ALL.to_vec(),
        points: InjectionPoint::ALL.to_vec(),
    };
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg.as_str() {
            "--agent" => opts.agent = Some(PathBuf::from(value()?)),
            "--seed" => opts.cfg.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--agents" => opts.agents = value()?.parse().map_err(|e| format!("--agents: {e}"))?,
            "--retries" => {
                opts.cfg.max_retries = value()?.parse().map_err(|e| format!("--retries: {e}"))?;
            }
            "--quorum" => {
                opts.cfg.quorum_percent = value()?.parse().map_err(|e| format!("--quorum: {e}"))?;
            }
            "--deadline-secs" => {
                opts.cfg.deadline = Duration::from_secs(
                    value()?
                        .parse()
                        .map_err(|e| format!("--deadline-secs: {e}"))?,
                );
            }
            "--grace-secs" => {
                opts.cfg.heartbeat_grace = Duration::from_secs(
                    value()?.parse().map_err(|e| format!("--grace-secs: {e}"))?,
                );
            }
            "--backend" => {
                let name = value()?;
                opts.backend = BackendChoice::from_name(&name)
                    .ok_or_else(|| format!("--backend: unknown backend `{name}`"))?;
            }
            "--backends" => opts.backends = parse_backends(&value()?)?,
            "--points" => opts.points = parse_points(&value()?)?,
            other => return Err(format!("unrecognized argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: supervisor run [--agent PATH] [--seed S] [--agents N] [--backend B] \
                 [--retries R] [--quorum P] [--deadline-secs D] [--grace-secs G]\n       \
                 supervisor matrix [--agent PATH] [--seed S] [--backends b1,b2|all] \
                 [--points p1,p2|all] [--deadline-secs D] [--grace-secs G]"
            );
            return ExitCode::FAILURE;
        }
    };
    let Some(agent) = opts.agent.clone().or_else(sibling_agent) else {
        eprintln!("supervisor: no chaos-agent next to this binary; pass --agent PATH");
        return ExitCode::FAILURE;
    };

    if opts.mode == "run" {
        let specs: Vec<AgentSpec> = (0..opts.agents)
            .map(|i| AgentSpec {
                id: format!("agent-{i}"),
                program: agent.clone(),
                args: vec![
                    "--backend".into(),
                    opts.backend.name().into(),
                    "--seed".into(),
                    "{seed}".into(),
                ],
                first_attempt_extra: Vec::new(),
            })
            .collect();
        let report = supervise(&opts.cfg, &specs);
        println!("{}", report.to_json());
        if report.quorum_met() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "supervisor: quorum missed ({}/{} clean, {}% required)",
                report.clean_agents(),
                report.agents.len(),
                report.quorum_percent
            );
            ExitCode::FAILURE
        }
    } else {
        let workdir = std::env::temp_dir().join(format!("thinlock-matrix-{}", std::process::id()));
        if let Err(e) = std::fs::create_dir_all(&workdir) {
            eprintln!(
                "supervisor: cannot create workdir {}: {e}",
                workdir.display()
            );
            return ExitCode::FAILURE;
        }
        let report = crash_matrix(&opts.cfg, &agent, &workdir, &opts.backends, &opts.points);
        println!("{}", report.to_json());
        let _ = std::fs::remove_dir_all(&workdir);
        let failures = report.failures();
        if failures.is_empty() {
            eprintln!(
                "supervisor: crash matrix passed ({} cells, seed {})",
                report.cells.len(),
                report.seed
            );
            ExitCode::SUCCESS
        } else {
            for cell in failures {
                eprintln!(
                    "supervisor: FAILED cell {} x {}: crashed={} artifact_intact={} retry_clean={} retry_outcome={} crash_seed={:?} (probes {})",
                    cell.backend,
                    cell.point.name(),
                    cell.crashed,
                    cell.artifact_intact,
                    cell.retry_clean,
                    cell.retry_outcome.map_or("none", |o| o.name()),
                    cell.crash_seed,
                    cell.probes
                );
            }
            ExitCode::FAILURE
        }
    }
}
