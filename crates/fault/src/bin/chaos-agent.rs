//! The sacrificial worker the crash-chaos supervisor spawns.
//!
//! ```text
//! chaos-agent [--backend B] [--seed S] [--threads T] [--objects O]
//!             [--ops K] [--rate-ppm R] [--kill-thread]
//!             [--abort-at POINT] [--artifact PATH] [--heartbeat-ms MS]
//! ```
//!
//! Runs one seeded chaos schedule while emitting single-line-JSON
//! heartbeats on stdout, writes the converged report atomically to
//! `--artifact`, and exits `0` (clean), `2` (oracle divergence), or by
//! `SIGABRT` when `--abort-at` arms a crash at an injection point. See
//! `thinlock_fault::agent` for the protocol and DESIGN.md §16 for the
//! methodology.

use std::process::ExitCode;

use thinlock_fault::agent::AgentConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match AgentConfig::parse(&args) {
        Ok(cfg) => ExitCode::from(thinlock_fault::agent::run(&cfg)),
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: chaos-agent [--backend <thin|tasuki|cjm|fissile|hapax|adaptive>] [--seed S] [--threads T] \
                 [--objects O] [--ops K] [--rate-ppm R] [--kill-thread] [--abort-at POINT] \
                 [--artifact PATH] [--heartbeat-ms MS]"
            );
            ExitCode::FAILURE
        }
    }
}
