//! The thin-lock protocol: Section 2.3 of the paper.
//!
//! State machine of one object's lock word (Figures 1 and 2):
//!
//! ```text
//!             CAS                       store
//!  Unlocked ───────► Thin(me, 0)  ◄───────────┐
//!     ▲                 │   ▲                 │
//!     │ store           │add│sub              │
//!     └─────────────────┤   └── Thin(me, n) ──┘
//!                       │
//!   contention / overflow / wait-notify
//!                       ▼
//!                  Fat(monitor)          (permanent)
//! ```
//!
//! The invariants the implementation maintains (and the tests check):
//!
//! * **Owner-only writes:** after the acquiring CAS, the lock word of a
//!   thin-held object is written only by its owner, with plain stores.
//! * **One-way inflation:** a shape bit of 1 is never cleared; monitors
//!   are never recycled while the heap lives.
//! * **Header preservation:** the low 8 bits of the header word are never
//!   changed by any lock operation.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use thinlock_monitor::{FatLock, MonitorTable};
use thinlock_runtime::arch::{ArchProfile, LockWordCell};
use thinlock_runtime::backend::{MonitorProbe, SyncBackend};
use thinlock_runtime::backoff::Backoff;
use thinlock_runtime::error::{SyncError, SyncResult};
use thinlock_runtime::events::{TraceEventKind, TraceSink};
use thinlock_runtime::fault::{FaultAction, FaultInjector, InjectionPoint};
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::lockword::{LockWord, ThreadIndex, MAX_THIN_COUNT};
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ExitSweeper, ThreadRecord, ThreadRegistry, ThreadToken};
use thinlock_runtime::schedule::{SchedPoint, Schedule};
use thinlock_runtime::stats::{InflationCause, LockScenario, LockStats};

use crate::config::{DynamicConfig, FastPathConfig, UnlockStrategy};

/// Nesting depth at or below which an acquisition counts as "shallow" in
/// the statistics — the paper never observed nesting deeper than four
/// (Section 3.2).
const SHALLOW_DEPTH: u32 = 4;

/// The thin-lock monitor protocol.
///
/// Generic over [`FastPathConfig`] so the Figure 6 variants monomorphize
/// to distinct fast paths; the default is the paper's shipped
/// configuration (runtime architecture test, store unlock).
///
/// # Example
///
/// ```
/// use thinlock::ThinLocks;
/// use thinlock_runtime::protocol::SyncProtocol;
///
/// let locks = ThinLocks::with_capacity(8);
/// let reg = locks.registry().register()?;
/// let obj = locks.heap().alloc()?;
/// locks.lock(obj, reg.token())?;
/// assert!(locks.holds_lock(obj, reg.token()));
/// locks.unlock(obj, reg.token())?;
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
pub struct ThinLocks<C: FastPathConfig = DynamicConfig> {
    heap: Arc<Heap>,
    registry: ThreadRegistry,
    monitors: Arc<MonitorTable>,
    config: C,
    stats: Option<Arc<LockStats>>,
    tracer: Option<Arc<dyn TraceSink>>,
    injector: Option<Arc<dyn FaultInjector>>,
    schedule: Option<Arc<dyn Schedule>>,
}

impl ThinLocks<DynamicConfig> {
    /// Creates a protocol over a fresh heap of `capacity` objects with the
    /// default (shipped) configuration.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::new(
            Arc::new(Heap::with_capacity(capacity)),
            ThreadRegistry::new(),
        )
    }

    /// Creates a protocol with the default configuration over an existing
    /// heap and registry.
    pub fn new(heap: Arc<Heap>, registry: ThreadRegistry) -> Self {
        Self::with_config(heap, registry, DynamicConfig::default())
    }
}

impl<C: FastPathConfig> ThinLocks<C> {
    /// Creates a protocol with an explicit fast-path configuration.
    ///
    /// The monitor table is sized to the heap: each object inflates at
    /// most once, so `heap.capacity()` monitors can never be exceeded.
    pub fn with_config(heap: Arc<Heap>, registry: ThreadRegistry, config: C) -> Self {
        let monitors = Arc::new(MonitorTable::with_capacity(heap.capacity()));
        ThinLocks {
            heap,
            registry,
            monitors,
            config,
            stats: None,
            tracer: None,
            injector: None,
            schedule: None,
        }
    }

    /// Attaches statistics counters (scenario characterization); counting
    /// costs a couple of relaxed increments per operation.
    #[must_use]
    pub fn with_stats(mut self, stats: Arc<LockStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The attached statistics, if any.
    pub fn stats(&self) -> Option<&LockStats> {
        self.stats.as_deref()
    }

    /// Attaches an event sink: every protocol transition (acquire,
    /// unlock, inflation with its cause, wait/notify, monitor-table
    /// allocation) is streamed to `sink` as a [`TraceEventKind`] event.
    ///
    /// When no sink is attached the only hot-path cost is one
    /// never-taken branch — the same zero-cost-when-disabled discipline
    /// as [`ThinLocks::with_stats`].
    #[must_use]
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.monitors.set_sink(Arc::clone(&sink));
        self.tracer = Some(sink);
        self
    }

    /// Attaches a fault injector: the protocol consults it at each labeled
    /// [`InjectionPoint`] (fast-path CAS, slow-path CAS, spin, unlock
    /// store, inflation) and propagates it into the monitor table (which
    /// stamps it into every fat lock it publishes) and the heap, so one
    /// injector covers the whole stack.
    ///
    /// When no injector is attached the only cost is one never-taken
    /// branch per point — the same zero-cost-when-disabled discipline as
    /// [`ThinLocks::with_trace_sink`].
    #[must_use]
    pub fn with_fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.monitors.set_fault_injector(Arc::clone(&injector));
        self.heap.set_fault_injector(Arc::clone(&injector));
        self.injector = Some(injector);
        self
    }

    /// Attaches a cooperative schedule: the protocol announces each
    /// labeled [`SchedPoint`] (fast-path CAS, nested stores, slow-path
    /// CAS, spin, inflation publish, unlock stores, fat release, notify)
    /// to it before executing the step, and propagates it into the
    /// monitor table (which stamps it into every fat lock it publishes,
    /// covering the two park points). A serializing scheduler — the
    /// `thinlock-modelcheck` crate — blocks the calling thread inside
    /// [`Schedule::reached`] to take ownership of the interleaving.
    ///
    /// When no schedule is attached the only cost is one never-taken
    /// branch per point — the same zero-cost-when-disabled discipline as
    /// [`ThinLocks::with_fault_injector`].
    ///
    /// Timed paths (`try_lock`, `lock_deadline`) carry no schedule
    /// points: the model checker only drives the untimed operations.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Arc<dyn Schedule>) -> Self {
        self.monitors.set_schedule(Arc::clone(&schedule));
        self.schedule = Some(schedule);
        self
    }

    /// Installs the orphaned-lock sweeper on this protocol's registry:
    /// when a [`Registration`](thinlock_runtime::registry::Registration)
    /// drops while its thread still owns thin or fat locks, the sweep
    /// force-releases them *before* the 15-bit index becomes reusable, so
    /// a recycled index can never be mistaken for the dead owner
    /// (stale-owner ABA).
    ///
    /// Call after [`with_trace_sink`](ThinLocks::with_trace_sink) /
    /// [`with_fault_injector`](ThinLocks::with_fault_injector) so the
    /// sweeper inherits them. The sweep is a full heap scan — linear in
    /// heap capacity, paid once per thread exit.
    #[must_use]
    pub fn with_orphan_recovery(self) -> Self {
        self.enable_orphan_recovery();
        self
    }

    /// Non-consuming form of [`ThinLocks::with_orphan_recovery`] for
    /// protocols already behind an `Arc`. Replaces any previously
    /// installed sweeper.
    pub fn enable_orphan_recovery(&self) {
        self.registry.set_exit_sweeper(Arc::new(OrphanSweeper {
            heap: Arc::clone(&self.heap),
            monitors: Arc::clone(&self.monitors),
            tracer: self.tracer.clone(),
            injector: self.injector.clone(),
            profile: self.config.profile(),
        }));
    }

    /// The fast-path configuration.
    pub fn config(&self) -> &C {
        &self.config
    }

    /// Number of locks inflated so far (monitors allocated).
    pub fn inflated_count(&self) -> usize {
        self.monitors.len()
    }

    /// The raw lock word of `obj` — diagnostics and tests.
    pub fn lock_word(&self, obj: ObjRef) -> LockWord {
        self.cell(obj).load_relaxed()
    }

    #[inline]
    fn cell(&self, obj: ObjRef) -> &LockWordCell {
        self.heap.header(obj).lock_word()
    }

    #[inline]
    fn record_lock(&self, scenario: LockScenario, depth: u32) {
        if let Some(s) = &self.stats {
            s.record_lock(scenario, depth);
        }
    }

    #[inline]
    fn record_inflation(&self, cause: InflationCause) {
        if let Some(s) = &self.stats {
            s.record_inflation(cause);
        }
    }

    #[inline]
    fn emit(&self, thread: Option<ThreadIndex>, obj: Option<ObjRef>, kind: TraceEventKind) {
        if let Some(sink) = &self.tracer {
            sink.record(thread, obj, kind);
        }
    }

    #[inline]
    fn inject(&self, point: InjectionPoint) -> FaultAction {
        match &self.injector {
            None => FaultAction::Proceed,
            Some(injector) => injector.decide(point),
        }
    }

    #[inline]
    fn reach(&self, point: SchedPoint, obj: ObjRef) {
        if let Some(s) = &self.schedule {
            // Thin-path points ignore the returned action: SkipPark only
            // applies at the monitor-layer park points.
            let _ = s.reached(point, Some(obj));
        }
    }

    /// Resolves the fat lock of an inflated word.
    fn monitor_of(&self, word: LockWord) -> &FatLock {
        let idx = word.monitor_index().expect("word must be inflated");
        self.monitors
            .get(idx)
            .expect("inflated word references an allocated monitor")
    }

    /// The fat monitor of `obj`, if its lock has inflated — a
    /// diagnostics/model-checking probe pairing with
    /// [`ThinLocks::lock_word`].
    pub fn monitor_for(&self, obj: ObjRef) -> Option<&FatLock> {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            Some(self.monitor_of(word))
        } else {
            None
        }
    }

    /// Owner-only inflation: the calling thread holds the thin lock with
    /// `locks` acquisitions and replaces it with a fat monitor owned the
    /// same number of times. The release store publishes the monitor's
    /// contents along with the new word.
    fn inflate_owned(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        locks: u32,
        cause: InflationCause,
    ) -> SyncResult<&FatLock> {
        self.reach(SchedPoint::Inflate, obj);
        if self.inject(InjectionPoint::Inflate) == FaultAction::Yield {
            // Deschedule between deciding to inflate and publishing the
            // fat word — the window in which other threads still spin.
            std::thread::yield_now();
        }
        let idx = self.monitors.allocate(FatLock::new_owned(t, locks))?;
        let cell = self.cell(obj);
        let current = cell.load_relaxed();
        debug_assert_eq!(
            current.thin_owner().map(ThreadTokenIndex::of),
            Some(ThreadTokenIndex::of(t.index()))
        );
        cell.store_release(current.inflated(idx));
        self.record_inflation(cause);
        self.emit(
            Some(t.index()),
            Some(obj),
            TraceEventKind::Inflated { cause },
        );
        Ok(self.monitor_of(current.inflated(idx)))
    }

    /// The complete lock algorithm. `#[inline]` so that with a static
    /// config the fast path compiles to the paper's handful of
    /// instructions at each call site.
    #[inline]
    fn lock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);

        // Scenario 1 — locking an unlocked object. Build the old value by
        // masking the loaded word, OR in the pre-shifted thread index, CAS.
        let old = cell.load_relaxed().with_lock_field_clear();
        let new = LockWord::from_bits(old.bits() | t.shifted());
        self.reach(SchedPoint::LockFast, obj);
        let fast = match self.inject(InjectionPoint::LockFastCas) {
            FaultAction::FailCas => false,
            FaultAction::Yield => {
                std::thread::yield_now();
                true
            }
            _ => true,
        };
        if fast && cell.try_cas(old, new, profile).is_ok() {
            self.record_lock(LockScenario::Unlocked, 1);
            self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
            return Ok(());
        }

        // Scenario 2 — nested locking by this thread: XOR + compare, then
        // an ADD of 1<<8 written with a plain store.
        let word = cell.load_relaxed();
        if word.can_nest(t.shifted()) {
            self.reach(SchedPoint::LockNest, obj);
            cell.store_relaxed(word.with_count_incremented());
            let depth = u32::from(word.thin_count()) + 2;
            self.record_lock(
                if depth <= SHALLOW_DEPTH {
                    LockScenario::NestedShallow
                } else {
                    LockScenario::NestedDeep
                },
                depth,
            );
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::AcquireNested { depth },
            );
            return Ok(());
        }

        self.lock_slow(obj, t, word)
    }

    /// Slow path: count overflow, inflated locks, and contention.
    #[inline(never)]
    fn lock_slow(&self, obj: ObjRef, t: ThreadToken, mut word: LockWord) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);
        // Jittered per-thread backoff (runtime::backoff): spinners that
        // collided in lockstep draw distinct pulse sequences, seeded by
        // the thread index so seeded replays stay deterministic.
        let mut backoff = Backoff::jittered(self.config.spin_policy(), u64::from(t.index().get()));
        let mut spun = false;
        // Advisory waits-for edge for the deadlock watchdog; published on
        // the first blocking step, cleared when the guard drops.
        let mut waiting = BlockedOnGuard(None);
        loop {
            if word.is_fat() {
                // Fat path: index into the monitor table and queue there.
                // Unowned or re-entrant acquisitions complete in a single
                // monitor critical section with no registry traffic; only
                // an acquisition that must park pays for the parker lookup
                // and publishes a waits-for edge (it is the only one that
                // can deadlock).
                let monitor = self.monitor_of(word);
                let (depth, contended) = match monitor.lock_uncontended(t) {
                    Some(depth) => (depth, depth > 1),
                    None => {
                        waiting.publish(&self.registry, t, obj);
                        monitor.lock(t, &self.registry)?;
                        (monitor.count(), true)
                    }
                };
                if let Some(s) = &self.stats {
                    s.record_lock(
                        if depth > 1 {
                            if depth <= SHALLOW_DEPTH {
                                LockScenario::NestedShallow
                            } else {
                                LockScenario::NestedDeep
                            }
                        } else if contended {
                            LockScenario::FatContended
                        } else {
                            LockScenario::FatUncontended
                        },
                        depth,
                    );
                    s.record_spin_rounds(backoff.rounds());
                }
                self.emit(
                    Some(t.index()),
                    Some(obj),
                    TraceEventKind::AcquireFat { contended },
                );
                return Ok(());
            }

            if word.is_thin_owned_by(t.shifted()) {
                // Owned by us at the maximum count: the 257th acquisition.
                debug_assert_eq!(u32::from(word.thin_count()), MAX_THIN_COUNT);
                let locks = u32::from(word.thin_count()) + 1 + 1; // held + this one
                self.emit(
                    Some(t.index()),
                    Some(obj),
                    TraceEventKind::AcquireNested { depth: locks },
                );
                self.inflate_owned(obj, t, locks, InflationCause::CountOverflow)?;
                self.record_lock(LockScenario::NestedDeep, locks);
                return Ok(());
            }

            if word.is_unlocked() {
                // Try to take it. If we spun to get here this is the
                // contention scenario: acquire then inflate so the next
                // contender queues instead of spinning (Section 2.3.4).
                let new = LockWord::from_bits(word.bits() | t.shifted());
                self.reach(SchedPoint::LockSlowCas, obj);
                let attempt = match self.inject(InjectionPoint::LockSlowCas) {
                    FaultAction::FailCas => false,
                    FaultAction::Yield => {
                        std::thread::yield_now();
                        true
                    }
                    _ => true,
                };
                if attempt && cell.try_cas(word, new, profile).is_ok() {
                    if spun {
                        let rounds = u32::try_from(backoff.rounds()).unwrap_or(u32::MAX);
                        self.emit(
                            Some(t.index()),
                            Some(obj),
                            TraceEventKind::AcquireContendedThin {
                                spin_rounds: rounds,
                            },
                        );
                        // Post-contention inflation is an optimization, not
                        // a correctness requirement: the thin lock is
                        // already held, so if the monitor table is full we
                        // keep the thin lock and let the next contender
                        // spin instead of failing an acquisition that has
                        // in fact succeeded.
                        match self.inflate_owned(obj, t, 1, InflationCause::Contention) {
                            Ok(_) | Err(SyncError::MonitorIndexExhausted) => {}
                            Err(e) => return Err(e),
                        }
                        self.record_lock(LockScenario::ContendedThin, 1);
                        if let Some(s) = &self.stats {
                            s.record_spin_rounds(backoff.rounds());
                        }
                    } else {
                        self.record_lock(LockScenario::Unlocked, 1);
                        self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
                    }
                    return Ok(());
                }
                word = cell.load_acquire();
                continue;
            }

            // Thin-locked by another thread: spin until released.
            spun = true;
            waiting.publish(&self.registry, t, obj);
            self.reach(SchedPoint::LockSpin, obj);
            if self.inject(InjectionPoint::LockSpin) == FaultAction::Yield {
                std::thread::yield_now();
            }
            backoff.snooze();
            word = cell.load_acquire();
        }
    }

    /// The complete unlock algorithm.
    #[inline]
    fn unlock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);
        let word = cell.load_relaxed();

        // Common case: thin, owned by us, locked exactly once. Restore the
        // header-only word with a plain store (or CAS under UnlkC&S).
        if word.is_locked_once_by(t.shifted()) {
            self.reach(SchedPoint::UnlockThin, obj);
            if self.inject(InjectionPoint::UnlockStore) == FaultAction::Yield {
                // Deschedule between deciding to release and the store:
                // owner-only writes make this window harmless, which is
                // exactly what the chaos suite checks.
                std::thread::yield_now();
            }
            let restored = word.with_lock_field_clear();
            match self.config.unlock_strategy() {
                UnlockStrategy::Store => cell.store_unlock(restored, profile),
                UnlockStrategy::CompareAndSwap => {
                    let r = cell.try_cas_release(word, restored, profile);
                    debug_assert!(r.is_ok(), "owner-only discipline violated");
                }
            }
            if let Some(s) = &self.stats {
                s.record_unlock_thin();
            }
            self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockThin);
            return Ok(());
        }

        // Nested unlock: decrement with a plain store.
        if word.is_thin_owned_by(t.shifted()) {
            debug_assert!(word.thin_count() > 0);
            self.reach(SchedPoint::UnlockNest, obj);
            cell.store_relaxed(word.with_count_decremented());
            if let Some(s) = &self.stats {
                s.record_unlock_thin();
            }
            self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockThin);
            return Ok(());
        }

        self.unlock_slow(obj, t, word)
    }

    #[inline(never)]
    fn unlock_slow(&self, obj: ObjRef, t: ThreadToken, word: LockWord) -> SyncResult<()> {
        if word.is_fat() {
            self.reach(SchedPoint::FatUnlock, obj);
            let r = self.monitor_of(word).unlock(t, &self.registry);
            if r.is_ok() {
                if let Some(s) = &self.stats {
                    s.record_unlock_fat();
                }
                self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockFat);
            }
            return r;
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }

    /// Inflates `obj`'s lock ahead of time, before any thread holds it —
    /// the receiving end of a `lockcheck` pre-inflation hint.
    ///
    /// The paper inflates on the 257th nested acquisition, in the middle
    /// of a critical section and while holding no queue to hand off to.
    /// When static analysis proves a nest-depth bound above
    /// [`MAX_THIN_COUNT`], installing an (unowned) fat monitor up front
    /// moves that cost to program start-up: every later acquisition takes
    /// the fat path directly and the overflow transition never happens.
    ///
    /// Best-effort: returns `Ok(true)` if this call inflated the object,
    /// `Ok(false)` if the object was already inflated, currently thin-held
    /// (the owner must inflate; we cannot), or the installing CAS lost a
    /// race. A lost race leaks one monitor-table slot, which is fine for
    /// the intended use — hints are applied during single-threaded set-up.
    ///
    /// # Errors
    ///
    /// [`SyncError::MonitorIndexExhausted`] if the monitor table is full.
    pub fn pre_inflate(&self, obj: ObjRef) -> SyncResult<bool> {
        let cell = self.cell(obj);
        let word = cell.load_relaxed();
        if !word.is_unlocked() {
            // Already fat, or thin-held by some thread (owner-only writes
            // forbid us from touching the word).
            return Ok(false);
        }
        let idx = self.monitors.allocate(FatLock::new())?;
        let inflated = word.inflated(idx);
        if cell.try_cas(word, inflated, self.config.profile()).is_ok() {
            self.record_inflation(InflationCause::Hint);
            self.emit(
                None,
                Some(obj),
                TraceEventKind::Inflated {
                    cause: InflationCause::Hint,
                },
            );
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Ensures `obj`'s lock is fat, inflating if the caller holds it thin.
    ///
    /// # Errors
    ///
    /// [`SyncError::NotOwner`]/[`SyncError::NotLocked`] if the caller does
    /// not own the monitor (required for `wait`/`notify`).
    fn require_fat(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<&FatLock> {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            let monitor = self.monitor_of(word);
            if !monitor.holds(t) {
                return Err(if monitor.owner().is_some() {
                    SyncError::NotOwner
                } else {
                    SyncError::NotLocked
                });
            }
            return Ok(monitor);
        }
        if word.is_thin_owned_by(t.shifted()) {
            let locks = u32::from(word.thin_count()) + 1;
            return self.inflate_owned(obj, t, locks, InflationCause::WaitNotify);
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }

    /// The thread currently holding `obj`'s lock, thin or fat.
    ///
    /// Advisory: the answer can be stale by the time the caller acts on
    /// it. The deadlock watchdog uses this to build waits-for edges.
    pub fn owner_of(&self, obj: ObjRef) -> Option<ThreadIndex> {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            self.monitor_of(word).owner()
        } else {
            word.thin_owner()
        }
    }

    /// One acquisition attempt with no blocking and no spinning. Returns
    /// `Ok(true)` on success (including nesting), `Ok(false)` if the lock
    /// is held by another thread.
    fn try_lock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<bool> {
        let profile = self.config.profile();
        let cell = self.cell(obj);

        let old = cell.load_relaxed().with_lock_field_clear();
        let new = LockWord::from_bits(old.bits() | t.shifted());
        let fast = match self.inject(InjectionPoint::LockFastCas) {
            FaultAction::FailCas => false,
            FaultAction::Yield => {
                std::thread::yield_now();
                true
            }
            _ => true,
        };
        if fast && cell.try_cas(old, new, profile).is_ok() {
            self.record_lock(LockScenario::Unlocked, 1);
            self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
            return Ok(true);
        }

        let word = cell.load_relaxed();
        if word.can_nest(t.shifted()) {
            cell.store_relaxed(word.with_count_incremented());
            let depth = u32::from(word.thin_count()) + 2;
            self.record_lock(
                if depth <= SHALLOW_DEPTH {
                    LockScenario::NestedShallow
                } else {
                    LockScenario::NestedDeep
                },
                depth,
            );
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::AcquireNested { depth },
            );
            return Ok(true);
        }

        if word.is_fat() {
            let monitor = self.monitor_of(word);
            let contended = monitor.owner().is_some();
            if monitor.try_lock(t) {
                let depth = monitor.count();
                self.record_lock(
                    if depth > 1 {
                        if depth <= SHALLOW_DEPTH {
                            LockScenario::NestedShallow
                        } else {
                            LockScenario::NestedDeep
                        }
                    } else if contended {
                        LockScenario::FatContended
                    } else {
                        LockScenario::FatUncontended
                    },
                    depth,
                );
                self.emit(
                    Some(t.index()),
                    Some(obj),
                    TraceEventKind::AcquireFat { contended },
                );
                return Ok(true);
            }
            return Ok(false);
        }

        if word.is_thin_owned_by(t.shifted()) {
            // Owned by us at the maximum count: owner-only inflation
            // cannot fail spuriously, so this still counts as non-blocking.
            debug_assert_eq!(u32::from(word.thin_count()), MAX_THIN_COUNT);
            let locks = u32::from(word.thin_count()) + 2;
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::AcquireNested { depth: locks },
            );
            self.inflate_owned(obj, t, locks, InflationCause::CountOverflow)?;
            self.record_lock(LockScenario::NestedDeep, locks);
            return Ok(true);
        }

        if word.is_unlocked() {
            // The fast CAS raced with a concurrent unlock (or was
            // fault-injected away); one direct retry keeps `try_lock`
            // accurate on an object that is in fact free.
            let new = LockWord::from_bits(word.bits() | t.shifted());
            if cell.try_cas(word, new, profile).is_ok() {
                self.record_lock(LockScenario::Unlocked, 1);
                self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Deadline-bounded acquisition: spins with capped backoff on a thin
    /// contended lock, parks with a timeout on a fat one.
    ///
    /// Unlike the untimed path, giving up on a thin lock never inflates —
    /// a timed-out acquisition must leave no trace.
    fn lock_deadline_impl(&self, obj: ObjRef, t: ThreadToken, timeout: Duration) -> SyncResult<()> {
        if self.try_lock_impl(obj, t)? {
            return Ok(());
        }
        let now = Instant::now();
        let deadline = now
            .checked_add(timeout)
            .unwrap_or_else(|| now + Duration::from_secs(86_400 * 365));
        let mut waiting = BlockedOnGuard(None);
        waiting.publish(&self.registry, t, obj);
        // Jittered per-thread backoff (runtime::backoff): spinners that
        // collided in lockstep draw distinct pulse sequences, seeded by
        // the thread index so seeded replays stay deterministic.
        let mut backoff = Backoff::jittered(self.config.spin_policy(), u64::from(t.index().get()));
        loop {
            let word = self.cell(obj).load_acquire();
            if word.is_fat() {
                let monitor = self.monitor_of(word);
                let contended = monitor.owner().is_some();
                return match monitor.lock_n_deadline(t, 1, &self.registry, deadline) {
                    Ok(()) => {
                        let depth = monitor.count();
                        if let Some(s) = &self.stats {
                            s.record_lock(
                                if depth > 1 {
                                    if depth <= SHALLOW_DEPTH {
                                        LockScenario::NestedShallow
                                    } else {
                                        LockScenario::NestedDeep
                                    }
                                } else if contended {
                                    LockScenario::FatContended
                                } else {
                                    LockScenario::FatUncontended
                                },
                                depth,
                            );
                        }
                        self.emit(
                            Some(t.index()),
                            Some(obj),
                            TraceEventKind::AcquireFat { contended },
                        );
                        Ok(())
                    }
                    Err(SyncError::Timeout) => self.deadline_expired(obj, t),
                    Err(e) => Err(e),
                };
            }
            if self.try_lock_impl(obj, t)? {
                return Ok(());
            }
            // Acquisition is preferred over punctuality: the deadline is
            // only checked after a failed attempt.
            if Instant::now() >= deadline {
                return self.deadline_expired(obj, t);
            }
            if self.inject(InjectionPoint::LockSpin) == FaultAction::Yield {
                std::thread::yield_now();
            }
            backoff.snooze();
        }
    }

    /// A timed acquisition gave up: distinguish "slow owner" from "no
    /// owner will ever come" by walking the waits-for graph from here.
    fn deadline_expired(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireTimedOut);
        if let Some(report) = crate::watchdog::confirm_cycle(self, t.index(), obj) {
            let threads = u32::try_from(report.threads.len()).unwrap_or(u32::MAX);
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::DeadlockDetected { threads },
            );
            return Err(SyncError::DeadlockDetected);
        }
        Err(SyncError::Timeout)
    }
}

/// RAII publication of a thread's waits-for edge ([`ThreadRecord`]
/// `blocked_on`): set on the first blocking step, cleared on drop so every
/// exit path — acquisition, timeout, error — retracts the edge.
struct BlockedOnGuard(Option<Arc<ThreadRecord>>);

impl BlockedOnGuard {
    fn publish(&mut self, registry: &ThreadRegistry, t: ThreadToken, obj: ObjRef) {
        if self.0.is_none() {
            if let Ok(record) = registry.record(t.index()) {
                record.set_blocked_on(Some(obj));
                self.0 = Some(record);
            }
        }
    }
}

impl Drop for BlockedOnGuard {
    fn drop(&mut self) {
        if let Some(record) = &self.0 {
            record.set_blocked_on(None);
        }
    }
}

/// The registry exit sweep: force-releases every lock a dead thread left
/// behind, while its index is still in limbo (slot cleared, not yet
/// recyclable) so no live thread can be mistaken for the dead owner.
struct OrphanSweeper {
    heap: Arc<Heap>,
    monitors: Arc<MonitorTable>,
    tracer: Option<Arc<dyn TraceSink>>,
    injector: Option<Arc<dyn FaultInjector>>,
    profile: ArchProfile,
}

impl OrphanSweeper {
    fn emit_reclaim(&self, dead: ThreadIndex, obj: ObjRef, fat: bool) {
        if let Some(sink) = &self.tracer {
            sink.record(
                Some(dead),
                Some(obj),
                TraceEventKind::OrphanReclaimed { fat },
            );
        }
    }
}

impl ExitSweeper for OrphanSweeper {
    fn sweep_thread(&self, dead: ThreadIndex, registry: &ThreadRegistry) {
        if let Some(injector) = &self.injector {
            if injector.decide(InjectionPoint::RegistryRelease) == FaultAction::Yield {
                std::thread::yield_now();
            }
        }
        for obj in self.heap.iter() {
            let cell = self.heap.header(obj).lock_word();
            let word = cell.load_acquire();
            if word.is_fat() {
                let Some(idx) = word.monitor_index() else {
                    continue;
                };
                if let Some(monitor) = self.monitors.get(idx) {
                    if monitor.reclaim_orphan(dead, registry) {
                        self.emit_reclaim(dead, obj, true);
                    }
                }
            } else if word.thin_owner() == Some(dead) {
                // The owner is gone and owner-only writes mean nothing
                // else mutates a thin-held word, so the CAS can only lose
                // to a concurrent sweep of the same index.
                let cleared = word.with_lock_field_clear();
                if cell.try_cas(word, cleared, self.profile).is_ok() {
                    self.emit_reclaim(dead, obj, false);
                }
            }
        }
    }
}

/// Tiny helper so a debug assertion can compare indices without importing
/// the type in the hot module body.
#[derive(PartialEq, Debug)]
struct ThreadTokenIndex(u16);

impl ThreadTokenIndex {
    fn of(i: thinlock_runtime::lockword::ThreadIndex) -> Self {
        ThreadTokenIndex(i.get())
    }
}

/// Outlined trampolines for the Figure 6 "FnCall" variant.
mod outlined {
    use super::*;

    #[inline(never)]
    pub(super) fn lock<C: FastPathConfig>(
        this: &ThinLocks<C>,
        obj: ObjRef,
        t: ThreadToken,
    ) -> SyncResult<()> {
        this.lock_impl(obj, t)
    }

    #[inline(never)]
    pub(super) fn unlock<C: FastPathConfig>(
        this: &ThinLocks<C>,
        obj: ObjRef,
        t: ThreadToken,
    ) -> SyncResult<()> {
        this.unlock_impl(obj, t)
    }
}

impl<C: FastPathConfig> SyncProtocol for ThinLocks<C> {
    #[inline]
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if self.config.outlined() {
            outlined::lock(self, obj, t)
        } else {
            self.lock_impl(obj, t)
        }
    }

    #[inline]
    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if self.config.outlined() {
            outlined::unlock(self, obj, t)
        } else {
            self.unlock_impl(obj, t)
        }
    }

    fn try_lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<bool> {
        let acquired = self.try_lock_impl(obj, t)?;
        if !acquired {
            self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireTimedOut);
        }
        Ok(acquired)
    }

    fn lock_deadline(&self, obj: ObjRef, t: ThreadToken, timeout: Duration) -> SyncResult<()> {
        self.lock_deadline_impl(obj, t, timeout)
    }

    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        if let Some(s) = &self.stats {
            s.record_wait();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Wait);
        monitor.wait(t, &self.registry, timeout)
    }

    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if let Some(s) = &self.stats {
            s.record_notify();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Notify);
        self.reach(SchedPoint::Notify, obj);
        monitor.notify(t)
    }

    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if let Some(s) = &self.stats {
            s.record_notify();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Notify);
        self.reach(SchedPoint::Notify, obj);
        monitor.notify_all(t)
    }

    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            self.monitor_of(word).holds(t)
        } else {
            word.is_thin_owned_by(t.shifted())
        }
    }

    fn pre_inflate_hint(&self, obj: ObjRef) -> bool {
        let applied = self.pre_inflate(obj).unwrap_or(false);
        self.emit(None, Some(obj), TraceEventKind::PreInflateHint { applied });
        applied
    }

    fn trace_sink(&self) -> Option<&dyn TraceSink> {
        self.tracer.as_deref()
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn name(&self) -> &'static str {
        "ThinLock"
    }
}

impl<C: FastPathConfig> SyncBackend for ThinLocks<C> {
    fn monitor_probe(&self, obj: ObjRef) -> Option<MonitorProbe> {
        let monitor = self.monitor_for(obj)?;
        Some(MonitorProbe {
            owner: monitor.owner(),
            count: monitor.count(),
            entry_queue_len: monitor.entry_queue_len(),
            wait_set_len: monitor.wait_set_len(),
        })
    }

    fn in_wait_set(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.monitor_for(obj).is_some_and(|m| m.is_waiting(t))
    }

    // deflation_capable stays `false`: one-way inflation is this
    // protocol's contract, and the model checker enforces it.

    fn inflation_count(&self) -> u64 {
        self.monitors.len() as u64
    }

    fn monitors_live(&self) -> usize {
        // The table never recycles: every monitor ever allocated still
        // backs a fat word, so live == peak == allocated.
        self.monitors.len()
    }

    fn monitors_peak(&self) -> usize {
        self.monitors.len()
    }

    fn monitors_allocated(&self) -> u64 {
        self.monitors.len() as u64
    }
}

impl<C: FastPathConfig> fmt::Debug for ThinLocks<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThinLocks")
            .field("heap", &self.heap)
            .field("inflated", &self.monitors.len())
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;
    use thinlock_runtime::lockword::LockState;

    fn fresh(capacity: usize) -> ThinLocks {
        ThinLocks::with_capacity(capacity)
    }

    #[test]
    fn lock_unlock_restores_word_exactly() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        let before = p.lock_word(obj);
        p.lock(obj, t).unwrap();
        let held = p.lock_word(obj);
        assert_eq!(held.thin_owner().map(|o| o.get()), Some(t.index().get()));
        assert_eq!(held.thin_count(), 0);
        assert_eq!(held.header_bits(), before.header_bits());
        p.unlock(obj, t).unwrap();
        assert_eq!(p.lock_word(obj), before, "word restored bit-for-bit");
        assert_eq!(p.inflated_count(), 0);
    }

    #[test]
    fn nested_locking_counts_locks_minus_one() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        for depth in 1..=5u8 {
            p.lock(obj, t).unwrap();
            assert_eq!(p.lock_word(obj).thin_count(), depth - 1);
        }
        for depth in (1..=5u8).rev() {
            assert_eq!(p.lock_word(obj).thin_count(), depth - 1);
            p.unlock(obj, t).unwrap();
        }
        assert!(p.lock_word(obj).is_unlocked());
        assert_eq!(p.inflated_count(), 0, "nesting alone never inflates");
    }

    #[test]
    fn unlock_errors_mirror_java() {
        let p = fresh(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        assert_eq!(p.unlock(obj, ra.token()), Err(SyncError::NotLocked));
        p.lock(obj, ra.token()).unwrap();
        assert_eq!(p.unlock(obj, rb.token()), Err(SyncError::NotOwner));
        p.unlock(obj, ra.token()).unwrap();
    }

    #[test]
    fn count_overflow_inflates_at_257th_lock() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        for _ in 0..256 {
            p.lock(obj, t).unwrap();
        }
        assert!(p.lock_word(obj).is_thin_shape(), "256 locks still thin");
        assert_eq!(u32::from(p.lock_word(obj).thin_count()), 255);
        p.lock(obj, t).unwrap(); // the paper's "excessive" 257th
        assert!(p.lock_word(obj).is_fat());
        assert_eq!(p.inflated_count(), 1);
        // All 257 unlocks must succeed through the fat path.
        for _ in 0..257 {
            p.unlock(obj, t).unwrap();
        }
        assert!(!p.holds_lock(obj, t));
        assert!(p.lock_word(obj).is_fat(), "inflation is permanent");
        // And the lock remains usable.
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn header_bits_survive_every_transition() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        let hash = p.lock_word(obj).header_bits();
        for _ in 0..257 {
            p.lock(obj, t).unwrap();
            assert_eq!(p.lock_word(obj).header_bits(), hash);
        }
        for _ in 0..257 {
            p.unlock(obj, t).unwrap();
        }
        assert_eq!(p.lock_word(obj).header_bits(), hash);
    }

    #[test]
    fn wait_notify_inflates_and_works() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let waiter = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                assert!(p.lock_word(obj).is_thin_shape());
                let out = p.wait(obj, t, None).unwrap(); // inflates
                assert!(p.holds_lock(obj, t));
                p.unlock(obj, t).unwrap();
                out
            })
        };
        // Wait for the inflation caused by wait().
        while !p.lock_word(obj).is_fat() {
            thread::yield_now();
        }
        let r = p.registry().register().unwrap();
        let t = r.token();
        p.lock(obj, t).unwrap();
        p.notify(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified);
        assert_eq!(p.inflated_count(), 1);
    }

    #[test]
    fn wait_requires_ownership() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        assert_eq!(p.wait(obj, t, None).unwrap_err(), SyncError::NotLocked);
        assert_eq!(p.notify(obj, t).unwrap_err(), SyncError::NotLocked);
        assert_eq!(p.notify_all(obj, t).unwrap_err(), SyncError::NotLocked);
        // Not-owner on a fat lock.
        let rb = p.registry().register().unwrap();
        p.lock(obj, rb.token()).unwrap();
        p.notify(obj, rb.token()).unwrap(); // inflates via owner
        assert!(p.lock_word(obj).is_fat());
        assert_eq!(p.wait(obj, t, None).unwrap_err(), SyncError::NotOwner);
        p.unlock(obj, rb.token()).unwrap();
    }

    #[test]
    fn timed_wait_times_out() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        let out = p.wait(obj, t, Some(Duration::from_millis(25))).unwrap();
        assert_eq!(out, WaitOutcome::TimedOut);
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn contention_spins_then_inflates_exactly_once() {
        // Deterministic contention: the owner holds the lock across a
        // barrier so the contender is guaranteed to find it thin-held.
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let owner = {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                barrier.wait(); // contender may now start spinning
                thread::sleep(Duration::from_millis(30));
                p.unlock(obj, t).unwrap();
            })
        };
        let r = p.registry().register().unwrap();
        let t = r.token();
        barrier.wait();
        assert!(p.lock_word(obj).is_thin_shape());
        p.lock(obj, t).unwrap(); // spins, acquires, inflates
        assert!(p.lock_word(obj).is_fat(), "contention inflated the lock");
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        owner.join().unwrap();
        assert_eq!(p.inflated_count(), 1, "inflated exactly once");
    }

    #[test]
    fn mutual_exclusion_many_threads_one_object() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let total = Arc::new(AtomicU64::new(0));
        const THREADS: usize = 4;
        const ITERS: u64 = 300;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let p = Arc::clone(&p);
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                for _ in 0..ITERS {
                    p.lock(obj, t).unwrap();
                    let v = total.load(Ordering::Relaxed);
                    std::hint::spin_loop();
                    total.store(v + 1, Ordering::Relaxed);
                    p.unlock(obj, t).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), THREADS as u64 * ITERS);
        // Whether inflation occurred depends on the schedule, but the lock
        // must end fully released either way.
        let r = p.registry().register().unwrap();
        assert!(!p.holds_lock(obj, r.token()));
        assert!(p.inflated_count() <= 1);
    }

    #[test]
    fn independent_objects_do_not_interfere() {
        let p = fresh(16);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let objs: Vec<_> = (0..16).map(|_| p.heap().alloc().unwrap()).collect();
        for &o in &objs {
            p.lock(o, t).unwrap();
        }
        for &o in &objs {
            assert!(p.holds_lock(o, t));
        }
        for &o in &objs {
            p.unlock(o, t).unwrap();
            assert!(!p.holds_lock(o, t));
        }
    }

    #[test]
    fn stats_classify_scenarios() {
        let stats = Arc::new(LockStats::new());
        let p = ThinLocks::with_capacity(4).with_stats(Arc::clone(&stats));
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap(); // unlocked
        p.lock(obj, t).unwrap(); // nested depth 2
        p.lock(obj, t).unwrap(); // nested depth 3
        p.unlock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.scenario_counts[0], 1, "one first lock");
        assert_eq!(snap.scenario_counts[1], 2, "two shallow nested");
        assert_eq!(snap.depth_histogram[0], 1);
        assert_eq!(snap.depth_histogram[1], 1);
        assert_eq!(snap.depth_histogram[2], 1);
        assert_eq!(snap.unlocks_thin, 3);
        assert_eq!(snap.total_inflations(), 0);
    }

    #[test]
    fn variant_configs_behave_identically() {
        use crate::config::{StaticKernelCas, StaticMp, StaticUp};
        fn exercise<C: FastPathConfig>(p: ThinLocks<C>) {
            let r = p.registry().register().unwrap();
            let t = r.token();
            let obj = p.heap().alloc().unwrap();
            for _ in 0..3 {
                p.lock(obj, t).unwrap();
            }
            for _ in 0..3 {
                p.unlock(obj, t).unwrap();
            }
            assert!(p.lock_word(obj).is_unlocked());
        }
        let heap = || Arc::new(Heap::with_capacity(2));
        exercise(ThinLocks::with_config(
            heap(),
            ThreadRegistry::new(),
            StaticUp,
        ));
        exercise(ThinLocks::with_config(
            heap(),
            ThreadRegistry::new(),
            StaticMp,
        ));
        exercise(ThinLocks::with_config(
            heap(),
            ThreadRegistry::new(),
            StaticKernelCas,
        ));
        exercise(ThinLocks::with_config(
            heap(),
            ThreadRegistry::new(),
            DynamicConfig::default().with_cas_unlock(),
        ));
        exercise(ThinLocks::with_config(
            heap(),
            ThreadRegistry::new(),
            DynamicConfig::default().with_outlined_fast_path(),
        ));
    }

    #[test]
    fn fat_lock_reentrancy_after_inflation() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        p.notify(obj, t).unwrap(); // forces inflation
        assert!(p.lock_word(obj).is_fat());
        p.lock(obj, t).unwrap(); // nested on fat
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        assert!(!p.holds_lock(obj, t));
    }

    #[test]
    fn pre_inflation_hint_avoids_overflow_inflation() {
        let stats = Arc::new(LockStats::new());
        let p = ThinLocks::with_capacity(4).with_stats(Arc::clone(&stats));
        let obj = p.heap().alloc().unwrap();
        assert!(p.pre_inflate(obj).unwrap());
        assert!(p.lock_word(obj).is_fat());
        assert!(!p.pre_inflate(obj).unwrap(), "second hint is a no-op");
        let r = p.registry().register().unwrap();
        let t = r.token();
        // Nest past the thin-count limit: with the hint applied, no
        // overflow inflation ever fires mid-critical-path.
        for _ in 0..300 {
            p.lock(obj, t).unwrap();
        }
        for _ in 0..300 {
            p.unlock(obj, t).unwrap();
        }
        assert!(!p.holds_lock(obj, t));
        let snap = stats.snapshot();
        assert_eq!(snap.inflations, [0, 0, 0, 1], "only the hint inflation");
        assert_eq!(p.inflated_count(), 1);
    }

    #[test]
    fn pre_inflate_declines_while_thin_held() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, r.token()).unwrap();
        assert!(!p.pre_inflate(obj).unwrap(), "owner-only writes: decline");
        assert!(p.lock_word(obj).is_thin_shape());
        p.unlock(obj, r.token()).unwrap();
        // The protocol-level hint entry point reaches the same code.
        assert!(p.pre_inflate_hint(obj));
        assert!(p.lock_word(obj).is_fat());
    }

    #[test]
    fn lock_state_reporting() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        assert!(matches!(p.lock_word(obj).state(), LockState::Unlocked));
        p.lock(obj, t).unwrap();
        assert!(matches!(p.lock_word(obj).state(), LockState::Thin { .. }));
        p.notify(obj, t).unwrap();
        assert!(matches!(p.lock_word(obj).state(), LockState::Fat { .. }));
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn trace_sink_sees_protocol_transitions() {
        use std::sync::Mutex;

        #[derive(Debug, Default)]
        struct Recorder(Mutex<Vec<TraceEventKind>>);
        impl TraceSink for Recorder {
            fn record(&self, _t: Option<ThreadIndex>, _o: Option<ObjRef>, kind: TraceEventKind) {
                self.0.lock().unwrap().push(kind);
            }
        }

        let recorder = Arc::new(Recorder::default());
        let p = ThinLocks::with_capacity(4)
            .with_trace_sink(Arc::clone(&recorder) as Arc<dyn TraceSink>);
        assert!(p.trace_sink().is_some());
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();

        p.lock(obj, t).unwrap();
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        p.notify(obj, t).unwrap(); // still held once: inflates, WaitNotify
        p.unlock(obj, t).unwrap();

        let events = recorder.0.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                TraceEventKind::AcquireUnlocked,
                TraceEventKind::AcquireNested { depth: 2 },
                TraceEventKind::UnlockThin,
                // notify() re-acquires nothing: the lock inflates in
                // place, the monitor allocation is traced by the table,
                // then the notify itself is recorded.
                TraceEventKind::MonitorAllocated { index: 0 },
                TraceEventKind::Inflated {
                    cause: InflationCause::WaitNotify
                },
                TraceEventKind::Notify,
                TraceEventKind::UnlockFat,
            ]
        );
    }

    #[test]
    fn trace_sink_attributes_hint_inflation() {
        use std::sync::Mutex;

        #[derive(Debug, Default)]
        struct Recorder(Mutex<Vec<TraceEventKind>>);
        impl TraceSink for Recorder {
            fn record(&self, _t: Option<ThreadIndex>, _o: Option<ObjRef>, kind: TraceEventKind) {
                self.0.lock().unwrap().push(kind);
            }
        }

        let recorder = Arc::new(Recorder::default());
        let p = ThinLocks::with_capacity(4)
            .with_trace_sink(Arc::clone(&recorder) as Arc<dyn TraceSink>);
        let obj = p.heap().alloc().unwrap();
        assert!(p.pre_inflate_hint(obj));
        assert!(!p.pre_inflate_hint(obj), "already fat: not applied");
        let events = recorder.0.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                TraceEventKind::MonitorAllocated { index: 0 },
                TraceEventKind::Inflated {
                    cause: InflationCause::Hint
                },
                TraceEventKind::PreInflateHint { applied: true },
                TraceEventKind::PreInflateHint { applied: false },
            ]
        );
    }

    #[test]
    fn debug_formatting() {
        let p = fresh(1);
        let text = format!("{p:?}");
        assert!(text.contains("ThinLocks"));
        assert!(text.contains("inflated"));
    }

    #[test]
    fn try_lock_thin_nested_and_contended() {
        let p = fresh(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        assert_eq!(p.try_lock(obj, ra.token()), Ok(true), "uncontended");
        assert_eq!(p.try_lock(obj, ra.token()), Ok(true), "nested");
        assert_eq!(p.try_lock(obj, rb.token()), Ok(false), "held by other");
        assert!(p.lock_word(obj).is_thin_shape(), "try_lock never inflates");
        p.unlock(obj, ra.token()).unwrap();
        p.unlock(obj, ra.token()).unwrap();
        assert_eq!(p.try_lock(obj, rb.token()), Ok(true));
        p.unlock(obj, rb.token()).unwrap();
    }

    #[test]
    fn try_lock_on_fat_lock() {
        let p = fresh(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        p.pre_inflate(obj).unwrap();
        assert_eq!(p.try_lock(obj, ra.token()), Ok(true));
        assert_eq!(p.try_lock(obj, ra.token()), Ok(true), "fat re-entrant");
        assert_eq!(p.try_lock(obj, rb.token()), Ok(false));
        p.unlock(obj, ra.token()).unwrap();
        p.unlock(obj, ra.token()).unwrap();
        assert_eq!(p.try_lock(obj, rb.token()), Ok(true));
        p.unlock(obj, rb.token()).unwrap();
    }

    #[test]
    fn lock_deadline_times_out_thin_without_inflating() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let owner = {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                barrier.wait(); // contender starts its timed attempt
                barrier.wait(); // contender has timed out
                p.unlock(obj, t).unwrap();
            })
        };
        let r = p.registry().register().unwrap();
        let t = r.token();
        barrier.wait();
        let err = p.lock_deadline(obj, t, Duration::from_millis(40));
        assert_eq!(err, Err(SyncError::Timeout));
        assert!(
            p.lock_word(obj).is_thin_shape(),
            "a timed-out acquisition leaves no trace"
        );
        barrier.wait();
        owner.join().unwrap();
        // And afterwards the object is acquirable within any deadline.
        p.lock_deadline(obj, t, Duration::from_secs(5)).unwrap();
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn lock_deadline_times_out_on_fat_lock() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        p.pre_inflate(obj).unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let owner = {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                barrier.wait();
                barrier.wait();
                p.unlock(obj, t).unwrap();
            })
        };
        let r = p.registry().register().unwrap();
        let t = r.token();
        barrier.wait();
        assert_eq!(
            p.lock_deadline(obj, t, Duration::from_millis(40)),
            Err(SyncError::Timeout)
        );
        assert!(!p.holds_lock(obj, t));
        barrier.wait();
        owner.join().unwrap();
        p.lock_deadline(obj, t, Duration::from_secs(5)).unwrap();
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn deadline_prefers_acquisition_over_punctuality() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        // A zero timeout on a free lock still acquires.
        p.lock_deadline(obj, t, Duration::ZERO).unwrap();
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn timed_acquisition_emits_timeout_event() {
        use std::sync::Mutex;

        #[derive(Debug, Default)]
        struct Recorder(Mutex<Vec<TraceEventKind>>);
        impl TraceSink for Recorder {
            fn record(&self, _t: Option<ThreadIndex>, _o: Option<ObjRef>, kind: TraceEventKind) {
                self.0.lock().unwrap().push(kind);
            }
        }

        let recorder = Arc::new(Recorder::default());
        let p = Arc::new(fresh(4).with_trace_sink(Arc::clone(&recorder) as Arc<dyn TraceSink>));
        let obj = p.heap().alloc().unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let owner = {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                barrier.wait();
                barrier.wait();
                p.unlock(obj, t).unwrap();
            })
        };
        let r = p.registry().register().unwrap();
        let t = r.token();
        barrier.wait();
        assert_eq!(p.try_lock(obj, t), Ok(false));
        assert_eq!(
            p.lock_deadline(obj, t, Duration::from_millis(30)),
            Err(SyncError::Timeout)
        );
        barrier.wait();
        owner.join().unwrap();
        let timeouts = recorder
            .0
            .lock()
            .unwrap()
            .iter()
            .filter(|k| matches!(k, TraceEventKind::AcquireTimedOut))
            .count();
        assert_eq!(timeouts, 2, "one per failed try, one per expired deadline");
    }

    #[test]
    fn orphaned_thin_lock_is_reclaimed_on_registration_drop() {
        let p = fresh(4);
        p.enable_orphan_recovery();
        let obj = p.heap().alloc().unwrap();
        let r = p.registry().register().unwrap();
        let t = r.token();
        p.lock(obj, t).unwrap();
        p.lock(obj, t).unwrap(); // nested: count survives until the sweep
        assert!(p.lock_word(obj).is_thin_shape());
        drop(r); // thread "dies" while owning the thin lock
        assert!(
            p.lock_word(obj).is_unlocked(),
            "sweep cleared the orphaned thin lock"
        );
        // A fresh registration — which recycles the dead index — can
        // acquire the previously-orphaned object.
        let r2 = p.registry().register().unwrap();
        assert_eq!(r2.token().index().get(), t.index().get(), "index reused");
        p.lock(obj, r2.token()).unwrap();
        assert!(p.holds_lock(obj, r2.token()));
        p.unlock(obj, r2.token()).unwrap();
    }

    #[test]
    fn orphaned_fat_lock_is_reclaimed_and_queue_woken() {
        let p = Arc::new(fresh(4).with_orphan_recovery());
        let obj = p.heap().alloc().unwrap();
        let r = p.registry().register().unwrap();
        let t = r.token();
        p.lock(obj, t).unwrap();
        p.notify(obj, t).unwrap(); // inflates
        assert!(p.lock_word(obj).is_fat());
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let contender = {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                barrier.wait();
                p.lock(obj, t).unwrap(); // blocks until the sweep releases
                p.unlock(obj, t).unwrap();
            })
        };
        barrier.wait();
        thread::sleep(Duration::from_millis(30)); // let the contender park
        drop(r); // owner dies; sweep reclaims and wakes the queue
        contender.join().unwrap();
        let r2 = p.registry().register().unwrap();
        assert!(!p.holds_lock(obj, r2.token()));
    }

    #[test]
    fn injected_cas_failure_routes_through_slow_path() {
        use std::sync::atomic::AtomicUsize;

        #[derive(Debug, Default)]
        struct FailFastCas(AtomicUsize);
        impl FaultInjector for FailFastCas {
            fn decide(&self, point: InjectionPoint) -> FaultAction {
                if point == InjectionPoint::LockFastCas {
                    self.0.fetch_add(1, Ordering::Relaxed);
                    FaultAction::FailCas
                } else {
                    FaultAction::Proceed
                }
            }
        }

        let injector = Arc::new(FailFastCas::default());
        let p = ThinLocks::with_capacity(4)
            .with_fault_injector(Arc::clone(&injector) as Arc<dyn FaultInjector>);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap(); // fast CAS suppressed, slow path wins
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        assert!(p.lock_word(obj).is_unlocked());
        assert!(
            injector.0.load(Ordering::Relaxed) >= 1,
            "injector consulted"
        );
    }

    #[test]
    fn contention_inflation_degrades_gracefully_when_table_full() {
        // Exhaust the monitor table, then force the contended-acquire
        // path: the acquisition must succeed and stay thin.
        #[derive(Debug)]
        struct ExhaustMonitors;
        impl FaultInjector for ExhaustMonitors {
            fn decide(&self, point: InjectionPoint) -> FaultAction {
                if point == InjectionPoint::MonitorAllocate {
                    FaultAction::Exhaust
                } else {
                    FaultAction::Proceed
                }
            }
        }

        let p =
            Arc::new(ThinLocks::with_capacity(4).with_fault_injector(Arc::new(ExhaustMonitors)));
        let obj = p.heap().alloc().unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let owner = {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                barrier.wait();
                thread::sleep(Duration::from_millis(30));
                p.unlock(obj, t).unwrap();
            })
        };
        let r = p.registry().register().unwrap();
        let t = r.token();
        barrier.wait();
        p.lock(obj, t).unwrap(); // spins; post-contention inflation fails
        assert!(p.holds_lock(obj, t));
        assert!(
            p.lock_word(obj).is_thin_shape(),
            "acquisition survived a full monitor table by staying thin"
        );
        p.unlock(obj, t).unwrap();
        owner.join().unwrap();
        assert_eq!(p.inflated_count(), 0);
    }
}
