//! FIFO admission tickets shared by the [`fissile`](crate::fissile) and
//! [`hapax`](crate::hapax) backends.
//!
//! Both protocols keep the object's lock word bit-identical to the thin
//! protocol and move their queueing state entirely into this side
//! table, so every word-shape invariant (header preservation, one-way
//! inflation, word conformance in the model checker) holds unchanged.
//! Per object the ledger is a classic ticket lock split in two:
//!
//! * `next` — the arrival counter; one `fetch_add` per blocking
//!   acquisition ("constant-time arrival").
//! * `serving` — the grant counter; a ticket is *admitted* once
//!   `serving` has caught up with it (wrapping compare, so the u32
//!   counters can run forever).
//! * `admitted` — the ticket of the ticketed thread currently holding
//!   the word, stored as `ticket + 1` in 64 bits so the value `0`
//!   unambiguously means "no ticketed owner" even after `u32` ticket
//!   wraparound.
//!
//! The `admitted` cell carries the hand-off obligation across the
//! release: a releaser (the owner itself, a barging `try_lock` winner
//! that slipped in between the owner's word-clear and its bookkeeping,
//! or the orphan sweeper acting for a dead owner) snapshots `admitted`
//! *before* clearing the word and then retires the snapshot with a
//! compare-exchange. The compare-exchange makes the serving bump
//! exactly-once no matter how many releasers race — the invariant the
//! chaos kill-runs lean on.
//!
//! Admission enabledness also has to be visible to the model checker,
//! which must not grant a spin step to a thread whose ticket has not
//! come up. Each blocked thread therefore publishes `(object, ticket)`
//! in a per-thread slot while it waits; the backends' `spin_enabled`
//! overrides read it back.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::registry::ThreadToken;

/// One object's ticket counters. See the module docs for the roles.
#[derive(Debug, Default)]
struct TicketState {
    /// Arrival counter: the next ticket to hand out.
    next: AtomicU32,
    /// Grant counter: tickets strictly below it (wrapping) are retired;
    /// the ticket equal to it is the one currently admitted.
    serving: AtomicU32,
    /// `ticket + 1` of the ticketed thread holding the word, 0 if none.
    admitted: AtomicU64,
}

/// The side table: per-object ticket counters plus per-thread
/// wait-publication slots, sized once at backend construction.
#[derive(Debug)]
pub(crate) struct TicketLedger {
    objects: Box<[TicketState]>,
    /// Indexed by `ThreadIndex::get()`; packs `(obj.index()+1) << 32 |
    /// ticket` while that thread blocks on an un-admitted ticket, 0
    /// otherwise.
    slots: Box<[AtomicU64]>,
}

impl TicketLedger {
    /// A ledger for `objects` heap slots and thread indices up to
    /// `max_threads` (inclusive — index 0 is never issued but keeps the
    /// slot addressing direct).
    pub(crate) fn new(objects: usize, max_threads: u16) -> Self {
        TicketLedger {
            objects: (0..objects).map(|_| TicketState::default()).collect(),
            slots: (0..usize::from(max_threads) + 1)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    fn state(&self, obj: ObjRef) -> &TicketState {
        &self.objects[obj.index()]
    }

    /// Draws the next arrival ticket for `obj` — one wrapping
    /// `fetch_add`, the constant-time arrival step.
    pub(crate) fn take_ticket(&self, obj: ObjRef) -> u32 {
        self.state(obj).next.fetch_add(1, Ordering::AcqRel)
    }

    /// True once `serving` has reached `ticket` (wrapping compare):
    /// the ticket holder may now contend for the word.
    pub(crate) fn is_admitted(&self, obj: ObjRef, ticket: u32) -> bool {
        let serving = self.state(obj).serving.load(Ordering::Acquire);
        serving.wrapping_sub(ticket) as i32 >= 0
    }

    /// Records that the admitted `ticket` won the word, arming the
    /// hand-off obligation its release will retire.
    pub(crate) fn record_admitted(&self, obj: ObjRef, ticket: u32) {
        self.state(obj)
            .admitted
            .store(u64::from(ticket) + 1, Ordering::Release);
    }

    /// Snapshot of the pending hand-off obligation — call *before*
    /// clearing the lock word, so the value is either 0 or the
    /// obligation this release must retire (never a future owner's).
    pub(crate) fn admitted_snapshot(&self, obj: ObjRef) -> u64 {
        self.state(obj).admitted.load(Ordering::Acquire)
    }

    /// Retires a nonzero [`admitted_snapshot`](Self::admitted_snapshot)
    /// and bumps `serving`, admitting the next ticket. Returns `true`
    /// if this call won the retirement; racing releasers (owner vs.
    /// barger vs. orphan sweeper) agree via the compare-exchange that
    /// exactly one of them bumps.
    pub(crate) fn retire_admitted(&self, obj: ObjRef, snapshot: u64) -> bool {
        if snapshot == 0 {
            return false;
        }
        let state = self.state(obj);
        if state
            .admitted
            .compare_exchange(snapshot, 0, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            state.serving.fetch_add(1, Ordering::AcqRel);
            true
        } else {
            false
        }
    }

    /// Tickets issued but not yet retired. 0 means the queue has fully
    /// drained — the fissile re-cohesion precondition.
    pub(crate) fn outstanding(&self, obj: ObjRef) -> u32 {
        let state = self.state(obj);
        let next = state.next.load(Ordering::Acquire);
        let serving = state.serving.load(Ordering::Acquire);
        next.wrapping_sub(serving)
    }

    /// Publishes "thread `t` is blocked on `ticket` for `obj`" for the
    /// model checker's enabledness probe.
    pub(crate) fn publish_wait(&self, t: ThreadToken, obj: ObjRef, ticket: u32) {
        if let Some(slot) = self.slots.get(usize::from(t.index().get())) {
            let packed = ((obj.index() as u64 + 1) << 32) | u64::from(ticket);
            slot.store(packed, Ordering::Release);
        }
    }

    /// Clears the thread's wait publication (on word win, fat
    /// diversion, or error exit).
    pub(crate) fn clear_wait(&self, t: ThreadToken) {
        if let Some(slot) = self.slots.get(usize::from(t.index().get())) {
            slot.store(0, Ordering::Release);
        }
    }

    /// Clears a slot by raw thread index — the orphan sweeper's form,
    /// run while the dead thread's index is in limbo so a recycled
    /// index never inherits a stale publication.
    pub(crate) fn clear_wait_index(&self, index: thinlock_runtime::lockword::ThreadIndex) {
        if let Some(slot) = self.slots.get(usize::from(index.get())) {
            slot.store(0, Ordering::Release);
        }
    }

    /// The ticket thread `t` has published for `obj`, if any.
    pub(crate) fn waiting_ticket(&self, t: ThreadToken, obj: ObjRef) -> Option<u32> {
        let slot = self.slots.get(usize::from(t.index().get()))?;
        let packed = slot.load(Ordering::Acquire);
        if packed >> 32 == obj.index() as u64 + 1 {
            Some(packed as u32)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinlock_runtime::registry::ThreadRegistry;

    fn obj(i: usize) -> ObjRef {
        ObjRef::from_index(i)
    }

    #[test]
    fn tickets_admit_in_fifo_order() {
        let ledger = TicketLedger::new(2, 8);
        let a = ledger.take_ticket(obj(0));
        let b = ledger.take_ticket(obj(0));
        assert_eq!((a, b), (0, 1));
        assert!(ledger.is_admitted(obj(0), a));
        assert!(!ledger.is_admitted(obj(0), b));
        ledger.record_admitted(obj(0), a);
        let snap = ledger.admitted_snapshot(obj(0));
        assert!(ledger.retire_admitted(obj(0), snap));
        assert!(ledger.is_admitted(obj(0), b));
        assert_eq!(ledger.outstanding(obj(0)), 1);
    }

    #[test]
    fn retirement_is_exactly_once_across_racing_releasers() {
        let ledger = TicketLedger::new(1, 8);
        let t = ledger.take_ticket(obj(0));
        ledger.record_admitted(obj(0), t);
        let snap = ledger.admitted_snapshot(obj(0));
        // Owner and a barger both snapshotted the same obligation; only
        // one retirement may bump `serving`.
        assert!(ledger.retire_admitted(obj(0), snap));
        assert!(!ledger.retire_admitted(obj(0), snap));
        assert!(!ledger.retire_admitted(obj(0), 0));
        assert_eq!(ledger.outstanding(obj(0)), 0);
    }

    #[test]
    fn admission_survives_u32_wraparound() {
        let ledger = TicketLedger::new(1, 8);
        let state = ledger.state(obj(0));
        state.next.store(u32::MAX, Ordering::Relaxed);
        state.serving.store(u32::MAX, Ordering::Relaxed);
        let t = ledger.take_ticket(obj(0));
        assert_eq!(t, u32::MAX);
        assert!(ledger.is_admitted(obj(0), t));
        ledger.record_admitted(obj(0), t);
        assert!(ledger.retire_admitted(obj(0), ledger.admitted_snapshot(obj(0))));
        let wrapped = ledger.take_ticket(obj(0));
        assert_eq!(wrapped, 0, "arrival counter wrapped");
        assert!(ledger.is_admitted(obj(0), wrapped));
        assert_eq!(ledger.outstanding(obj(0)), 1);
    }

    #[test]
    fn wait_slots_round_trip_per_thread_and_object() {
        let ledger = TicketLedger::new(4, 8);
        let registry = ThreadRegistry::new();
        let ra = registry.register().unwrap();
        let rb = registry.register().unwrap();
        ledger.publish_wait(ra.token(), obj(2), 7);
        assert_eq!(ledger.waiting_ticket(ra.token(), obj(2)), Some(7));
        assert_eq!(ledger.waiting_ticket(ra.token(), obj(1)), None);
        assert_eq!(ledger.waiting_ticket(rb.token(), obj(2)), None);
        ledger.publish_wait(rb.token(), obj(0), 0);
        assert_eq!(ledger.waiting_ticket(rb.token(), obj(0)), Some(0));
        ledger.clear_wait(ra.token());
        assert_eq!(ledger.waiting_ticket(ra.token(), obj(2)), None);
    }
}
