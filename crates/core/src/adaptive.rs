//! Adaptive locks: a composite backend that picks a per-object
//! strategy — the thin-style cohered fast path or FIFO ticket
//! admission — from observed contention.
//!
//! This is a thin policy shell over [`FissileLocks`]: fissile already
//! carries *both* strategies and a reversible switch between them
//! (fission and re-cohesion), so "adaptive" reduces to deciding, per
//! object, where the switch should rest:
//!
//! * Objects never classified stay fully reactive — short contention
//!   bursts fission and re-cohere exactly as fissile does on its own.
//! * Objects a contention profile marks as persistently contended are
//!   [pinned](AdaptiveLocks::pin_fifo) into FIFO mode, skipping the
//!   spin-then-fission detour on every future conflict; a pin is
//!   released ([`release_fifo`](AdaptiveLocks::release_fifo)) if a
//!   later profile disagrees.
//!
//! The *derivation* of the pin set from an observed
//! `ContentionProfile` deliberately does not live here: the core crate
//! sits below the observability crate in the dependency order, so
//! profile → plan mapping ships with the consumer (see
//! `thinlock-bench`'s fairness pipeline, which records a profile under
//! burst load, derives a plan, applies it through
//! [`pin_fifo`](AdaptiveLocks::pin_fifo), and re-measures). This layer
//! only guarantees the mechanism: pins persist across queue drains,
//! and every harness seam (stats, trace, faults, schedule, orphan
//! sweep) is the fissile one underneath.
//!
//! ```
//! use thinlock::AdaptiveLocks;
//! use thinlock_runtime::protocol::SyncProtocol;
//!
//! let locks = AdaptiveLocks::with_capacity(8);
//! let reg = locks.registry().register()?;
//! let me = reg.token();
//! let hot = locks.heap().alloc()?;
//!
//! locks.pin_fifo(hot);             // policy: this object is contended
//! locks.lock(hot, me)?;            // FIFO ticket, no spin detour
//! locks.unlock(hot, me)?;
//! assert!(locks.pinned(hot), "pins survive queue drains");
//! locks.release_fifo(hot);         // policy changed its mind
//! assert!(!locks.is_fissioned(hot));
//! # Ok::<(), thinlock_runtime::SyncError>(())
//! ```

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use thinlock_monitor::FatLock;
use thinlock_runtime::backend::{MonitorProbe, SyncBackend};
use thinlock_runtime::error::SyncResult;
use thinlock_runtime::events::TraceSink;
use thinlock_runtime::fault::FaultInjector;
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::lockword::LockWord;
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ThreadRegistry, ThreadToken};
use thinlock_runtime::schedule::Schedule;
use thinlock_runtime::stats::LockStats;

use crate::fissile::FissileLocks;

/// The adaptive composite backend. All synchronization semantics are
/// [`FissileLocks`]'s; this type adds only the pin-policy surface and
/// its own backend identity.
pub struct AdaptiveLocks {
    inner: FissileLocks,
}

impl AdaptiveLocks {
    /// Creates a protocol over a fresh heap of `capacity` objects.
    pub fn with_capacity(capacity: usize) -> Self {
        AdaptiveLocks {
            inner: FissileLocks::with_capacity(capacity),
        }
    }

    /// Creates a protocol over an existing heap and registry.
    pub fn new(heap: Arc<Heap>, registry: ThreadRegistry) -> Self {
        AdaptiveLocks {
            inner: FissileLocks::new(heap, registry),
        }
    }

    /// Attaches statistics counters (`ThinLocks::with_stats` discipline).
    #[must_use]
    pub fn with_stats(self, stats: Arc<LockStats>) -> Self {
        AdaptiveLocks {
            inner: self.inner.with_stats(stats),
        }
    }

    /// Attaches an event sink for the full transition stream.
    #[must_use]
    pub fn with_trace_sink(self, sink: Arc<dyn TraceSink>) -> Self {
        AdaptiveLocks {
            inner: self.inner.with_trace_sink(sink),
        }
    }

    /// Attaches a fault injector (propagated through the full stack).
    #[must_use]
    pub fn with_fault_injector(self, injector: Arc<dyn FaultInjector>) -> Self {
        AdaptiveLocks {
            inner: self.inner.with_fault_injector(injector),
        }
    }

    /// Attaches a cooperative schedule (model checker).
    #[must_use]
    pub fn with_schedule(self, schedule: Arc<dyn Schedule>) -> Self {
        AdaptiveLocks {
            inner: self.inner.with_schedule(schedule),
        }
    }

    /// Installs the orphaned-lock sweeper on this protocol's registry.
    #[must_use]
    pub fn with_orphan_recovery(self) -> Self {
        AdaptiveLocks {
            inner: self.inner.with_orphan_recovery(),
        }
    }

    /// Non-consuming form of [`AdaptiveLocks::with_orphan_recovery`].
    pub fn enable_orphan_recovery(&self) {
        self.inner.enable_orphan_recovery();
    }

    /// Number of locks inflated so far (monitors allocated).
    pub fn inflated_count(&self) -> usize {
        self.inner.inflated_count()
    }

    /// The raw lock word of `obj` — diagnostics and tests.
    pub fn lock_word(&self, obj: ObjRef) -> LockWord {
        self.inner.lock_word(obj)
    }

    /// The fat monitor of `obj`, if its lock has inflated.
    pub fn monitor_for(&self, obj: ObjRef) -> Option<&FatLock> {
        self.inner.monitor_for(obj)
    }

    /// True while `obj` is in FIFO mode (reactive fission or a pin).
    pub fn is_fissioned(&self, obj: ObjRef) -> bool {
        self.inner.is_fissioned(obj)
    }

    /// Pins `obj` into FIFO mode — the policy's "persistently
    /// contended" verdict. Exempt from re-cohesion until
    /// [`release_fifo`](AdaptiveLocks::release_fifo).
    pub fn pin_fifo(&self, obj: ObjRef) {
        self.inner.pin_fifo(obj);
    }

    /// Releases a pin, restoring the reactive cohered fast path.
    pub fn release_fifo(&self, obj: ObjRef) {
        self.inner.release_fifo(obj);
    }

    /// True while `obj` is pinned by the policy.
    pub fn pinned(&self, obj: ObjRef) -> bool {
        self.inner.pinned(obj)
    }

    /// Pre-inflation hint, identical to the thin backend's.
    ///
    /// # Errors
    ///
    /// [`SyncError::MonitorIndexExhausted`](thinlock_runtime::SyncError::MonitorIndexExhausted)
    /// if the monitor table is full.
    pub fn pre_inflate(&self, obj: ObjRef) -> SyncResult<bool> {
        self.inner.pre_inflate(obj)
    }
}

impl SyncProtocol for AdaptiveLocks {
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.inner.lock(obj, t)
    }

    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.inner.unlock(obj, t)
    }

    fn try_lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<bool> {
        self.inner.try_lock(obj, t)
    }

    fn lock_deadline(&self, obj: ObjRef, t: ThreadToken, timeout: Duration) -> SyncResult<()> {
        self.inner.lock_deadline(obj, t, timeout)
    }

    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        self.inner.wait(obj, t, timeout)
    }

    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.inner.notify(obj, t)
    }

    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.inner.notify_all(obj, t)
    }

    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.inner.holds_lock(obj, t)
    }

    fn pre_inflate_hint(&self, obj: ObjRef) -> bool {
        self.inner.pre_inflate_hint(obj)
    }

    fn pin_fifo_hint(&self, obj: ObjRef) -> bool {
        self.pin_fifo(obj);
        true
    }

    fn trace_sink(&self) -> Option<&dyn TraceSink> {
        self.inner.trace_sink()
    }

    fn heap(&self) -> &Heap {
        self.inner.heap()
    }

    fn registry(&self) -> &ThreadRegistry {
        self.inner.registry()
    }

    fn name(&self) -> &'static str {
        "Adaptive"
    }
}

impl SyncBackend for AdaptiveLocks {
    fn monitor_probe(&self, obj: ObjRef) -> Option<MonitorProbe> {
        self.inner.monitor_probe(obj)
    }

    fn in_wait_set(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.inner.in_wait_set(obj, t)
    }

    fn spin_enabled(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.inner.spin_enabled(obj, t)
    }

    fn inflation_count(&self) -> u64 {
        self.inner.inflation_count()
    }

    fn monitors_live(&self) -> usize {
        self.inner.monitors_live()
    }

    fn monitors_peak(&self) -> usize {
        self.inner.monitors_peak()
    }

    fn monitors_allocated(&self) -> u64 {
        self.inner.monitors_allocated()
    }
}

impl fmt::Debug for AdaptiveLocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveLocks")
            .field("inner", &self.inner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn identity_is_adaptive_semantics_are_fissile() {
        let p = AdaptiveLocks::with_capacity(4);
        assert_eq!(p.name(), "Adaptive");
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        let before = p.lock_word(obj);
        p.lock(obj, t).unwrap();
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        assert_eq!(p.lock_word(obj), before);
        assert_eq!(p.inflated_count(), 0);
    }

    #[test]
    fn pins_route_lockers_through_the_queue_and_persist() {
        let p = AdaptiveLocks::with_capacity(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.pin_fifo(obj);
        assert!(p.pinned(obj) && p.is_fissioned(obj));
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        assert!(p.pinned(obj), "queue drain does not release a pin");
        p.release_fifo(obj);
        assert!(!p.is_fissioned(obj));
        // Back on the cohered fast path.
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn unpinned_objects_stay_reactive() {
        let p = AdaptiveLocks::with_capacity(4);
        let obj = p.heap().alloc().unwrap();
        // Manual fission (what budget exhaustion does) still re-coheres:
        // only pins are sticky.
        let r = p.registry().register().unwrap();
        let t = r.token();
        assert!(p.inner.fission(obj));
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        assert!(!p.is_fissioned(obj), "reactive fission drained away");
    }

    #[test]
    fn orphan_sweep_works_through_the_wrapper() {
        let p = Arc::new(AdaptiveLocks::with_capacity(4).with_orphan_recovery());
        let obj = p.heap().alloc().unwrap();
        p.pin_fifo(obj);
        {
            let r = p.registry().register().unwrap();
            p.lock(obj, r.token()).unwrap();
            // Dies owning the pinned lock.
        }
        assert!(p.lock_word(obj).is_unlocked());
        assert!(p.pinned(obj), "sweep retires the ticket but keeps the pin");
        let handle = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                p.unlock(obj, t).unwrap();
            })
        };
        handle.join().unwrap();
    }
}
