//! A deflating, park-based variant of thin locks — the ablation of two of
//! the paper's design choices.
//!
//! The paper fixes (a) **spin-to-inflate** under contention and (b)
//! **one-way inflation** ("once an object's lock is inflated, it remains
//! inflated for the lifetime of the object"), arguing that locality of
//! contention amortizes both. The follow-up work by Onodera and Kawachiya
//! (the *Tasuki lock*, OOPSLA '99 — Onodera is thanked in this paper's
//! acknowledgements) showed both choices can be relaxed. [`TasukiLocks`]
//! implements that relaxation so the benches can measure what the
//! original design gives up and gains:
//!
//! * **No spinning.** A contender announces itself by setting a
//!   *flat-lock-contention* (flc) bit — kept in the object's *second*
//!   header word so the lock word's owner-only-write discipline is
//!   untouched — enqueues itself in a lobby, and parks. The owner's
//!   unlock checks the flc bit after its releasing store (with a
//!   Dekker-style `SeqCst` fence pairing so a wakeup can never be lost)
//!   and wakes the lobby.
//! * **Deflation.** When a fat unlock finds the monitor completely quiet
//!   (last nesting level, empty entry queue, empty wait set), it restores
//!   the thin unlocked word before releasing the monitor. Because a
//!   racing thread may still hold a reference to the old monitor, the fat
//!   locking path *revalidates* the lock word after acquiring the monitor
//!   and retries if the object has been deflated (or re-inflated to a
//!   different monitor) in the meantime. Monitor indices are never
//!   reused, so revalidation is ABA-free.
//!
//! The cost of all this is exactly what the paper predicted when it chose
//! simplicity: an extra fence + flag check on every unlock, a retry loop
//! in the fat path, and the possibility of inflate/deflate thrashing. The
//! benefit is that a lock which is contended once and then used
//! single-threaded returns to thin-lock speed — see the `ablation`
//! section of the `reproduce` binary.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{fence, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use thinlock_monitor::{FatLock, MonitorTable};
use thinlock_runtime::arch::{ArchProfile, LockWordCell};
use thinlock_runtime::backend::{MonitorProbe, SyncBackend};
use thinlock_runtime::error::{SyncError, SyncResult};
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::lockword::{LockWord, ThreadIndex, MAX_THIN_COUNT};
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ThreadRegistry, ThreadToken};

/// Bit 0 of the auxiliary header word: "a thread is parked waiting for
/// this object's flat lock". Lives outside the lock word so that only the
/// owner ever writes the lock word, exactly as in the base protocol.
const FLC_BIT: u32 = 1;

/// Monitor-table head-room: a deflating lock can inflate many times, so
/// unlike the base protocol the table needs more slots than objects.
/// Indices are never reused (revalidation relies on that), so the table
/// bounds the total number of inflations over the protocol's lifetime.
const INFLATIONS_PER_OBJECT: usize = 64;

/// Threads parked waiting for flat locks, keyed by object index.
#[derive(Debug, Default)]
struct Lobby {
    waiting: Mutex<HashMap<usize, Vec<ThreadIndex>>>,
}

impl Lobby {
    fn enqueue(&self, obj: ObjRef, me: ThreadIndex) {
        self.waiting
            .lock()
            .expect("lobby poisoned")
            .entry(obj.index())
            .or_default()
            .push(me);
    }

    /// Removes `me` from the queue; returns true if the queue is now empty
    /// (caller may clear the flc bit while we still hold the lobby lock —
    /// a new contender re-sets it *after* enqueueing, so no clear is lost).
    fn retract(&self, obj: ObjRef, me: ThreadIndex, aux: &std::sync::atomic::AtomicU32) {
        let mut map = self.waiting.lock().expect("lobby poisoned");
        if let Some(q) = map.get_mut(&obj.index()) {
            q.retain(|&x| x != me);
            if q.is_empty() {
                map.remove(&obj.index());
                aux.fetch_and(!FLC_BIT, Ordering::SeqCst);
            }
        }
    }

    /// Drains and wakes every waiter for `obj`, clearing the flc bit.
    fn wake_all(&self, obj: ObjRef, aux: &std::sync::atomic::AtomicU32, registry: &ThreadRegistry) {
        let drained = {
            let mut map = self.waiting.lock().expect("lobby poisoned");
            let drained = map.remove(&obj.index()).unwrap_or_default();
            if map.get(&obj.index()).is_none() {
                aux.fetch_and(!FLC_BIT, Ordering::SeqCst);
            }
            drained
        };
        for idx in drained {
            if let Ok(rec) = registry.record(idx) {
                rec.parker().unpark();
            }
        }
    }
}

/// Thin locks with park-based contention and deflation (Tasuki-style).
///
/// Implements the same [`SyncProtocol`] as [`ThinLocks`](crate::ThinLocks);
/// use it as a drop-in replacement when workloads have *phased* contention
/// (contended for a while, then private again).
///
/// # Example
///
/// ```
/// use thinlock::tasuki::TasukiLocks;
/// use thinlock_runtime::protocol::SyncProtocol;
///
/// let locks = TasukiLocks::with_capacity(8);
/// let reg = locks.registry().register()?;
/// let obj = locks.heap().alloc()?;
/// locks.lock(obj, reg.token())?;
/// locks.unlock(obj, reg.token())?;
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
pub struct TasukiLocks {
    heap: Arc<Heap>,
    registry: ThreadRegistry,
    monitors: MonitorTable,
    lobby: Lobby,
    profile: ArchProfile,
    inflations: std::sync::atomic::AtomicU64,
    deflations: std::sync::atomic::AtomicU64,
}

impl TasukiLocks {
    /// Creates a protocol over a fresh heap of `capacity` objects.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::new(
            Arc::new(Heap::with_capacity(capacity)),
            ThreadRegistry::new(),
        )
    }

    /// Creates a protocol over an existing heap and registry.
    pub fn new(heap: Arc<Heap>, registry: ThreadRegistry) -> Self {
        let monitors =
            MonitorTable::with_capacity(heap.capacity().saturating_mul(INFLATIONS_PER_OBJECT));
        TasukiLocks {
            heap,
            registry,
            monitors,
            lobby: Lobby::default(),
            profile: ArchProfile::PowerPcMp,
            inflations: std::sync::atomic::AtomicU64::new(0),
            deflations: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Total inflations performed so far.
    pub fn inflation_count(&self) -> u64 {
        self.inflations.load(Ordering::Relaxed)
    }

    /// Total deflations performed so far.
    pub fn deflation_count(&self) -> u64 {
        self.deflations.load(Ordering::Relaxed)
    }

    /// The raw lock word of `obj` (diagnostics and tests).
    pub fn lock_word(&self, obj: ObjRef) -> LockWord {
        self.cell(obj).load_relaxed()
    }

    #[inline]
    fn cell(&self, obj: ObjRef) -> &LockWordCell {
        self.heap.header(obj).lock_word()
    }

    #[inline]
    fn aux(&self, obj: ObjRef) -> &std::sync::atomic::AtomicU32 {
        self.heap.header(obj).aux()
    }

    fn monitor_of(&self, word: LockWord) -> &FatLock {
        let idx = word.monitor_index().expect("word must be inflated");
        self.monitors
            .get(idx)
            .expect("inflated word references an allocated monitor")
    }

    /// Owner-only inflation; same as the base protocol.
    fn inflate_owned(&self, obj: ObjRef, t: ThreadToken, locks: u32) -> SyncResult<&FatLock> {
        let idx = self.monitors.allocate(FatLock::new_owned(t, locks))?;
        let cell = self.cell(obj);
        let current = cell.load_relaxed();
        cell.store_release(current.inflated(idx));
        self.inflations.fetch_add(1, Ordering::Relaxed);
        Ok(self.monitor_of(current.inflated(idx)))
    }

    /// The acquire loop. Unlike the base protocol, contention parks in the
    /// lobby instead of spinning, and never inflates by itself.
    fn lock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let cell = self.cell(obj);
        loop {
            // Thin fast path.
            let old = cell.load_relaxed().with_lock_field_clear();
            let new = LockWord::from_bits(old.bits() | t.shifted());
            if cell.try_cas(old, new, self.profile).is_ok() {
                return Ok(());
            }
            let word = cell.load_relaxed();
            if word.can_nest(t.shifted()) {
                cell.store_relaxed(word.with_count_incremented());
                return Ok(());
            }
            if word.is_thin_owned_by(t.shifted()) {
                // Count overflow: inflate (owner-only store).
                debug_assert_eq!(u32::from(word.thin_count()), MAX_THIN_COUNT);
                let locks = u32::from(word.thin_count()) + 2;
                self.inflate_owned(obj, t, locks)?;
                return Ok(());
            }
            if word.is_fat() {
                // Revalidating fat path: the monitor we resolved may have
                // been deflated away between our load and our acquisition.
                let monitor = self.monitor_of(word);
                monitor.lock(t, &self.registry)?;
                let now = self.cell(obj).load_acquire();
                if now == word {
                    return Ok(());
                }
                monitor.unlock(t, &self.registry)?;
                continue;
            }
            if word.is_unlocked() {
                continue; // raced with an unlock; retry the CAS
            }

            // Thin-held by another thread: announce, verify, park.
            let me = t.index();
            let record = self.registry.record(me)?;
            self.lobby.enqueue(obj, me);
            self.aux(obj).fetch_or(FLC_BIT, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let recheck = cell.load_relaxed();
            if thin_held_by_other(recheck, me) {
                record.parker().park();
            }
            // Woken (or the lock changed state): retract and retry.
            self.lobby.retract(obj, me, self.aux(obj));
        }
    }

    fn unlock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let cell = self.cell(obj);
        let word = cell.load_relaxed();

        if word.is_locked_once_by(t.shifted()) {
            // Final thin unlock: releasing store, then the Dekker-paired
            // flc check so a parked contender is always woken.
            cell.store_unlock(word.with_lock_field_clear(), self.profile);
            fence(Ordering::SeqCst);
            if self.aux(obj).load(Ordering::SeqCst) & FLC_BIT != 0 {
                self.lobby.wake_all(obj, self.aux(obj), &self.registry);
            }
            return Ok(());
        }
        if word.is_thin_owned_by(t.shifted()) {
            debug_assert!(word.thin_count() > 0);
            cell.store_relaxed(word.with_count_decremented());
            return Ok(());
        }
        if word.is_fat() {
            let monitor = self.monitor_of(word);
            if !monitor.holds(t) {
                return Err(if monitor.owner().is_some() {
                    SyncError::NotOwner
                } else {
                    SyncError::NotLocked
                });
            }
            // Deflation: if this releases the last nesting level and the
            // monitor is quiet, restore the thin word before releasing.
            // A racer that enqueues between the checks and our release is
            // woken by the release and revalidates.
            if monitor.count() == 1 && monitor.entry_queue_len() == 0 && monitor.wait_set_len() == 0
            {
                cell.store_release(word.with_lock_field_clear());
                self.deflations.fetch_add(1, Ordering::Relaxed);
                monitor.unlock(t, &self.registry)?;
                // Parked flat-lock contenders (if any) get a wake too.
                fence(Ordering::SeqCst);
                if self.aux(obj).load(Ordering::SeqCst) & FLC_BIT != 0 {
                    self.lobby.wake_all(obj, self.aux(obj), &self.registry);
                }
                return Ok(());
            }
            monitor.unlock(t, &self.registry)?;
            // A flat-lock contender may have parked before this lock ever
            // inflated; give it a chance whenever anything is released so
            // it can route itself through the (now fat) monitor instead.
            if self.aux(obj).load(Ordering::SeqCst) & FLC_BIT != 0 {
                self.lobby.wake_all(obj, self.aux(obj), &self.registry);
            }
            return Ok(());
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }

    /// Resolves `obj` to a fat monitor held by `t`, inflating if `t` holds
    /// it thin; revalidates against deflation races.
    fn require_fat(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<&FatLock> {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            let monitor = self.monitor_of(word);
            if !monitor.holds(t) {
                return Err(if monitor.owner().is_some() {
                    SyncError::NotOwner
                } else {
                    SyncError::NotLocked
                });
            }
            return Ok(monitor);
        }
        if word.is_thin_owned_by(t.shifted()) {
            let locks = u32::from(word.thin_count()) + 1;
            return self.inflate_owned(obj, t, locks);
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }
}

fn thin_held_by_other(word: LockWord, me: ThreadIndex) -> bool {
    word.is_thin_shape() && word.thin_owner().is_some_and(|o| o != me)
}

impl SyncProtocol for TasukiLocks {
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.lock_impl(obj, t)
    }

    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.unlock_impl(obj, t)
    }

    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        self.require_fat(obj, t)?.wait(t, &self.registry, timeout)
    }

    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.require_fat(obj, t)?.notify(t)
    }

    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.require_fat(obj, t)?.notify_all(t)
    }

    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            self.monitor_of(word).holds(t)
        } else {
            word.is_thin_owned_by(t.shifted())
        }
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn name(&self) -> &'static str {
        "Tasuki"
    }
}

impl SyncBackend for TasukiLocks {
    fn monitor_probe(&self, obj: ObjRef) -> Option<MonitorProbe> {
        let word = self.lock_word(obj);
        if !word.is_fat() {
            return None;
        }
        let monitor = self.monitor_of(word);
        Some(MonitorProbe {
            owner: monitor.owner(),
            count: monitor.count(),
            entry_queue_len: monitor.entry_queue_len(),
            wait_set_len: monitor.wait_set_len(),
        })
    }

    fn in_wait_set(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let word = self.lock_word(obj);
        word.is_fat() && self.monitor_of(word).is_waiting(t)
    }

    fn deflation_capable(&self) -> bool {
        true
    }

    fn inflation_count(&self) -> u64 {
        TasukiLocks::inflation_count(self)
    }

    fn deflation_count(&self) -> u64 {
        TasukiLocks::deflation_count(self)
    }

    fn monitors_live(&self) -> usize {
        // The Tasuki table never recycles slots, so the live population
        // only shrinks logically (deflated slots stay allocated); the
        // table length is the footprint, which is what the churn
        // benchmark grades.
        self.monitors.len()
    }

    fn monitors_peak(&self) -> usize {
        self.monitors.len()
    }

    fn monitors_allocated(&self) -> u64 {
        self.monitors.len() as u64
    }
}

impl fmt::Debug for TasukiLocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TasukiLocks")
            .field("heap", &self.heap)
            .field("inflations", &self.inflation_count())
            .field("deflations", &self.deflation_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn thin_fast_path_matches_base_protocol() {
        let p = TasukiLocks::with_capacity(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        let before = p.lock_word(obj);
        for _ in 0..5 {
            p.lock(obj, t).unwrap();
        }
        assert_eq!(p.lock_word(obj).thin_count(), 4);
        for _ in 0..5 {
            p.unlock(obj, t).unwrap();
        }
        assert_eq!(p.lock_word(obj), before);
        assert_eq!(p.inflation_count(), 0);
    }

    #[test]
    fn overflow_inflates_then_quiet_unlock_deflates() {
        let p = TasukiLocks::with_capacity(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        for _ in 0..257 {
            p.lock(obj, t).unwrap();
        }
        assert!(p.lock_word(obj).is_fat());
        assert_eq!(p.inflation_count(), 1);
        for _ in 0..257 {
            p.unlock(obj, t).unwrap();
        }
        // Unlike the base protocol, the final unlock deflates.
        assert!(p.lock_word(obj).is_unlocked(), "deflated back to thin");
        assert_eq!(p.deflation_count(), 1);
        // And the lock is thin-usable again.
        p.lock(obj, t).unwrap();
        assert!(p.lock_word(obj).is_thin_shape());
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn wait_notify_with_deflation_cycles() {
        let p = TasukiLocks::with_capacity(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        for round in 0..5 {
            p.lock(obj, t).unwrap();
            let out = p.wait(obj, t, Some(Duration::from_millis(2))).unwrap();
            assert_eq!(out, WaitOutcome::TimedOut);
            assert!(p.lock_word(obj).is_fat(), "round {round}: inflated by wait");
            p.unlock(obj, t).unwrap();
            assert!(
                p.lock_word(obj).is_unlocked(),
                "round {round}: deflated after quiet unlock"
            );
        }
        assert_eq!(p.inflation_count(), 5);
        assert_eq!(p.deflation_count(), 5);
    }

    #[test]
    fn contention_parks_and_recovers_thin_state() {
        let p = Arc::new(TasukiLocks::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        let barrier = Arc::new(Barrier::new(2));
        let holder = {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                p.lock(obj, t).unwrap();
                barrier.wait();
                thread::sleep(Duration::from_millis(40));
                p.unlock(obj, t).unwrap();
            })
        };
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        barrier.wait();
        p.lock(obj, t).unwrap(); // parks in the lobby, never spins hot
        assert!(p.holds_lock(obj, t));
        // Contention did not inflate: the word is thin, owned by us.
        assert!(p.lock_word(obj).is_thin_shape());
        p.unlock(obj, t).unwrap();
        holder.join().unwrap();
        assert_eq!(p.inflation_count(), 0);
        assert!(p.lock_word(obj).is_unlocked());
    }

    #[test]
    fn mutual_exclusion_under_heavy_contention() {
        let p = Arc::new(TasukiLocks::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        const THREADS: usize = 4;
        const ITERS: u64 = 500;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let p = Arc::clone(&p);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                for _ in 0..ITERS {
                    p.lock(obj, t).unwrap();
                    let v = counter.load(Ordering::Relaxed);
                    std::hint::spin_loop();
                    counter.store(v + 1, Ordering::Relaxed);
                    p.unlock(obj, t).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
        let reg = p.registry().register().unwrap();
        assert!(!p.holds_lock(obj, reg.token()));
    }

    #[test]
    fn wait_notify_rendezvous() {
        let p = Arc::new(TasukiLocks::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        let entered = Arc::new(AtomicU64::new(0));
        let waiter = {
            let p = Arc::clone(&p);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                p.lock(obj, t).unwrap();
                entered.store(1, Ordering::Release);
                let out = p.wait(obj, t, None).unwrap();
                p.unlock(obj, t).unwrap();
                out
            })
        };
        while entered.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        loop {
            p.lock(obj, t).unwrap();
            p.notify(obj, t).unwrap();
            p.unlock(obj, t).unwrap();
            if waiter.is_finished() {
                break;
            }
            thread::yield_now();
        }
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified);
    }

    #[test]
    fn unlock_errors_match_base_protocol() {
        let p = TasukiLocks::with_capacity(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        assert_eq!(p.unlock(obj, ra.token()), Err(SyncError::NotLocked));
        p.lock(obj, ra.token()).unwrap();
        assert_eq!(p.unlock(obj, rb.token()), Err(SyncError::NotOwner));
        assert_eq!(p.wait(obj, rb.token(), None), Err(SyncError::NotOwner));
        p.unlock(obj, ra.token()).unwrap();
    }

    #[test]
    fn phased_workload_recovers_thin_speed() {
        // The headline ablation: contended phase inflates (via wait),
        // private phase deflates and runs thin again.
        let p = Arc::new(TasukiLocks::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        {
            let reg = p.registry().register().unwrap();
            let t = reg.token();
            p.lock(obj, t).unwrap();
            let _ = p.wait(obj, t, Some(Duration::from_millis(1))).unwrap();
            p.unlock(obj, t).unwrap();
        }
        assert!(p.deflation_count() >= 1);
        // Private phase: thin all the way.
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        for _ in 0..1000 {
            p.lock(obj, t).unwrap();
            p.unlock(obj, t).unwrap();
        }
        assert!(p.lock_word(obj).is_unlocked());
        assert_eq!(p.inflation_count(), 1, "no re-inflation in private phase");
    }
}
