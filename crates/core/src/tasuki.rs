//! A deflating, park-based variant of thin locks — the ablation of two of
//! the paper's design choices.
//!
//! The paper fixes (a) **spin-to-inflate** under contention and (b)
//! **one-way inflation** ("once an object's lock is inflated, it remains
//! inflated for the lifetime of the object"), arguing that locality of
//! contention amortizes both. The follow-up work by Onodera and Kawachiya
//! (the *Tasuki lock*, OOPSLA '99 — Onodera is thanked in this paper's
//! acknowledgements) showed both choices can be relaxed. [`TasukiLocks`]
//! implements that relaxation so the benches can measure what the
//! original design gives up and gains:
//!
//! * **No spinning.** A contender announces itself by setting a
//!   *flat-lock-contention* (flc) bit — kept in the object's *second*
//!   header word so the lock word's owner-only-write discipline is
//!   untouched — enqueues itself in a lobby, and parks. The owner's
//!   unlock checks the flc bit after its releasing store (with a
//!   Dekker-style `SeqCst` fence pairing so a wakeup can never be lost)
//!   and wakes the lobby.
//! * **Deflation.** When a fat unlock finds the monitor completely quiet
//!   (last nesting level, empty entry queue, empty wait set), it restores
//!   the thin unlocked word before releasing the monitor. Because a
//!   racing thread may still hold a reference to the old monitor, the fat
//!   locking path *revalidates* the lock word after acquiring the monitor
//!   and retries if the object has been deflated (or re-inflated to a
//!   different monitor) in the meantime. Monitor indices are never
//!   reused, so revalidation is ABA-free.
//!
//! The cost of all this is exactly what the paper predicted when it chose
//! simplicity: an extra fence + flag check on every unlock, a retry loop
//! in the fat path, and the possibility of inflate/deflate thrashing. The
//! benefit is that a lock which is contended once and then used
//! single-threaded returns to thin-lock speed — see the `ablation`
//! section of the `reproduce` binary.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{fence, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use thinlock_monitor::{FatLock, MonitorTable};
use thinlock_runtime::arch::{ArchProfile, LockWordCell};
use thinlock_runtime::backend::{MonitorProbe, SyncBackend};
use thinlock_runtime::backoff::{Backoff, SpinPolicy};
use thinlock_runtime::error::{SyncError, SyncResult};
use thinlock_runtime::fault::{FaultAction, FaultInjector, InjectionPoint};
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::lockword::{LockWord, ThreadIndex, MAX_THIN_COUNT};
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ExitSweeper, ThreadRegistry, ThreadToken};

/// Bit 0 of the auxiliary header word: "a thread is parked waiting for
/// this object's flat lock". Lives outside the lock word so that only the
/// owner ever writes the lock word, exactly as in the base protocol.
const FLC_BIT: u32 = 1;

/// Monitor-table head-room: a deflating lock can inflate many times, so
/// unlike the base protocol the table needs more slots than objects.
/// Indices are never reused (revalidation relies on that), so the table
/// bounds the total number of inflations over the protocol's lifetime.
const INFLATIONS_PER_OBJECT: usize = 64;

/// Threads parked waiting for flat locks, keyed by object index.
#[derive(Debug, Default)]
struct Lobby {
    waiting: Mutex<HashMap<usize, Vec<ThreadIndex>>>,
}

impl Lobby {
    /// Locks the lobby map, recovering from poison: every lobby critical
    /// section is a single self-contained map mutation, so a waiter that
    /// panicked while holding the guard left the map consistent — the
    /// same reasoning [`FatLock`] uses for its own queues. Wedging every
    /// future contender over a bystander's panic would turn one thread's
    /// bug into a whole-process hang.
    fn guard(&self) -> MutexGuard<'_, HashMap<usize, Vec<ThreadIndex>>> {
        self.waiting.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn enqueue(&self, obj: ObjRef, me: ThreadIndex) {
        self.guard().entry(obj.index()).or_default().push(me);
    }

    /// Removes `me` from the queue; returns true if the queue is now empty
    /// (caller may clear the flc bit while we still hold the lobby lock —
    /// a new contender re-sets it *after* enqueueing, so no clear is lost).
    fn retract(&self, obj: ObjRef, me: ThreadIndex, aux: &std::sync::atomic::AtomicU32) {
        let mut map = self.guard();
        if let Some(q) = map.get_mut(&obj.index()) {
            q.retain(|&x| x != me);
            if q.is_empty() {
                map.remove(&obj.index());
                aux.fetch_and(!FLC_BIT, Ordering::SeqCst);
            }
        }
    }

    /// Drains and wakes every waiter for `obj`, clearing the flc bit.
    fn wake_all(&self, obj: ObjRef, aux: &std::sync::atomic::AtomicU32, registry: &ThreadRegistry) {
        let drained = {
            let mut map = self.guard();
            let drained = map.remove(&obj.index()).unwrap_or_default();
            if map.get(&obj.index()).is_none() {
                aux.fetch_and(!FLC_BIT, Ordering::SeqCst);
            }
            drained
        };
        for idx in drained {
            if let Ok(rec) = registry.record(idx) {
                rec.parker().unpark();
            }
        }
    }
}

/// Thin locks with park-based contention and deflation (Tasuki-style).
///
/// Implements the same [`SyncProtocol`] as [`ThinLocks`](crate::ThinLocks);
/// use it as a drop-in replacement when workloads have *phased* contention
/// (contended for a while, then private again).
///
/// # Example
///
/// ```
/// use thinlock::tasuki::TasukiLocks;
/// use thinlock_runtime::protocol::SyncProtocol;
///
/// let locks = TasukiLocks::with_capacity(8);
/// let reg = locks.registry().register()?;
/// let obj = locks.heap().alloc()?;
/// locks.lock(obj, reg.token())?;
/// locks.unlock(obj, reg.token())?;
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
pub struct TasukiLocks {
    heap: Arc<Heap>,
    registry: ThreadRegistry,
    monitors: Arc<MonitorTable>,
    lobby: Arc<Lobby>,
    injector: Option<Arc<dyn FaultInjector>>,
    profile: ArchProfile,
    inflations: std::sync::atomic::AtomicU64,
    deflations: std::sync::atomic::AtomicU64,
}

impl TasukiLocks {
    /// Creates a protocol over a fresh heap of `capacity` objects.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::new(
            Arc::new(Heap::with_capacity(capacity)),
            ThreadRegistry::new(),
        )
    }

    /// Creates a protocol over an existing heap and registry.
    pub fn new(heap: Arc<Heap>, registry: ThreadRegistry) -> Self {
        let monitors =
            MonitorTable::with_capacity(heap.capacity().saturating_mul(INFLATIONS_PER_OBJECT));
        TasukiLocks {
            heap,
            registry,
            monitors: Arc::new(monitors),
            lobby: Arc::new(Lobby::default()),
            injector: None,
            profile: ArchProfile::PowerPcMp,
            inflations: std::sync::atomic::AtomicU64::new(0),
            deflations: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Attaches a fault injector, consulted at the same labeled
    /// [`InjectionPoint`]s as the base protocol (fast/slow CAS, the
    /// pre-park spin point, unlock stores, inflation) and propagated into
    /// the heap and monitor table so allocation, fat-path, and park
    /// points are covered too. When absent the cost is one never-taken
    /// branch per point.
    #[must_use]
    pub fn with_fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.monitors.set_fault_injector(Arc::clone(&injector));
        self.heap.set_fault_injector(Arc::clone(&injector));
        self.injector = Some(injector);
        self
    }

    /// Installs the orphaned-lock sweeper on this protocol's registry,
    /// mirroring [`ThinLocks::with_orphan_recovery`]: a dead thread's
    /// thin words are force-cleared, its fat monitors reclaimed, and —
    /// specific to this protocol — the lobby is woken for any object
    /// whose flc bit is still set, so a contender parked on the dead
    /// owner's flat lock does not sleep forever.
    ///
    /// [`ThinLocks::with_orphan_recovery`]: crate::ThinLocks::with_orphan_recovery
    #[must_use]
    pub fn with_orphan_recovery(self) -> Self {
        self.enable_orphan_recovery();
        self
    }

    /// Non-consuming form of [`with_orphan_recovery`](Self::with_orphan_recovery).
    pub fn enable_orphan_recovery(&self) {
        self.registry
            .set_exit_sweeper(Arc::new(TasukiOrphanSweeper {
                heap: Arc::clone(&self.heap),
                monitors: Arc::clone(&self.monitors),
                lobby: Arc::clone(&self.lobby),
                injector: self.injector.clone(),
                profile: self.profile,
            }));
    }

    #[inline]
    fn inject(&self, point: InjectionPoint) -> FaultAction {
        match &self.injector {
            None => FaultAction::Proceed,
            Some(injector) => injector.decide(point),
        }
    }

    /// Total inflations performed so far.
    pub fn inflation_count(&self) -> u64 {
        self.inflations.load(Ordering::Relaxed)
    }

    /// Total deflations performed so far.
    pub fn deflation_count(&self) -> u64 {
        self.deflations.load(Ordering::Relaxed)
    }

    /// The raw lock word of `obj` (diagnostics and tests).
    pub fn lock_word(&self, obj: ObjRef) -> LockWord {
        self.cell(obj).load_relaxed()
    }

    #[inline]
    fn cell(&self, obj: ObjRef) -> &LockWordCell {
        self.heap.header(obj).lock_word()
    }

    #[inline]
    fn aux(&self, obj: ObjRef) -> &std::sync::atomic::AtomicU32 {
        self.heap.header(obj).aux()
    }

    fn monitor_of(&self, word: LockWord) -> &FatLock {
        let idx = word.monitor_index().expect("word must be inflated");
        self.monitors
            .get(idx)
            .expect("inflated word references an allocated monitor")
    }

    /// Owner-only inflation; same as the base protocol.
    fn inflate_owned(&self, obj: ObjRef, t: ThreadToken, locks: u32) -> SyncResult<&FatLock> {
        if self.inject(InjectionPoint::Inflate) == FaultAction::Yield {
            std::thread::yield_now();
        }
        let idx = self.monitors.allocate(FatLock::new_owned(t, locks))?;
        let cell = self.cell(obj);
        let current = cell.load_relaxed();
        cell.store_release(current.inflated(idx));
        self.inflations.fetch_add(1, Ordering::Relaxed);
        Ok(self.monitor_of(current.inflated(idx)))
    }

    /// The acquire loop. Unlike the base protocol, contention parks in the
    /// lobby instead of spinning, and never inflates by itself.
    fn lock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let cell = self.cell(obj);
        // Jittered per-thread backoff for the deflation-race retry loop,
        // seeded by the thread index so seeded replays stay deterministic
        // (see `runtime::backoff`).
        let mut backoff = Backoff::jittered(SpinPolicy::SpinThenYield, u64::from(t.index().get()));
        let mut first = true;
        loop {
            // Thin fast path (slow-path CAS on later rounds).
            let point = if first {
                InjectionPoint::LockFastCas
            } else {
                InjectionPoint::LockSlowCas
            };
            first = false;
            let attempt_cas = match self.inject(point) {
                FaultAction::FailCas => false,
                FaultAction::Yield => {
                    std::thread::yield_now();
                    true
                }
                _ => true,
            };
            let old = cell.load_relaxed().with_lock_field_clear();
            let new = LockWord::from_bits(old.bits() | t.shifted());
            if attempt_cas && cell.try_cas(old, new, self.profile).is_ok() {
                return Ok(());
            }
            let word = cell.load_relaxed();
            if word.can_nest(t.shifted()) {
                cell.store_relaxed(word.with_count_incremented());
                return Ok(());
            }
            if word.is_thin_owned_by(t.shifted()) {
                // Count overflow: inflate (owner-only store).
                debug_assert_eq!(u32::from(word.thin_count()), MAX_THIN_COUNT);
                let locks = u32::from(word.thin_count()) + 2;
                self.inflate_owned(obj, t, locks)?;
                return Ok(());
            }
            if word.is_fat() {
                // Revalidating fat path: the monitor we resolved may have
                // been deflated away between our load and our acquisition.
                let monitor = self.monitor_of(word);
                monitor.lock(t, &self.registry)?;
                let now = self.cell(obj).load_acquire();
                if now == word {
                    return Ok(());
                }
                monitor.unlock(t, &self.registry)?;
                // Lost a deflation race; back off before revalidating so
                // racers that collided in lockstep spread out.
                backoff.snooze();
                continue;
            }
            if word.is_unlocked() {
                continue; // raced with an unlock; retry the CAS
            }

            // Thin-held by another thread: announce, verify, park.
            let me = t.index();
            let record = self.registry.record(me)?;
            self.lobby.enqueue(obj, me);
            self.aux(obj).fetch_or(FLC_BIT, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let recheck = cell.load_relaxed();
            if thin_held_by_other(recheck, me) {
                // The park stands in for the base protocol's spin: same
                // labeled point, so chaos plans and the crash matrix can
                // perturb (or kill) a contender right before it sleeps.
                match self.inject(InjectionPoint::LockSpin) {
                    FaultAction::Yield => std::thread::yield_now(),
                    // Skip the park entirely — parks may always wake
                    // spuriously, so the retry loop must already cope.
                    FaultAction::SpuriousWake => {}
                    _ => record.parker().park(),
                }
            }
            // Woken (or the lock changed state): retract and retry.
            self.lobby.retract(obj, me, self.aux(obj));
        }
    }

    fn unlock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let cell = self.cell(obj);
        let word = cell.load_relaxed();

        if word.is_locked_once_by(t.shifted()) {
            // Final thin unlock: releasing store, then the Dekker-paired
            // flc check so a parked contender is always woken.
            if self.inject(InjectionPoint::UnlockStore) == FaultAction::Yield {
                std::thread::yield_now();
            }
            cell.store_unlock(word.with_lock_field_clear(), self.profile);
            fence(Ordering::SeqCst);
            if self.aux(obj).load(Ordering::SeqCst) & FLC_BIT != 0 {
                self.lobby.wake_all(obj, self.aux(obj), &self.registry);
            }
            return Ok(());
        }
        if word.is_thin_owned_by(t.shifted()) {
            debug_assert!(word.thin_count() > 0);
            cell.store_relaxed(word.with_count_decremented());
            return Ok(());
        }
        if word.is_fat() {
            let monitor = self.monitor_of(word);
            if !monitor.holds(t) {
                return Err(if monitor.owner().is_some() {
                    SyncError::NotOwner
                } else {
                    SyncError::NotLocked
                });
            }
            // Deflation: if this releases the last nesting level and the
            // monitor is quiet, restore the thin word before releasing.
            // A racer that enqueues between the snapshot and our release is
            // woken by the release and revalidates. The snapshot must be
            // one critical section: a timed-out waiter migrating wait set
            // -> entry queue could otherwise slip between two separate
            // len() reads and be seen by neither, letting us deflate a
            // monitor it is about to re-acquire.
            if monitor.is_sole_quiescent_owner(t) {
                if self.inject(InjectionPoint::UnlockStore) == FaultAction::Yield {
                    std::thread::yield_now();
                }
                cell.store_release(word.with_lock_field_clear());
                self.deflations.fetch_add(1, Ordering::Relaxed);
                monitor.unlock(t, &self.registry)?;
                // Parked flat-lock contenders (if any) get a wake too.
                fence(Ordering::SeqCst);
                if self.aux(obj).load(Ordering::SeqCst) & FLC_BIT != 0 {
                    self.lobby.wake_all(obj, self.aux(obj), &self.registry);
                }
                return Ok(());
            }
            monitor.unlock(t, &self.registry)?;
            // A flat-lock contender may have parked before this lock ever
            // inflated; give it a chance whenever anything is released so
            // it can route itself through the (now fat) monitor instead.
            if self.aux(obj).load(Ordering::SeqCst) & FLC_BIT != 0 {
                self.lobby.wake_all(obj, self.aux(obj), &self.registry);
            }
            return Ok(());
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }

    /// Resolves `obj` to a fat monitor held by `t`, inflating if `t` holds
    /// it thin; revalidates against deflation races.
    fn require_fat(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<&FatLock> {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            let monitor = self.monitor_of(word);
            if !monitor.holds(t) {
                return Err(if monitor.owner().is_some() {
                    SyncError::NotOwner
                } else {
                    SyncError::NotLocked
                });
            }
            return Ok(monitor);
        }
        if word.is_thin_owned_by(t.shifted()) {
            let locks = u32::from(word.thin_count()) + 1;
            return self.inflate_owned(obj, t, locks);
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }
}

fn thin_held_by_other(word: LockWord, me: ThreadIndex) -> bool {
    word.is_thin_shape() && word.thin_owner().is_some_and(|o| o != me)
}

/// Heap-scanning exit sweeper for [`TasukiLocks`] — the same shape as the
/// base protocol's, plus one protocol-specific duty: after reclaiming the
/// dead thread's locks it wakes the lobby for every object whose flc bit
/// is set, because this protocol's contenders *park* instead of spinning
/// and a wakeup owed by the dead owner would otherwise never arrive.
struct TasukiOrphanSweeper {
    heap: Arc<Heap>,
    monitors: Arc<MonitorTable>,
    lobby: Arc<Lobby>,
    injector: Option<Arc<dyn FaultInjector>>,
    profile: ArchProfile,
}

impl ExitSweeper for TasukiOrphanSweeper {
    fn sweep_thread(&self, dead: ThreadIndex, registry: &ThreadRegistry) {
        if let Some(injector) = &self.injector {
            if injector.decide(InjectionPoint::RegistryRelease) == FaultAction::Yield {
                std::thread::yield_now();
            }
        }
        for obj in self.heap.iter() {
            let header = self.heap.header(obj);
            let cell = header.lock_word();
            let word = cell.load_acquire();
            if word.is_fat() {
                if let Some(idx) = word.monitor_index() {
                    if let Some(monitor) = self.monitors.get(idx) {
                        monitor.reclaim_orphan(dead, registry);
                    }
                }
            } else if word.thin_owner() == Some(dead) {
                // Owner-only writes: the CAS can only lose to a concurrent
                // sweep of the same index, which is fine either way.
                let cleared = word.with_lock_field_clear();
                let _ = cell.try_cas(word, cleared, self.profile);
            }
            // Either reclamation may have freed a lock the lobby is parked
            // on; hand every announced contender a fresh look.
            if header.aux().load(Ordering::SeqCst) & FLC_BIT != 0 {
                self.lobby.wake_all(obj, header.aux(), registry);
            }
        }
    }
}

impl SyncProtocol for TasukiLocks {
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.lock_impl(obj, t)
    }

    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.unlock_impl(obj, t)
    }

    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        self.require_fat(obj, t)?.wait(t, &self.registry, timeout)
    }

    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.require_fat(obj, t)?.notify(t)
    }

    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.require_fat(obj, t)?.notify_all(t)
    }

    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            self.monitor_of(word).holds(t)
        } else {
            word.is_thin_owned_by(t.shifted())
        }
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn name(&self) -> &'static str {
        "Tasuki"
    }
}

impl SyncBackend for TasukiLocks {
    fn monitor_probe(&self, obj: ObjRef) -> Option<MonitorProbe> {
        let word = self.lock_word(obj);
        if !word.is_fat() {
            return None;
        }
        let monitor = self.monitor_of(word);
        Some(MonitorProbe {
            owner: monitor.owner(),
            count: monitor.count(),
            entry_queue_len: monitor.entry_queue_len(),
            wait_set_len: monitor.wait_set_len(),
        })
    }

    fn in_wait_set(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let word = self.lock_word(obj);
        word.is_fat() && self.monitor_of(word).is_waiting(t)
    }

    fn deflation_capable(&self) -> bool {
        true
    }

    fn inflation_count(&self) -> u64 {
        TasukiLocks::inflation_count(self)
    }

    fn deflation_count(&self) -> u64 {
        TasukiLocks::deflation_count(self)
    }

    fn monitors_live(&self) -> usize {
        // The Tasuki table never recycles slots, so the live population
        // only shrinks logically (deflated slots stay allocated); the
        // table length is the footprint, which is what the churn
        // benchmark grades.
        self.monitors.len()
    }

    fn monitors_peak(&self) -> usize {
        self.monitors.len()
    }

    fn monitors_allocated(&self) -> u64 {
        self.monitors.len() as u64
    }
}

impl fmt::Debug for TasukiLocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TasukiLocks")
            .field("heap", &self.heap)
            .field("inflations", &self.inflation_count())
            .field("deflations", &self.deflation_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn thin_fast_path_matches_base_protocol() {
        let p = TasukiLocks::with_capacity(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        let before = p.lock_word(obj);
        for _ in 0..5 {
            p.lock(obj, t).unwrap();
        }
        assert_eq!(p.lock_word(obj).thin_count(), 4);
        for _ in 0..5 {
            p.unlock(obj, t).unwrap();
        }
        assert_eq!(p.lock_word(obj), before);
        assert_eq!(p.inflation_count(), 0);
    }

    #[test]
    fn overflow_inflates_then_quiet_unlock_deflates() {
        let p = TasukiLocks::with_capacity(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        for _ in 0..257 {
            p.lock(obj, t).unwrap();
        }
        assert!(p.lock_word(obj).is_fat());
        assert_eq!(p.inflation_count(), 1);
        for _ in 0..257 {
            p.unlock(obj, t).unwrap();
        }
        // Unlike the base protocol, the final unlock deflates.
        assert!(p.lock_word(obj).is_unlocked(), "deflated back to thin");
        assert_eq!(p.deflation_count(), 1);
        // And the lock is thin-usable again.
        p.lock(obj, t).unwrap();
        assert!(p.lock_word(obj).is_thin_shape());
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn wait_notify_with_deflation_cycles() {
        let p = TasukiLocks::with_capacity(4);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        for round in 0..5 {
            p.lock(obj, t).unwrap();
            let out = p.wait(obj, t, Some(Duration::from_millis(2))).unwrap();
            assert_eq!(out, WaitOutcome::TimedOut);
            assert!(p.lock_word(obj).is_fat(), "round {round}: inflated by wait");
            p.unlock(obj, t).unwrap();
            assert!(
                p.lock_word(obj).is_unlocked(),
                "round {round}: deflated after quiet unlock"
            );
        }
        assert_eq!(p.inflation_count(), 5);
        assert_eq!(p.deflation_count(), 5);
    }

    #[test]
    fn contention_parks_and_recovers_thin_state() {
        let p = Arc::new(TasukiLocks::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        let barrier = Arc::new(Barrier::new(2));
        let holder = {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                p.lock(obj, t).unwrap();
                barrier.wait();
                thread::sleep(Duration::from_millis(40));
                p.unlock(obj, t).unwrap();
            })
        };
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        barrier.wait();
        p.lock(obj, t).unwrap(); // parks in the lobby, never spins hot
        assert!(p.holds_lock(obj, t));
        // Contention did not inflate: the word is thin, owned by us.
        assert!(p.lock_word(obj).is_thin_shape());
        p.unlock(obj, t).unwrap();
        holder.join().unwrap();
        assert_eq!(p.inflation_count(), 0);
        assert!(p.lock_word(obj).is_unlocked());
    }

    #[test]
    fn mutual_exclusion_under_heavy_contention() {
        let p = Arc::new(TasukiLocks::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        const THREADS: usize = 4;
        const ITERS: u64 = 500;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let p = Arc::clone(&p);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                for _ in 0..ITERS {
                    p.lock(obj, t).unwrap();
                    let v = counter.load(Ordering::Relaxed);
                    std::hint::spin_loop();
                    counter.store(v + 1, Ordering::Relaxed);
                    p.unlock(obj, t).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
        let reg = p.registry().register().unwrap();
        assert!(!p.holds_lock(obj, reg.token()));
    }

    #[test]
    fn wait_notify_rendezvous() {
        let p = Arc::new(TasukiLocks::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        let entered = Arc::new(AtomicU64::new(0));
        let waiter = {
            let p = Arc::clone(&p);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                p.lock(obj, t).unwrap();
                entered.store(1, Ordering::Release);
                let out = p.wait(obj, t, None).unwrap();
                p.unlock(obj, t).unwrap();
                out
            })
        };
        while entered.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        loop {
            p.lock(obj, t).unwrap();
            p.notify(obj, t).unwrap();
            p.unlock(obj, t).unwrap();
            if waiter.is_finished() {
                break;
            }
            thread::yield_now();
        }
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified);
    }

    #[test]
    fn unlock_errors_match_base_protocol() {
        let p = TasukiLocks::with_capacity(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        assert_eq!(p.unlock(obj, ra.token()), Err(SyncError::NotLocked));
        p.lock(obj, ra.token()).unwrap();
        assert_eq!(p.unlock(obj, rb.token()), Err(SyncError::NotOwner));
        assert_eq!(p.wait(obj, rb.token(), None), Err(SyncError::NotOwner));
        p.unlock(obj, ra.token()).unwrap();
    }

    #[test]
    fn phased_workload_recovers_thin_speed() {
        // The headline ablation: contended phase inflates (via wait),
        // private phase deflates and runs thin again.
        let p = Arc::new(TasukiLocks::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        {
            let reg = p.registry().register().unwrap();
            let t = reg.token();
            p.lock(obj, t).unwrap();
            let _ = p.wait(obj, t, Some(Duration::from_millis(1))).unwrap();
            p.unlock(obj, t).unwrap();
        }
        assert!(p.deflation_count() >= 1);
        // Private phase: thin all the way.
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        for _ in 0..1000 {
            p.lock(obj, t).unwrap();
            p.unlock(obj, t).unwrap();
        }
        assert!(p.lock_word(obj).is_unlocked());
        assert_eq!(p.inflation_count(), 1, "no re-inflation in private phase");
    }

    #[test]
    fn panicking_waiter_does_not_wedge_lobby() {
        let p = Arc::new(TasukiLocks::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        // Poison the lobby mutex exactly the way a panicking waiter would:
        // die while holding the guard.
        {
            let lobby = Arc::clone(&p.lobby);
            let victim = thread::spawn(move || {
                let _guard = lobby.waiting.lock().unwrap();
                panic!("waiter dies mid-bookkeeping");
            });
            assert!(victim.join().is_err());
        }
        assert!(p.lobby.waiting.is_poisoned(), "mutex must start poisoned");
        // Contention still routes through the lobby: enqueue, park, wake,
        // and retract all recover from the poison instead of panicking.
        let barrier = Arc::new(Barrier::new(2));
        let holder = {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                p.lock(obj, t).unwrap();
                barrier.wait();
                thread::sleep(Duration::from_millis(30));
                p.unlock(obj, t).unwrap();
            })
        };
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        barrier.wait();
        p.lock(obj, t).unwrap();
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        holder.join().unwrap();
        assert!(p.lock_word(obj).is_unlocked());
    }

    #[test]
    fn orphan_sweep_frees_dead_owners_lock_and_wakes_lobby() {
        let p = Arc::new(TasukiLocks::with_capacity(4).with_orphan_recovery());
        let obj = p.heap().alloc().unwrap();
        let locked = Arc::new(AtomicU64::new(0));
        let holder = {
            let p = Arc::clone(&p);
            let locked = Arc::clone(&locked);
            thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                p.lock(obj, t).unwrap();
                locked.store(1, Ordering::Release);
                thread::sleep(Duration::from_millis(40));
                // Registration drops here with the lock still held: the
                // exit sweep must clear the word and wake the lobby.
            })
        };
        while locked.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        // Parks on the dead owner's flat lock; only the sweep's wake can
        // release us, since the owner never unlocks.
        p.lock(obj, t).unwrap();
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        holder.join().unwrap();
        assert!(p.lock_word(obj).is_unlocked());
    }

    #[test]
    fn fault_injector_consults_tasuki_points() {
        use std::sync::atomic::AtomicUsize;

        #[derive(Debug, Default)]
        struct Counting([AtomicUsize; 16]);
        impl thinlock_runtime::fault::FaultInjector for Counting {
            fn decide(&self, point: InjectionPoint) -> FaultAction {
                self.0[point.index()].fetch_add(1, Ordering::Relaxed);
                FaultAction::Proceed
            }
        }

        let injector = Arc::new(Counting::default());
        let p = TasukiLocks::with_capacity(4)
            .with_fault_injector(Arc::clone(&injector) as Arc<dyn FaultInjector>);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        let _ = p.wait(obj, t, Some(Duration::from_millis(1))).unwrap();
        p.unlock(obj, t).unwrap();
        let seen = |pt: InjectionPoint| injector.0[pt.index()].load(Ordering::Relaxed);
        assert!(seen(InjectionPoint::LockFastCas) >= 1, "fast CAS consulted");
        assert!(seen(InjectionPoint::UnlockStore) >= 1, "unlock consulted");
        assert!(seen(InjectionPoint::Inflate) >= 1, "wait inflates");
        assert!(
            seen(InjectionPoint::MonitorAllocate) >= 1,
            "table allocation consulted via propagation"
        );
        assert!(
            seen(InjectionPoint::WaitPark) >= 1,
            "fat-lock wait consulted via propagation"
        );
    }

    #[test]
    fn injected_cas_failure_still_acquires() {
        use std::sync::atomic::AtomicUsize;

        #[derive(Debug, Default)]
        struct FailFirst(AtomicUsize);
        impl thinlock_runtime::fault::FaultInjector for FailFirst {
            fn decide(&self, point: InjectionPoint) -> FaultAction {
                if point == InjectionPoint::LockFastCas {
                    self.0.fetch_add(1, Ordering::Relaxed);
                    FaultAction::FailCas
                } else {
                    FaultAction::Proceed
                }
            }
        }

        let injector = Arc::new(FailFirst::default());
        let p = TasukiLocks::with_capacity(4)
            .with_fault_injector(Arc::clone(&injector) as Arc<dyn FaultInjector>);
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap(); // fast CAS suppressed; slow round wins
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        assert!(injector.0.load(Ordering::Relaxed) >= 1);
    }

    /// Regression: the deflation snapshot in `unlock_impl` must be one
    /// critical section (`FatLock::is_sole_quiescent_owner`). A timed-out
    /// waiter migrates wait set -> entry queue atomically inside
    /// `FatLock::wait`, but three separate `count`/`entry_queue_len`/
    /// `wait_set_len` reads could observe it in *neither* queue, deflate
    /// the monitor it is about to re-acquire, and leave its `unlock`
    /// staring at a neutral word (`SyncError::NotLocked`). Hammer tiny
    /// timed waits against an owner whose every quiet release deflates;
    /// any unwrap failure here is the race.
    #[test]
    fn timed_wait_migration_never_races_deflation() {
        use std::sync::atomic::AtomicBool;

        let p = Arc::new(TasukiLocks::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let waiter = {
            let p = Arc::clone(&p);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let reg = p.registry().register().unwrap();
                let t = reg.token();
                while !stop.load(Ordering::Relaxed) {
                    p.lock(obj, t).unwrap();
                    // Expires almost every round: nobody notifies, so this
                    // drives the wait-set -> entry-queue migration.
                    p.wait(obj, t, Some(Duration::from_micros(50))).unwrap();
                    p.unlock(obj, t).unwrap();
                }
            })
        };
        let reg = p.registry().register().unwrap();
        let t = reg.token();
        for _ in 0..30_000 {
            p.lock(obj, t).unwrap();
            p.unlock(obj, t).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        waiter.join().unwrap();
    }
}
