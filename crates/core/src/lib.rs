//! Thin locks: featherweight synchronization for Java, in Rust.
//!
//! This crate is the primary contribution of *Bacon, Konuru, Murthy,
//! Serrano — "Thin Locks: Featherweight Synchronization for Java", PLDI
//! 1998*: a monitor implementation whose common cases (locking an unlocked
//! object, nested locking by the owner, and unlocking) execute in a
//! handful of instructions on a 24-bit lock field inside the object
//! header, falling back to heavyweight "fat" monitors only under
//! contention, nested-count overflow, or `wait`/`notify`.
//!
//! The algorithm follows Section 2 of the paper exactly:
//!
//! 1. **Lock (uncontended):** one compare-and-swap installs the current
//!    thread's pre-shifted 15-bit index into the lock field.
//! 2. **Unlock (common case):** a plain load-compare-store; no atomic
//!    read-modify-write, justified by the discipline that only the owning
//!    thread ever writes the lock word of an object it owns.
//! 3. **Nested lock/unlock:** a single XOR + unsigned compare recognizes
//!    "thin, owned by me, count has room", then an ADD of `1 << 8`.
//! 4. **Contention:** the contender spins with backoff until the owner
//!    releases, acquires, then *inflates* the lock to a fat monitor —
//!    permanently, amortized by locality of contention.
//! 5. **`wait`/`notify`/`notifyAll` and count overflow** also inflate.
//!
//! # Quick start
//!
//! ```
//! use thinlock::ThinLocks;
//! use thinlock_runtime::protocol::{SyncProtocol, SyncProtocolExt};
//!
//! // A protocol over a heap of 64 objects.
//! let locks = ThinLocks::with_capacity(64);
//! let registration = locks.registry().register()?;
//! let me = registration.token();
//! let account = locks.heap().alloc()?;
//!
//! // The equivalent of Java's `synchronized (account) { ... }`.
//! locks.synchronized(account, me, || {
//!     // guarded work
//! })?;
//! # Ok::<(), thinlock_runtime::SyncError>(())
//! ```
//!
//! # Fast-path variants (Figure 6)
//!
//! The paper evaluates several engineerings of the same algorithm:
//! inlined and specialized per architecture, a shared out-of-line
//! function, dynamic CPU-type tests, and an unlock that (wastefully) uses
//! compare-and-swap. These are expressed through [`config::FastPathConfig`]
//! so they can be benchmarked side by side without duplicating the
//! protocol; see the `thinlock-bench` crate.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adaptive;
pub mod backend;
pub mod cjm;
pub mod config;
pub mod fissile;
pub mod hapax;
pub mod tasuki;
pub mod thin;
pub(crate) mod ticket;
pub mod watchdog;

pub use adaptive::AdaptiveLocks;
pub use backend::{BackendChoice, BackendSeams};
pub use cjm::CjmLocks;
pub use config::{
    DynamicConfig, FastPathConfig, StaticKernelCas, StaticMp, StaticUp, UnlockStrategy,
};
pub use fissile::FissileLocks;
pub use hapax::HapaxLocks;
pub use tasuki::TasukiLocks;
pub use thin::ThinLocks;
pub use watchdog::{DeadlockReport, Watchdog};
