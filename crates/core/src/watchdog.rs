//! Deadlock watchdog: waits-for cycle detection over the registry.
//!
//! The paper's protocol (like Java's monitors) happily lets threads
//! deadlock; this module adds the diagnostic the VM around it would want.
//! Every blocking acquisition publishes an advisory *waits-for edge*
//! (thread → object) on its [`ThreadRecord`](thinlock_runtime::registry::ThreadRecord);
//! the object's owner — thin owner straight from the lock word, fat owner
//! from the monitor table — closes the edge to another thread. Since a
//! blocked thread waits on at most one object, the graph is functional and
//! a cycle can be found by pointer-chasing in `O(threads)` with no
//! allocation beyond the report.
//!
//! Everything here is **advisory**: edges are published with relaxed
//! stores and read racily, so a single scan can observe a cycle that was
//! just broken. [`confirm_cycle`] therefore scans twice and only reports a
//! cycle seen identically both times; a real deadlock is stable, so it is
//! always confirmed, while transient artifacts have to survive two scans
//! separated by a yield to be misreported.
//!
//! Two consumers:
//!
//! * [`ThinLocks::lock_deadline`](crate::ThinLocks) runs [`confirm_cycle`]
//!   when a timed acquisition expires, turning "timed out while
//!   deadlocked" into
//!   [`SyncError::DeadlockDetected`](thinlock_runtime::error::SyncError::DeadlockDetected).
//! * [`Watchdog`] runs [`scan`] on a background thread at a fixed
//!   interval, collecting [`DeadlockReport`]s and emitting
//!   [`TraceEventKind::DeadlockDetected`] events for cycles of threads
//!   blocked in *untimed* acquisitions, which can never observe the cycle
//!   themselves.

use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use thinlock_runtime::backend::SyncBackend;
use thinlock_runtime::events::TraceEventKind;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::lockword::ThreadIndex;

/// One waits-for cycle: `threads[i]` is blocked acquiring `objects[i]`,
/// which is owned by `threads[(i + 1) % len]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// The threads on the cycle, starting from the thread the scan began
    /// at. Never empty.
    pub threads: Vec<ThreadIndex>,
    /// The object each corresponding thread is blocked on.
    pub objects: Vec<ObjRef>,
}

impl DeadlockReport {
    /// A rotation-invariant key for the cycle, used to deduplicate the
    /// same deadlock discovered from different starting threads.
    pub fn normalized(&self) -> Vec<u16> {
        let ids: Vec<u16> = self.threads.iter().map(|t| t.get()).collect();
        let pivot = ids
            .iter()
            .enumerate()
            .min_by_key(|(_, id)| **id)
            .map_or(0, |(i, _)| i);
        let mut rotated = Vec::with_capacity(ids.len());
        rotated.extend_from_slice(&ids[pivot..]);
        rotated.extend_from_slice(&ids[..pivot]);
        rotated
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadlock cycle of {}: ", self.threads.len())?;
        for (i, (t, o)) in self.threads.iter().zip(&self.objects).enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "thread {} waits on obj {}", t.get(), o.index())?;
        }
        Ok(())
    }
}

/// Chases the waits-for chain starting at `start` (blocked on
/// `waiting_on`) and returns the cycle if the chain loops back to
/// `start`. A chain that dead-ends (some owner is not blocked) or loops
/// without passing through `start` yields `None`.
pub fn cycle_from<B: SyncBackend + ?Sized>(
    locks: &B,
    start: ThreadIndex,
    waiting_on: ObjRef,
) -> Option<DeadlockReport> {
    let mut threads = vec![start];
    let mut objects = vec![waiting_on];
    let mut obj = waiting_on;
    loop {
        let owner = locks.owner_of(obj)?;
        if owner == start {
            return Some(DeadlockReport { threads, objects });
        }
        if threads.contains(&owner) {
            // A cycle exists but does not pass through `start`: the
            // caller is blocked *behind* a deadlock, not part of one.
            return None;
        }
        let next = locks.registry().record(owner).ok()?.blocked_on()?;
        threads.push(owner);
        objects.push(next);
        obj = next;
    }
}

/// [`cycle_from`], double-checked: the edges are read racily, so a cycle
/// only counts if two scans separated by a yield observe it identically.
pub fn confirm_cycle<B: SyncBackend + ?Sized>(
    locks: &B,
    start: ThreadIndex,
    waiting_on: ObjRef,
) -> Option<DeadlockReport> {
    let first = cycle_from(locks, start, waiting_on)?;
    thread::yield_now();
    let second = cycle_from(locks, start, waiting_on)?;
    (first.threads == second.threads).then_some(first)
}

/// One full pass: every live thread with a published waits-for edge is
/// used as a starting point, and distinct confirmed cycles are returned
/// (the same cycle reached from two of its members is reported once).
pub fn scan<B: SyncBackend + ?Sized>(locks: &B) -> Vec<DeadlockReport> {
    let mut reports = Vec::new();
    let mut seen: HashSet<Vec<u16>> = HashSet::new();
    for record in locks.registry().live_records() {
        let Some(obj) = record.blocked_on() else {
            continue;
        };
        let Some(report) = confirm_cycle(locks, record.index(), obj) else {
            continue;
        };
        if seen.insert(report.normalized()) {
            reports.push(report);
        }
    }
    reports
}

struct WatchdogShared {
    stop: Mutex<bool>,
    wake: Condvar,
    reports: Mutex<Vec<DeadlockReport>>,
}

/// A background thread that runs [`scan`] at a fixed interval.
///
/// New cycles are appended to [`Watchdog::reports`] and emitted as
/// [`TraceEventKind::DeadlockDetected`] through the protocol's trace
/// sink (attributed to the first thread and object of the cycle). The
/// watchdog only ever *reports*: breaking a deadlock is the embedder's
/// policy decision (kill a thread, which triggers the orphan sweep).
///
/// The thread exits when the watchdog is dropped.
pub struct Watchdog {
    shared: Arc<WatchdogShared>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the watchdog over `locks`, scanning every `interval`.
    /// Generic over [`SyncBackend`], so the same watchdog serves the thin
    /// protocol, the deflating CJM backend, and trait objects built by
    /// the `--backend` harness seam.
    pub fn spawn<B: SyncBackend + Send + Sync + ?Sized + 'static>(
        locks: Arc<B>,
        interval: Duration,
    ) -> Self {
        let shared = Arc::new(WatchdogShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
            reports: Mutex::new(Vec::new()),
        });
        let inner = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("thinlock-watchdog".into())
            .spawn(move || {
                let mut seen: HashSet<Vec<u16>> = HashSet::new();
                loop {
                    {
                        let stop = inner.stop.lock().unwrap_or_else(|e| e.into_inner());
                        if *stop {
                            return;
                        }
                        let (stop, _timeout) = inner
                            .wake
                            .wait_timeout(stop, interval)
                            .unwrap_or_else(|e| e.into_inner());
                        if *stop {
                            return;
                        }
                    }
                    for report in scan(&*locks) {
                        if seen.insert(report.normalized()) {
                            if let Some(sink) = locks.trace_sink() {
                                sink.record(
                                    report.threads.first().copied(),
                                    report.objects.first().copied(),
                                    TraceEventKind::DeadlockDetected {
                                        threads: u32::try_from(report.threads.len())
                                            .unwrap_or(u32::MAX),
                                    },
                                );
                            }
                            inner
                                .reports
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(report);
                        }
                    }
                }
            })
            .expect("spawn thinlock-watchdog thread");
        Watchdog {
            shared,
            handle: Some(handle),
        }
    }

    /// Every distinct deadlock observed so far.
    pub fn reports(&self) -> Vec<DeadlockReport> {
        self.shared
            .reports
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Stops the background thread and waits for it to exit.
    pub fn stop(self) {
        // Drop does the work; this name just reads better at call sites.
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        *self.shared.stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Watchdog")
            .field("reports", &self.reports().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thin::ThinLocks;
    use std::sync::Barrier;
    use thinlock_runtime::error::SyncError;
    use thinlock_runtime::protocol::SyncProtocol;

    #[test]
    fn no_deadlock_scan_is_empty() {
        let p = ThinLocks::with_capacity(4);
        let r = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, r.token()).unwrap();
        assert!(scan(&p).is_empty());
        p.unlock(obj, r.token()).unwrap();
    }

    #[test]
    fn report_normalization_is_rotation_invariant() {
        let a = DeadlockReport {
            threads: vec![ThreadIndex::new(3).unwrap(), ThreadIndex::new(1).unwrap()],
            objects: vec![ObjRef::from_index(0), ObjRef::from_index(1)],
        };
        let b = DeadlockReport {
            threads: vec![ThreadIndex::new(1).unwrap(), ThreadIndex::new(3).unwrap()],
            objects: vec![ObjRef::from_index(1), ObjRef::from_index(0)],
        };
        assert_eq!(a.normalized(), b.normalized());
        assert!(format!("{a}").contains("deadlock cycle of 2"));
    }

    #[test]
    fn watchdog_reports_two_thread_cycle() {
        let p = Arc::new(ThinLocks::with_capacity(4));
        let o1 = p.heap().alloc().unwrap();
        let o2 = p.heap().alloc().unwrap();
        let barrier = Arc::new(Barrier::new(2));
        let dog = Watchdog::spawn(Arc::clone(&p), Duration::from_millis(10));

        let spawn = |mine: ObjRef, theirs: ObjRef| {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(mine, t).unwrap();
                barrier.wait();
                // Long enough that the watchdog sees the cycle first.
                let res = p.lock_deadline(theirs, t, Duration::from_secs(5));
                if res.is_ok() {
                    p.unlock(theirs, t).unwrap();
                }
                p.unlock(mine, t).unwrap();
                res
            })
        };
        let a = spawn(o1, o2);
        let b = spawn(o2, o1);
        let mut waited = Duration::ZERO;
        while dog.reports().is_empty() && waited < Duration::from_secs(10) {
            thread::sleep(Duration::from_millis(10));
            waited += Duration::from_millis(10);
        }
        let reports = dog.reports();
        assert_eq!(reports.len(), 1, "one distinct cycle");
        assert_eq!(reports[0].threads.len(), 2);
        // At least one side classifies its expiry as a deadlock; once it
        // backs out and releases, the other may legitimately acquire.
        let ra = a.join().unwrap();
        let rb = b.join().unwrap();
        assert!(
            ra == Err(SyncError::DeadlockDetected) || rb == Err(SyncError::DeadlockDetected),
            "{ra:?} / {rb:?}"
        );
        dog.stop();
    }
}
