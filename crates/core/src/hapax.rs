//! Hapax locks: constant-time arrival, constant-time unlock, FIFO
//! admission (after "Hapax: Value-Based Mutual Exclusion",
//! arXiv:2511.14608).
//!
//! The thin protocol's contended path is a spin race: arrival costs
//! nothing but admission is decided by whichever CAS happens to land,
//! so under sustained contention one thread can starve the rest. Hapax
//! inverts the trade-off. Every blocking acquisition performs exactly
//! one `fetch_add` on arrival — drawing a ticket from the
//! crate-internal `ticket` side table — and threads are *admitted* to
//! contend for the word strictly in ticket order:
//!
//! ```text
//!   arrive:  ticket ← next.fetch_add(1)            (constant time)
//!   admit:   spin until serving ≥ ticket (wrapping) and word unlocked
//!   take:    CAS the word, record the hand-off obligation
//!   unlock:  clear the word, retire the obligation, serving += 1
//!                                                   (constant time)
//! ```
//!
//! Mutual exclusion itself is still the lock word — the ticket table
//! only *sequences* contenders — so the word stays bit-identical to the
//! thin backend's (header preservation, owner-only writes, one-way
//! inflation) and nesting, `wait`/`notify` inflation, count overflow,
//! and the fat-monitor path are unchanged. `try_lock` and
//! deadline-bounded acquisitions hold no ticket and may barge; the
//! exactly-once retirement rule in the `ticket` module keeps the queue
//! sound anyway. Inflation permanently diverts the queue to the fat
//! monitor (every admission iteration checks the fat shape first), so
//! stranded tickets are harmless.
//!
//! The cost profile is the honest inverse of thin's: the uncontended
//! acquisition pays one extra `fetch_add` + store, and in exchange the
//! contended path is first-come-first-served with bounded hand-off —
//! the fairness/tail benchmarks in `thinlock-bench` measure exactly
//! this trade.
//!
//! # FIFO hand-off
//!
//! ```
//! use std::sync::Arc;
//! use thinlock::HapaxLocks;
//! use thinlock_runtime::protocol::SyncProtocol;
//!
//! let locks = Arc::new(HapaxLocks::with_capacity(4));
//! let obj = locks.heap().alloc()?;
//! let reg = locks.registry().register()?;
//! let me = reg.token();
//!
//! locks.lock(obj, me)?;               // ticket 0: admitted at once
//! assert_eq!(locks.queue_depth(obj), 1);
//! let waiter = {
//!     let locks = Arc::clone(&locks);
//!     std::thread::spawn(move || {
//!         let reg = locks.registry().register().unwrap();
//!         let t = reg.token();
//!         locks.lock(obj, t).unwrap(); // ticket 1: queues behind us
//!         locks.unlock(obj, t).unwrap();
//!     })
//! };
//! while locks.queue_depth(obj) < 2 {  // the waiter has arrived...
//!     std::thread::yield_now();
//! }
//! locks.unlock(obj, me)?;             // ...and the release hands off
//! waiter.join().unwrap();
//! assert_eq!(locks.queue_depth(obj), 0, "queue drained");
//! # Ok::<(), thinlock_runtime::SyncError>(())
//! ```

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use thinlock_monitor::{FatLock, MonitorTable};
use thinlock_runtime::arch::LockWordCell;
use thinlock_runtime::backend::{MonitorProbe, SyncBackend};
use thinlock_runtime::backoff::Backoff;
use thinlock_runtime::error::{SyncError, SyncResult};
use thinlock_runtime::events::{TraceEventKind, TraceSink};
use thinlock_runtime::fault::{FaultAction, FaultInjector, InjectionPoint};
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::lockword::{LockWord, ThreadIndex, MAX_THIN_COUNT};
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ExitSweeper, ThreadRecord, ThreadRegistry, ThreadToken};
use thinlock_runtime::schedule::{SchedPoint, Schedule};
use thinlock_runtime::stats::{InflationCause, LockScenario, LockStats};

use crate::config::{DynamicConfig, FastPathConfig, UnlockStrategy};
use crate::ticket::TicketLedger;

/// Nesting depth at or below which an acquisition counts as "shallow"
/// in the statistics (same convention as the thin backend).
const SHALLOW_DEPTH: u32 = 4;

/// The hapax-lock protocol: ticketed FIFO admission over the thin lock
/// word. See the module docs for the arrival/admit/unlock cycle.
pub struct HapaxLocks {
    heap: Arc<Heap>,
    registry: ThreadRegistry,
    monitors: Arc<MonitorTable>,
    config: DynamicConfig,
    tickets: Arc<TicketLedger>,
    stats: Option<Arc<LockStats>>,
    tracer: Option<Arc<dyn TraceSink>>,
    injector: Option<Arc<dyn FaultInjector>>,
    schedule: Option<Arc<dyn Schedule>>,
}

impl HapaxLocks {
    /// Creates a protocol over a fresh heap of `capacity` objects.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::new(
            Arc::new(Heap::with_capacity(capacity)),
            ThreadRegistry::new(),
        )
    }

    /// Creates a protocol over an existing heap and registry. The
    /// monitor table and ticket ledger are sized to the heap.
    pub fn new(heap: Arc<Heap>, registry: ThreadRegistry) -> Self {
        let monitors = Arc::new(MonitorTable::with_capacity(heap.capacity()));
        let tickets = Arc::new(TicketLedger::new(heap.capacity(), registry.max_threads()));
        HapaxLocks {
            heap,
            registry,
            monitors,
            config: DynamicConfig::default(),
            tickets,
            stats: None,
            tracer: None,
            injector: None,
            schedule: None,
        }
    }

    /// Attaches statistics counters (`ThinLocks::with_stats` discipline).
    #[must_use]
    pub fn with_stats(mut self, stats: Arc<LockStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Attaches an event sink for the full transition stream.
    #[must_use]
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.monitors.set_sink(Arc::clone(&sink));
        self.tracer = Some(sink);
        self
    }

    /// Attaches a fault injector, propagated into the monitor table and
    /// the heap so one injector covers the whole stack.
    #[must_use]
    pub fn with_fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.monitors.set_fault_injector(Arc::clone(&injector));
        self.heap.set_fault_injector(Arc::clone(&injector));
        self.injector = Some(injector);
        self
    }

    /// Attaches a cooperative schedule (model checker). Timed paths
    /// carry no schedule points, matching the thin backend.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Arc<dyn Schedule>) -> Self {
        self.monitors.set_schedule(Arc::clone(&schedule));
        self.schedule = Some(schedule);
        self
    }

    /// Installs the orphaned-lock sweeper on this protocol's registry.
    /// The sweep force-releases a dead thread's words *and* retires its
    /// pending ticket hand-off, so the FIFO queue behind a dead owner
    /// keeps draining.
    #[must_use]
    pub fn with_orphan_recovery(self) -> Self {
        self.enable_orphan_recovery();
        self
    }

    /// Non-consuming form of [`HapaxLocks::with_orphan_recovery`].
    pub fn enable_orphan_recovery(&self) {
        self.registry.set_exit_sweeper(Arc::new(HapaxSweeper {
            heap: Arc::clone(&self.heap),
            monitors: Arc::clone(&self.monitors),
            tracer: self.tracer.clone(),
            injector: self.injector.clone(),
            profile: self.config.profile(),
            tickets: Arc::clone(&self.tickets),
        }));
    }

    /// Number of locks inflated so far (monitors allocated).
    pub fn inflated_count(&self) -> usize {
        self.monitors.len()
    }

    /// The raw lock word of `obj` — diagnostics and tests.
    pub fn lock_word(&self, obj: ObjRef) -> LockWord {
        self.cell(obj).load_relaxed()
    }

    /// The fat monitor of `obj`, if its lock has inflated.
    pub fn monitor_for(&self, obj: ObjRef) -> Option<&FatLock> {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            Some(self.monitor_of(word))
        } else {
            None
        }
    }

    /// Tickets drawn for `obj` that have not yet been retired: the
    /// holder (if it arrived through `lock`) plus every queued thread.
    /// Advisory — the queue moves on concurrently.
    pub fn queue_depth(&self, obj: ObjRef) -> u32 {
        self.tickets.outstanding(obj)
    }

    #[inline]
    fn cell(&self, obj: ObjRef) -> &LockWordCell {
        self.heap.header(obj).lock_word()
    }

    #[inline]
    fn record_lock(&self, scenario: LockScenario, depth: u32) {
        if let Some(s) = &self.stats {
            s.record_lock(scenario, depth);
        }
    }

    #[inline]
    fn record_inflation(&self, cause: InflationCause) {
        if let Some(s) = &self.stats {
            s.record_inflation(cause);
        }
    }

    #[inline]
    fn emit(&self, thread: Option<ThreadIndex>, obj: Option<ObjRef>, kind: TraceEventKind) {
        if let Some(sink) = &self.tracer {
            sink.record(thread, obj, kind);
        }
    }

    #[inline]
    fn inject(&self, point: InjectionPoint) -> FaultAction {
        match &self.injector {
            None => FaultAction::Proceed,
            Some(injector) => injector.decide(point),
        }
    }

    #[inline]
    fn reach(&self, point: SchedPoint, obj: ObjRef) {
        if let Some(s) = &self.schedule {
            let _ = s.reached(point, Some(obj));
        }
    }

    fn monitor_of(&self, word: LockWord) -> &FatLock {
        let idx = word.monitor_index().expect("word must be inflated");
        self.monitors
            .get(idx)
            .expect("inflated word references an allocated monitor")
    }

    /// Owner-only inflation, identical to the thin backend's. Reached
    /// only from `wait`/`notify` and count overflow — contention is the
    /// queue's job.
    fn inflate_owned(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        locks: u32,
        cause: InflationCause,
    ) -> SyncResult<&FatLock> {
        self.reach(SchedPoint::Inflate, obj);
        if self.inject(InjectionPoint::Inflate) == FaultAction::Yield {
            std::thread::yield_now();
        }
        let idx = self.monitors.allocate(FatLock::new_owned(t, locks))?;
        let cell = self.cell(obj);
        let current = cell.load_relaxed();
        cell.store_release(current.inflated(idx));
        self.record_inflation(cause);
        self.emit(
            Some(t.index()),
            Some(obj),
            TraceEventKind::Inflated { cause },
        );
        Ok(self.monitor_of(current.inflated(idx)))
    }

    /// Fat-monitor acquisition (entry queue), shared by the admission
    /// loop's divert-on-inflation arm and the initial fat check.
    fn lock_fat(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        word: LockWord,
        waiting: &mut BlockedOnGuard,
    ) -> SyncResult<()> {
        // The monitor's own park point carries no object (the fat lock
        // does not know which word references it); a scheduler resolves
        // it to the caller's most recent announced object. The initial
        // fat check diverts here before the arrival announcement, so
        // make one now or the park would be attributed to a stale
        // object — or none at all.
        self.reach(SchedPoint::LockFast, obj);
        let monitor = self.monitor_of(word);
        let (depth, contended) = match monitor.lock_uncontended(t) {
            Some(depth) => (depth, depth > 1),
            None => {
                waiting.publish(&self.registry, t, obj);
                monitor.lock(t, &self.registry)?;
                (monitor.count(), true)
            }
        };
        self.record_lock(
            if depth > 1 {
                if depth <= SHALLOW_DEPTH {
                    LockScenario::NestedShallow
                } else {
                    LockScenario::NestedDeep
                }
            } else if contended {
                LockScenario::FatContended
            } else {
                LockScenario::FatUncontended
            },
            depth,
        );
        self.emit(
            Some(t.index()),
            Some(obj),
            TraceEventKind::AcquireFat { contended },
        );
        Ok(())
    }

    /// The complete lock algorithm: nest/overflow/fat short-circuits,
    /// then constant-time arrival and the FIFO admission loop.
    #[inline]
    fn lock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);
        let mut waiting = BlockedOnGuard(None);

        // Re-entrant cases never touch the queue: the word is already
        // owned by us and owner-only writes make these stores safe.
        let word = cell.load_relaxed();
        if word.can_nest(t.shifted()) {
            self.reach(SchedPoint::LockNest, obj);
            cell.store_relaxed(word.with_count_incremented());
            let depth = u32::from(word.thin_count()) + 2;
            self.record_lock(
                if depth <= SHALLOW_DEPTH {
                    LockScenario::NestedShallow
                } else {
                    LockScenario::NestedDeep
                },
                depth,
            );
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::AcquireNested { depth },
            );
            return Ok(());
        }
        if word.is_thin_owned_by(t.shifted()) {
            // Owned by us at the maximum count: the 257th acquisition.
            debug_assert_eq!(u32::from(word.thin_count()), MAX_THIN_COUNT);
            let locks = u32::from(word.thin_count()) + 1 + 1;
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::AcquireNested { depth: locks },
            );
            self.inflate_owned(obj, t, locks, InflationCause::CountOverflow)?;
            self.record_lock(LockScenario::NestedDeep, locks);
            return Ok(());
        }
        if word.is_fat() {
            return self.lock_fat(obj, t, word, &mut waiting);
        }

        // Constant-time arrival. The schedule point precedes the ticket
        // draw so the model checker owns the arrival order.
        self.reach(SchedPoint::LockFast, obj);
        let ticket = self.tickets.take_ticket(obj);
        self.tickets.publish_wait(t, obj, ticket);
        let mut backoff = Backoff::jittered(self.config.spin_policy(), u64::from(t.index().get()));
        loop {
            let word = cell.load_acquire();
            if word.is_fat() {
                // The lock inflated (wait/notify or overflow by the
                // owner): the whole queue diverts to the monitor and
                // our ticket is stranded, harmlessly.
                self.tickets.clear_wait(t);
                return self.lock_fat(obj, t, word, &mut waiting);
            }
            if self.tickets.is_admitted(obj, ticket) && word.is_unlocked() {
                let new = LockWord::from_bits(word.bits() | t.shifted());
                self.reach(SchedPoint::LockSlowCas, obj);
                let attempt = match self.inject(InjectionPoint::LockSlowCas) {
                    FaultAction::FailCas => false,
                    FaultAction::Yield => {
                        std::thread::yield_now();
                        true
                    }
                    _ => true,
                };
                if attempt && cell.try_cas(word, new, profile).is_ok() {
                    self.tickets.clear_wait(t);
                    self.tickets.record_admitted(obj, ticket);
                    let rounds = backoff.rounds();
                    if rounds == 0 {
                        self.record_lock(LockScenario::Unlocked, 1);
                        self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
                    } else {
                        self.emit(
                            Some(t.index()),
                            Some(obj),
                            TraceEventKind::AcquireContendedThin {
                                spin_rounds: u32::try_from(rounds).unwrap_or(u32::MAX),
                            },
                        );
                        self.record_lock(LockScenario::ContendedThin, 1);
                        if let Some(s) = &self.stats {
                            s.record_spin_rounds(rounds);
                        }
                    }
                    return Ok(());
                }
                // Lost the word to a barger; re-check from the top.
                continue;
            }
            waiting.publish(&self.registry, t, obj);
            self.reach(SchedPoint::LockSpin, obj);
            if self.inject(InjectionPoint::LockSpin) == FaultAction::Yield {
                std::thread::yield_now();
            }
            backoff.snooze();
        }
    }

    /// The complete unlock algorithm: the thin backend's word
    /// transitions plus the constant-time hand-off (snapshot, clear,
    /// retire, bump).
    #[inline]
    fn unlock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);
        let word = cell.load_relaxed();

        if word.is_locked_once_by(t.shifted()) {
            // Snapshot the hand-off obligation *before* the word clear:
            // afterwards a new ticketed owner could arm a fresh one.
            let snapshot = self.tickets.admitted_snapshot(obj);
            self.reach(SchedPoint::UnlockThin, obj);
            if self.inject(InjectionPoint::UnlockStore) == FaultAction::Yield {
                std::thread::yield_now();
            }
            let restored = word.with_lock_field_clear();
            match self.config.unlock_strategy() {
                UnlockStrategy::Store => cell.store_unlock(restored, profile),
                UnlockStrategy::CompareAndSwap => {
                    let r = cell.try_cas_release(word, restored, profile);
                    debug_assert!(r.is_ok(), "owner-only discipline violated");
                }
            }
            self.tickets.retire_admitted(obj, snapshot);
            if let Some(s) = &self.stats {
                s.record_unlock_thin();
            }
            self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockThin);
            return Ok(());
        }

        if word.is_thin_owned_by(t.shifted()) {
            debug_assert!(word.thin_count() > 0);
            self.reach(SchedPoint::UnlockNest, obj);
            cell.store_relaxed(word.with_count_decremented());
            if let Some(s) = &self.stats {
                s.record_unlock_thin();
            }
            self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockThin);
            return Ok(());
        }

        self.unlock_slow(obj, t, word)
    }

    #[inline(never)]
    fn unlock_slow(&self, obj: ObjRef, t: ThreadToken, word: LockWord) -> SyncResult<()> {
        if word.is_fat() {
            self.reach(SchedPoint::FatUnlock, obj);
            let r = self.monitor_of(word).unlock(t, &self.registry);
            if r.is_ok() {
                if let Some(s) = &self.stats {
                    s.record_unlock_fat();
                }
                self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockFat);
            }
            return r;
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }

    /// Pre-inflation hint, identical to the thin backend's.
    ///
    /// # Errors
    ///
    /// [`SyncError::MonitorIndexExhausted`] if the monitor table is full.
    pub fn pre_inflate(&self, obj: ObjRef) -> SyncResult<bool> {
        let cell = self.cell(obj);
        let word = cell.load_relaxed();
        if !word.is_unlocked() {
            return Ok(false);
        }
        let idx = self.monitors.allocate(FatLock::new())?;
        if cell
            .try_cas(word, word.inflated(idx), self.config.profile())
            .is_ok()
        {
            self.record_inflation(InflationCause::Hint);
            self.emit(
                None,
                Some(obj),
                TraceEventKind::Inflated {
                    cause: InflationCause::Hint,
                },
            );
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Ensures `obj`'s lock is fat, inflating if the caller holds it thin.
    fn require_fat(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<&FatLock> {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            let monitor = self.monitor_of(word);
            if !monitor.holds(t) {
                return Err(if monitor.owner().is_some() {
                    SyncError::NotOwner
                } else {
                    SyncError::NotLocked
                });
            }
            return Ok(monitor);
        }
        if word.is_thin_owned_by(t.shifted()) {
            let locks = u32::from(word.thin_count()) + 1;
            return self.inflate_owned(obj, t, locks, InflationCause::WaitNotify);
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }

    /// One non-blocking acquisition attempt. A `try_lock` holds no
    /// ticket: it may barge past the queue (and its release may retire
    /// a dead ticketed owner's hand-off via the exactly-once rule).
    fn try_lock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<bool> {
        let profile = self.config.profile();
        let cell = self.cell(obj);

        let old = cell.load_relaxed().with_lock_field_clear();
        let new = LockWord::from_bits(old.bits() | t.shifted());
        let fast = match self.inject(InjectionPoint::LockFastCas) {
            FaultAction::FailCas => false,
            FaultAction::Yield => {
                std::thread::yield_now();
                true
            }
            _ => true,
        };
        if fast && cell.try_cas(old, new, profile).is_ok() {
            self.record_lock(LockScenario::Unlocked, 1);
            self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
            return Ok(true);
        }

        let word = cell.load_relaxed();
        if word.can_nest(t.shifted()) {
            cell.store_relaxed(word.with_count_incremented());
            let depth = u32::from(word.thin_count()) + 2;
            self.record_lock(
                if depth <= SHALLOW_DEPTH {
                    LockScenario::NestedShallow
                } else {
                    LockScenario::NestedDeep
                },
                depth,
            );
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::AcquireNested { depth },
            );
            return Ok(true);
        }

        if word.is_fat() {
            let monitor = self.monitor_of(word);
            let contended = monitor.owner().is_some();
            if monitor.try_lock(t) {
                let depth = monitor.count();
                self.record_lock(
                    if depth > 1 {
                        if depth <= SHALLOW_DEPTH {
                            LockScenario::NestedShallow
                        } else {
                            LockScenario::NestedDeep
                        }
                    } else if contended {
                        LockScenario::FatContended
                    } else {
                        LockScenario::FatUncontended
                    },
                    depth,
                );
                self.emit(
                    Some(t.index()),
                    Some(obj),
                    TraceEventKind::AcquireFat { contended },
                );
                return Ok(true);
            }
            return Ok(false);
        }

        if word.is_thin_owned_by(t.shifted()) {
            debug_assert_eq!(u32::from(word.thin_count()), MAX_THIN_COUNT);
            let locks = u32::from(word.thin_count()) + 2;
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::AcquireNested { depth: locks },
            );
            self.inflate_owned(obj, t, locks, InflationCause::CountOverflow)?;
            self.record_lock(LockScenario::NestedDeep, locks);
            return Ok(true);
        }

        if word.is_unlocked() {
            let new = LockWord::from_bits(word.bits() | t.shifted());
            if cell.try_cas(word, new, profile).is_ok() {
                self.record_lock(LockScenario::Unlocked, 1);
                self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Deadline-bounded acquisition, identical in shape to the thin
    /// backend's: ticketless spinning (barging) on a thin word, timed
    /// parking on a fat one, and never a trace left on timeout.
    fn lock_deadline_impl(&self, obj: ObjRef, t: ThreadToken, timeout: Duration) -> SyncResult<()> {
        if self.try_lock_impl(obj, t)? {
            return Ok(());
        }
        let now = Instant::now();
        let deadline = now
            .checked_add(timeout)
            .unwrap_or_else(|| now + Duration::from_secs(86_400 * 365));
        let mut waiting = BlockedOnGuard(None);
        waiting.publish(&self.registry, t, obj);
        let mut backoff = Backoff::jittered(self.config.spin_policy(), u64::from(t.index().get()));
        loop {
            let word = self.cell(obj).load_acquire();
            if word.is_fat() {
                let monitor = self.monitor_of(word);
                let contended = monitor.owner().is_some();
                return match monitor.lock_n_deadline(t, 1, &self.registry, deadline) {
                    Ok(()) => {
                        let depth = monitor.count();
                        self.record_lock(
                            if depth > 1 {
                                if depth <= SHALLOW_DEPTH {
                                    LockScenario::NestedShallow
                                } else {
                                    LockScenario::NestedDeep
                                }
                            } else if contended {
                                LockScenario::FatContended
                            } else {
                                LockScenario::FatUncontended
                            },
                            depth,
                        );
                        self.emit(
                            Some(t.index()),
                            Some(obj),
                            TraceEventKind::AcquireFat { contended },
                        );
                        Ok(())
                    }
                    Err(SyncError::Timeout) => self.deadline_expired(obj, t),
                    Err(e) => Err(e),
                };
            }
            if self.try_lock_impl(obj, t)? {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return self.deadline_expired(obj, t);
            }
            if self.inject(InjectionPoint::LockSpin) == FaultAction::Yield {
                std::thread::yield_now();
            }
            backoff.snooze();
        }
    }

    fn deadline_expired(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireTimedOut);
        if let Some(report) = crate::watchdog::confirm_cycle(self, t.index(), obj) {
            let threads = u32::try_from(report.threads.len()).unwrap_or(u32::MAX);
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::DeadlockDetected { threads },
            );
            return Err(SyncError::DeadlockDetected);
        }
        Err(SyncError::Timeout)
    }
}

/// RAII publication of a thread's waits-for edge (same discipline as
/// the thin backend).
struct BlockedOnGuard(Option<Arc<ThreadRecord>>);

impl BlockedOnGuard {
    fn publish(&mut self, registry: &ThreadRegistry, t: ThreadToken, obj: ObjRef) {
        if self.0.is_none() {
            if let Ok(record) = registry.record(t.index()) {
                record.set_blocked_on(Some(obj));
                self.0 = Some(record);
            }
        }
    }
}

impl Drop for BlockedOnGuard {
    fn drop(&mut self) {
        if let Some(record) = &self.0 {
            record.set_blocked_on(None);
        }
    }
}

/// The registry exit sweep: the thin sweeper's word reclamation plus
/// ticket-queue repair — a dead ticketed owner's hand-off is retired so
/// the threads queued behind it keep draining.
struct HapaxSweeper {
    heap: Arc<Heap>,
    monitors: Arc<MonitorTable>,
    tracer: Option<Arc<dyn TraceSink>>,
    injector: Option<Arc<dyn FaultInjector>>,
    profile: thinlock_runtime::arch::ArchProfile,
    tickets: Arc<TicketLedger>,
}

impl HapaxSweeper {
    fn emit_reclaim(&self, dead: ThreadIndex, obj: ObjRef, fat: bool) {
        if let Some(sink) = &self.tracer {
            sink.record(
                Some(dead),
                Some(obj),
                TraceEventKind::OrphanReclaimed { fat },
            );
        }
    }
}

impl ExitSweeper for HapaxSweeper {
    fn sweep_thread(&self, dead: ThreadIndex, registry: &ThreadRegistry) {
        if let Some(injector) = &self.injector {
            if injector.decide(InjectionPoint::RegistryRelease) == FaultAction::Yield {
                std::thread::yield_now();
            }
        }
        self.tickets.clear_wait_index(dead);
        for obj in self.heap.iter() {
            let cell = self.heap.header(obj).lock_word();
            let word = cell.load_acquire();
            if word.is_fat() {
                let Some(idx) = word.monitor_index() else {
                    continue;
                };
                if let Some(monitor) = self.monitors.get(idx) {
                    if monitor.reclaim_orphan(dead, registry) {
                        self.emit_reclaim(dead, obj, true);
                    }
                }
            } else if word.thin_owner() == Some(dead) {
                // Snapshot before the clearing CAS, mirroring unlock:
                // the obligation is either 0 or the dead owner's.
                let snapshot = self.tickets.admitted_snapshot(obj);
                let cleared = word.with_lock_field_clear();
                if cell.try_cas(word, cleared, self.profile).is_ok() {
                    self.tickets.retire_admitted(obj, snapshot);
                    self.emit_reclaim(dead, obj, false);
                }
            }
        }
    }
}

impl SyncProtocol for HapaxLocks {
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.lock_impl(obj, t)
    }

    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.unlock_impl(obj, t)
    }

    fn try_lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<bool> {
        let acquired = self.try_lock_impl(obj, t)?;
        if !acquired {
            self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireTimedOut);
        }
        Ok(acquired)
    }

    fn lock_deadline(&self, obj: ObjRef, t: ThreadToken, timeout: Duration) -> SyncResult<()> {
        self.lock_deadline_impl(obj, t, timeout)
    }

    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        if let Some(s) = &self.stats {
            s.record_wait();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Wait);
        monitor.wait(t, &self.registry, timeout)
    }

    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if let Some(s) = &self.stats {
            s.record_notify();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Notify);
        self.reach(SchedPoint::Notify, obj);
        monitor.notify(t)
    }

    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if let Some(s) = &self.stats {
            s.record_notify();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Notify);
        self.reach(SchedPoint::Notify, obj);
        monitor.notify_all(t)
    }

    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            self.monitor_of(word).holds(t)
        } else {
            word.is_thin_owned_by(t.shifted())
        }
    }

    fn pre_inflate_hint(&self, obj: ObjRef) -> bool {
        let applied = self.pre_inflate(obj).unwrap_or(false);
        self.emit(None, Some(obj), TraceEventKind::PreInflateHint { applied });
        applied
    }

    fn pin_fifo_hint(&self, obj: ObjRef) -> bool {
        // Hapax admission is a ticket lock: every acquirer of every
        // object already queues in FIFO order, so the pin is trivially
        // honored.
        let _ = obj;
        true
    }

    fn trace_sink(&self) -> Option<&dyn TraceSink> {
        self.tracer.as_deref()
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn name(&self) -> &'static str {
        "Hapax"
    }
}

impl SyncBackend for HapaxLocks {
    fn monitor_probe(&self, obj: ObjRef) -> Option<MonitorProbe> {
        let monitor = self.monitor_for(obj)?;
        Some(MonitorProbe {
            owner: monitor.owner(),
            count: monitor.count(),
            entry_queue_len: monitor.entry_queue_len(),
            wait_set_len: monitor.wait_set_len(),
        })
    }

    fn in_wait_set(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.monitor_for(obj).is_some_and(|m| m.is_waiting(t))
    }

    fn spin_enabled(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let word = self.probe_word(obj);
        match self.tickets.waiting_ticket(t, obj) {
            // Queued: progress needs the fat shape (divert) or an
            // admitted ticket with the word free.
            Some(ticket) => {
                word.is_fat() || (word.is_unlocked() && self.tickets.is_admitted(obj, ticket))
            }
            None => word.is_unlocked() || word.is_fat(),
        }
    }

    fn inflation_count(&self) -> u64 {
        self.monitors.len() as u64
    }

    fn monitors_live(&self) -> usize {
        self.monitors.len()
    }

    fn monitors_peak(&self) -> usize {
        self.monitors.len()
    }

    fn monitors_allocated(&self) -> u64 {
        self.monitors.len() as u64
    }
}

impl fmt::Debug for HapaxLocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HapaxLocks")
            .field("heap", &self.heap)
            .field("inflated", &self.monitors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::thread;

    fn fresh(capacity: usize) -> HapaxLocks {
        HapaxLocks::with_capacity(capacity)
    }

    #[test]
    fn lock_unlock_restores_word_and_drains_queue() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        let before = p.lock_word(obj);
        p.lock(obj, t).unwrap();
        assert_eq!(p.queue_depth(obj), 1, "holder's ticket is outstanding");
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        assert_eq!(p.lock_word(obj), before, "word restored bit-for-bit");
        assert_eq!(p.queue_depth(obj), 0);
        assert_eq!(p.inflated_count(), 0);
    }

    #[test]
    fn nesting_counts_without_new_tickets() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        for depth in 1..=5u8 {
            p.lock(obj, t).unwrap();
            assert_eq!(p.lock_word(obj).thin_count(), depth - 1);
        }
        assert_eq!(p.queue_depth(obj), 1, "one ticket for five acquisitions");
        for _ in 0..5 {
            p.unlock(obj, t).unwrap();
        }
        assert!(p.lock_word(obj).is_unlocked());
        assert_eq!(p.queue_depth(obj), 0);
    }

    #[test]
    fn admission_is_fifo_in_arrival_order() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let holder = p.registry().register().unwrap();
        p.lock(obj, holder.token()).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        const WAITERS: u32 = 3;
        for k in 0..WAITERS {
            // Spawn strictly one at a time: waiter k has drawn its
            // ticket (queue_depth advanced) before k+1 starts, so
            // arrival order is deterministic.
            let p2 = Arc::clone(&p);
            let order = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                let r = p2.registry().register().unwrap();
                let t = r.token();
                p2.lock(obj, t).unwrap();
                order.lock().unwrap().push(k);
                p2.unlock(obj, t).unwrap();
            }));
            while p.queue_depth(obj) < k + 2 {
                thread::yield_now();
            }
        }
        p.unlock(obj, holder.token()).unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "FIFO admission");
        assert_eq!(p.queue_depth(obj), 0);
        assert_eq!(p.inflated_count(), 0, "contention never inflates");
    }

    #[test]
    fn count_overflow_still_inflates() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        for _ in 0..257 {
            p.lock(obj, t).unwrap();
        }
        assert!(p.lock_word(obj).is_fat());
        assert_eq!(p.inflated_count(), 1);
        for _ in 0..257 {
            p.unlock(obj, t).unwrap();
        }
        assert!(!p.holds_lock(obj, t));
        // The lock remains usable through the fat path.
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn wait_notify_inflates_and_works() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let waiter = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                let out = p.wait(obj, t, None).unwrap();
                p.unlock(obj, t).unwrap();
                out
            })
        };
        while !p.lock_word(obj).is_fat() {
            thread::yield_now();
        }
        let r = p.registry().register().unwrap();
        let t = r.token();
        p.lock(obj, t).unwrap();
        p.notify(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified);
    }

    #[test]
    fn orphan_sweep_retires_dead_ticketed_owner() {
        let p = Arc::new(fresh(4).with_orphan_recovery());
        let obj = p.heap().alloc().unwrap();
        {
            // Dies owning a ticketed acquisition: the sweeper must clear
            // the word AND retire the hand-off so later tickets are
            // still admitted.
            let r = p.registry().register().unwrap();
            p.lock(obj, r.token()).unwrap();
        }
        assert!(p.lock_word(obj).is_unlocked(), "sweeper cleared the word");
        assert_eq!(p.queue_depth(obj), 0, "sweeper retired the ticket");
        let r = p.registry().register().unwrap();
        let t = r.token();
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn try_lock_barges_without_a_ticket() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        assert!(p.try_lock(obj, t).unwrap());
        assert_eq!(p.queue_depth(obj), 0, "bargers draw no ticket");
        p.unlock(obj, t).unwrap();
        assert!(p.lock_word(obj).is_unlocked());
    }

    #[test]
    fn unlock_errors_mirror_java() {
        let p = fresh(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        assert_eq!(p.unlock(obj, ra.token()), Err(SyncError::NotLocked));
        p.lock(obj, ra.token()).unwrap();
        assert_eq!(p.unlock(obj, rb.token()), Err(SyncError::NotOwner));
        p.unlock(obj, ra.token()).unwrap();
    }

    #[test]
    fn mutual_exclusion_many_threads_one_object() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let total = Arc::new(AtomicU64::new(0));
        const THREADS: usize = 4;
        const ITERS: u64 = 300;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let p = Arc::clone(&p);
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                for _ in 0..ITERS {
                    p.lock(obj, t).unwrap();
                    let v = total.load(Ordering::Relaxed);
                    std::hint::spin_loop();
                    total.store(v + 1, Ordering::Relaxed);
                    p.unlock(obj, t).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), THREADS as u64 * ITERS);
        assert_eq!(p.inflated_count(), 0, "contention never inflates");
        assert_eq!(p.queue_depth(obj), 0);
    }
}
