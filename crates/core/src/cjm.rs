//! Compact Java Monitors: thin locks with *deflation* and a bounded,
//! recycling monitor pool.
//!
//! The paper's protocol inflates one-way: once an object's lock word
//! points at a fat monitor, it points there until the heap dies
//! (Section 2.3.4 — "the lock will stay inflated for the rest of the
//! object's lifetime"). That is the right trade for the paper's
//! workloads, but under *churn* — millions of short-lived objects that
//! each see one burst of contention or a single `wait`/`notify` — the
//! monitor population only ever grows. Compact Java Monitors (Dice &
//! Kogan, arXiv:2102.04188) restore the neutral word when a monitor
//! quiesces, so the pool of monitors tracks the number of *currently
//! contended* objects instead of the number ever contended.
//!
//! State machine of one object's lock word:
//!
//! ```text
//!             CAS                       store
//!  Unlocked ───────► Thin(me, 0)  ◄───────────┐
//!     ▲                 │   ▲                 │
//!     │ store           │add│sub              │
//!     ├─────────────────┤   └── Thin(me, n) ──┘
//!     │                 │
//!     │   contention / overflow / wait-notify
//!     │                 ▼
//!     └─────────── Fat(monitor)
//!       deflate: sole quiescent owner releases
//! ```
//!
//! The invariants (checked by the tests here and the model checker's
//! deflation-safety mode):
//!
//! * **Owner-only writes**, exactly as in the thin protocol — including
//!   the deflating store, which only the monitor's sole owner performs.
//! * **Deflation safety:** a monitor is deflated only while its owner
//!   holds it exactly once with an empty entry queue and an empty wait
//!   set, snapshotted atomically
//!   ([`FatLock::is_sole_quiescent_owner`]). Threads that enqueue
//!   *after* the snapshot revalidate the lock word once they acquire
//!   the monitor and retry if it moved on.
//! * **Bounded population:** monitors come from a recycling
//!   [`MonitorPool`]; a deflated slot returns to the free list, so the
//!   live population is bounded by the number of simultaneously
//!   inflated objects, not by the total ever inflated.
//!
//! # The deflate / re-inflate races
//!
//! Deflation opens two races one-way inflation never has, both resolved
//! by *revalidation after acquisition*:
//!
//! 1. **Deflate vs. concurrent acquire.** A contender reads a fat word,
//!    queues on the monitor, and parks; meanwhile the owner deflates
//!    (the contender enqueued after the quiescence snapshot) and the
//!    releasing `unlock` wakes it. On waking it owns a monitor that no
//!    longer backs the object, detects the stale word, releases the
//!    monitor (waking anyone queued behind it), and retries on the
//!    fresh word.
//! 2. **Recycled-slot ABA.** The stale monitor may have been re-bound
//!    to a *different* object by the time the contender acquires it.
//!    The pool therefore tracks a per-slot object binding, published
//!    before the fat word and cleared before the slot is freed:
//!    revalidation accepts the acquisition only if the word still
//!    carries this index *and* the slot is still bound to this object.
//!    A transient foreign acquisition is harmless — the mistaken holder
//!    releases immediately and never blocks while holding.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use thinlock_monitor::{FatLock, MonitorPool};
use thinlock_runtime::arch::LockWordCell;
use thinlock_runtime::backend::{MonitorProbe, SyncBackend};
use thinlock_runtime::backoff::Backoff;
use thinlock_runtime::error::{SyncError, SyncResult};
use thinlock_runtime::events::{TraceEventKind, TraceSink};
use thinlock_runtime::fault::{FaultAction, FaultInjector, InjectionPoint};
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::lockword::{LockWord, MonitorIndex, ThreadIndex, MAX_THIN_COUNT};
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ExitSweeper, ThreadRecord, ThreadRegistry, ThreadToken};
use thinlock_runtime::schedule::{SchedPoint, Schedule};
use thinlock_runtime::stats::{InflationCause, LockScenario, LockStats};

use crate::config::{DynamicConfig, FastPathConfig, UnlockStrategy};

/// Nesting depth at or below which an acquisition counts as "shallow" in
/// the statistics (Section 3.2 of the paper).
const SHALLOW_DEPTH: u32 = 4;

/// The Compact-Java-Monitors protocol: the thin-lock fast path, plus
/// deflation back to the neutral word when a monitor quiesces, over a
/// bounded recycling [`MonitorPool`].
///
/// # Example — the deflation lifecycle
///
/// A `wait`-style inflation is undone by the final quiet release, and
/// the monitor slot is recycled:
///
/// ```
/// use thinlock::CjmLocks;
/// use thinlock_runtime::{SyncBackend, SyncProtocol};
///
/// let locks = CjmLocks::with_capacity(8);
/// let reg = locks.registry().register()?;
/// let t = reg.token();
/// let obj = locks.heap().alloc()?;
///
/// locks.lock(obj, t)?;
/// locks.notify(obj, t)?;                  // wait/notify forces inflation
/// assert!(locks.probe_word(obj).is_fat());
/// assert_eq!(locks.monitors_live(), 1);
///
/// locks.unlock(obj, t)?;                  // sole quiescent owner: deflate
/// assert!(locks.probe_word(obj).is_unlocked());
/// assert_eq!(locks.monitors_live(), 0);
/// assert_eq!(locks.deflation_count(), 1);
///
/// // The next churn round reuses the same slot instead of growing.
/// locks.lock(obj, t)?;
/// locks.notify(obj, t)?;
/// locks.unlock(obj, t)?;
/// assert_eq!(locks.monitors_peak(), 1, "population bounded by churn width");
/// assert_eq!(locks.monitors_allocated(), 2, "but allocations keep counting");
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
pub struct CjmLocks {
    heap: Arc<Heap>,
    registry: ThreadRegistry,
    pool: Arc<MonitorPool>,
    config: DynamicConfig,
    stats: Option<Arc<LockStats>>,
    tracer: Option<Arc<dyn TraceSink>>,
    injector: Option<Arc<dyn FaultInjector>>,
    schedule: Option<Arc<dyn Schedule>>,
    inflations: AtomicU64,
    deflations: AtomicU64,
}

impl CjmLocks {
    /// Creates a protocol over a fresh heap of `capacity` objects, with
    /// the monitor pool bound equal to the heap capacity (every object
    /// simultaneously inflated is the worst case, so acquisition can
    /// only fail on pool exhaustion if something leaks).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::new(
            Arc::new(Heap::with_capacity(capacity)),
            ThreadRegistry::new(),
        )
    }

    /// Creates a protocol over an existing heap and registry, pool bound
    /// equal to the heap capacity.
    pub fn new(heap: Arc<Heap>, registry: ThreadRegistry) -> Self {
        let bound = heap.capacity();
        Self::with_monitor_bound(heap, registry, bound)
    }

    /// Creates a protocol with an explicit monitor-pool bound — the hard
    /// ceiling on simultaneously live monitors. A bound below the number
    /// of simultaneously contended objects makes inflation fail with
    /// [`SyncError::MonitorIndexExhausted`]; contention inflation
    /// tolerates that (contenders keep spinning), `wait`/`notify`
    /// surface it to the caller.
    pub fn with_monitor_bound(heap: Arc<Heap>, registry: ThreadRegistry, bound: usize) -> Self {
        CjmLocks {
            heap,
            registry,
            pool: Arc::new(MonitorPool::with_capacity(bound)),
            config: DynamicConfig::default(),
            stats: None,
            tracer: None,
            injector: None,
            schedule: None,
            inflations: AtomicU64::new(0),
            deflations: AtomicU64::new(0),
        }
    }

    /// Attaches statistics counters (same discipline as
    /// `ThinLocks::with_stats`).
    #[must_use]
    pub fn with_stats(mut self, stats: Arc<LockStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The attached statistics, if any.
    pub fn stats(&self) -> Option<&LockStats> {
        self.stats.as_deref()
    }

    /// Attaches an event sink; every transition — including
    /// [`TraceEventKind::Deflated`] — streams through it, and the pool
    /// emits [`TraceEventKind::MonitorAllocated`] on every slot
    /// acquisition, recycled slots included.
    #[must_use]
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.pool.set_sink(Arc::clone(&sink));
        self.tracer = Some(sink);
        self
    }

    /// Attaches a fault injector, propagated into the pool (stamped into
    /// every fat lock it creates) and the heap.
    #[must_use]
    pub fn with_fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.pool.set_fault_injector(Arc::clone(&injector));
        self.heap.set_fault_injector(Arc::clone(&injector));
        self.injector = Some(injector);
        self
    }

    /// Attaches a cooperative schedule, propagated into the pool. On top
    /// of the thin protocol's points this backend passes through
    /// [`SchedPoint::Deflate`] between the quiescence decision and the
    /// deflating store — the window the deflation-safety invariant
    /// probes.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Arc<dyn Schedule>) -> Self {
        self.pool.set_schedule(Arc::clone(&schedule));
        self.schedule = Some(schedule);
        self
    }

    /// Installs the orphaned-lock sweeper (see
    /// `ThinLocks::with_orphan_recovery`); dead owners of pooled
    /// monitors are reclaimed the same way, and the freed monitor is
    /// left live for the next release or [`CjmLocks::reclaim_idle`] pass
    /// to deflate.
    #[must_use]
    pub fn with_orphan_recovery(self) -> Self {
        self.enable_orphan_recovery();
        self
    }

    /// Non-consuming form of [`CjmLocks::with_orphan_recovery`].
    pub fn enable_orphan_recovery(&self) {
        self.registry.set_exit_sweeper(Arc::new(CjmOrphanSweeper {
            heap: Arc::clone(&self.heap),
            pool: Arc::clone(&self.pool),
            tracer: self.tracer.clone(),
            injector: self.injector.clone(),
            config: self.config,
        }));
    }

    /// The monitor pool — population gauges for benchmarks and tests.
    pub fn pool(&self) -> &MonitorPool {
        &self.pool
    }

    /// The raw lock word of `obj` — diagnostics and tests.
    pub fn lock_word(&self, obj: ObjRef) -> LockWord {
        self.cell(obj).load_relaxed()
    }

    #[inline]
    fn cell(&self, obj: ObjRef) -> &LockWordCell {
        self.heap.header(obj).lock_word()
    }

    #[inline]
    fn obj_index(obj: ObjRef) -> u32 {
        u32::try_from(obj.index()).expect("heap index fits in 32 bits")
    }

    #[inline]
    fn record_lock(&self, scenario: LockScenario, depth: u32) {
        if let Some(s) = &self.stats {
            s.record_lock(scenario, depth);
        }
    }

    #[inline]
    fn emit(&self, thread: Option<ThreadIndex>, obj: Option<ObjRef>, kind: TraceEventKind) {
        if let Some(sink) = &self.tracer {
            sink.record(thread, obj, kind);
        }
    }

    #[inline]
    fn inject(&self, point: InjectionPoint) -> FaultAction {
        match &self.injector {
            None => FaultAction::Proceed,
            Some(injector) => injector.decide(point),
        }
    }

    #[inline]
    fn reach(&self, point: SchedPoint, obj: ObjRef) {
        if let Some(s) = &self.schedule {
            let _ = s.reached(point, Some(obj));
        }
    }

    /// Resolves the fat lock of an inflated word (the slot may already
    /// be recycled — callers revalidate after acquiring).
    fn monitor_of(&self, word: LockWord) -> Option<(MonitorIndex, &FatLock)> {
        let idx = word.monitor_index()?;
        Some((idx, self.pool.get(idx)?))
    }

    /// The fat monitor currently backing `obj`, if its word is fat.
    pub fn monitor_for(&self, obj: ObjRef) -> Option<&FatLock> {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            self.monitor_of(word).map(|(_, m)| m)
        } else {
            None
        }
    }

    /// True if the acquisition of `monitor` (slot `idx`) still stands
    /// for `obj`: the word still carries this index and the slot is
    /// still bound to this object. Evaluated *while holding* the
    /// monitor, so a `true` answer cannot be invalidated concurrently —
    /// deflation requires sole ownership.
    fn revalidate(&self, obj: ObjRef, word: LockWord, idx: MonitorIndex) -> bool {
        self.cell(obj).load_acquire() == word
            && self.pool.binding(idx) == Some(Self::obj_index(obj))
    }

    /// Owner-only inflation: replaces the thin word the caller holds
    /// `locks` times with a pooled fat monitor owned the same number of
    /// times. The slot may be recycled and transiently held by a stale
    /// acquirer, so adoption goes through the monitor's queue
    /// (`lock_n`) instead of constructing a pre-owned monitor.
    fn inflate_owned(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        locks: u32,
        cause: InflationCause,
    ) -> SyncResult<&FatLock> {
        self.reach(SchedPoint::Inflate, obj);
        if self.inject(InjectionPoint::Inflate) == FaultAction::Yield {
            std::thread::yield_now();
        }
        let idx = self.pool.acquire(Self::obj_index(obj))?;
        let monitor = self.pool.get(idx).expect("acquired slot resolves");
        if let Err(e) = monitor.lock_n(t, locks, &self.registry) {
            // Adoption failed (stale token): unbind and return the slot
            // before anyone can see it.
            self.pool.release(idx);
            return Err(e);
        }
        let cell = self.cell(obj);
        let current = cell.load_relaxed();
        debug_assert_eq!(
            current.thin_owner().map(ThreadIndex::get),
            Some(t.index().get())
        );
        cell.store_release(current.inflated(idx));
        self.inflations.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = &self.stats {
            s.record_inflation(cause);
        }
        self.emit(
            Some(t.index()),
            Some(obj),
            TraceEventKind::Inflated { cause },
        );
        Ok(monitor)
    }

    /// The deflating release: the caller holds `monitor` as its sole
    /// quiescent owner. Restores the neutral word *before* releasing the
    /// monitor (a contender that acquired first would pass revalidation
    /// against a monitor about to be unbound), then frees the slot.
    fn deflate_and_release(
        &self,
        obj: ObjRef,
        idx: MonitorIndex,
        monitor: &FatLock,
        t: ThreadToken,
    ) -> SyncResult<()> {
        self.reach(SchedPoint::Deflate, obj);
        if self.inject(InjectionPoint::UnlockStore) == FaultAction::Yield {
            // Deschedule between the quiescence decision and the
            // deflating store — the window in which fresh contenders can
            // still enqueue (they revalidate and retry; the chaos suite
            // leans on this).
            std::thread::yield_now();
        }
        let cell = self.cell(obj);
        let current = cell.load_relaxed();
        debug_assert!(current.is_fat(), "only the sole owner deflates");
        cell.store_release(current.with_lock_field_clear());
        self.deflations.fetch_add(1, Ordering::Relaxed);
        self.emit(
            Some(t.index()),
            Some(obj),
            TraceEventKind::Deflated { index: idx.get() },
        );
        // Release wakes the front of the entry queue, if any contender
        // slipped in after the snapshot; it will revalidate and retry.
        let r = monitor.unlock(t, &self.registry);
        debug_assert!(r.is_ok(), "sole owner release cannot fail");
        self.pool.release(idx);
        if let Some(s) = &self.stats {
            s.record_unlock_fat();
        }
        self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockFat);
        r
    }

    /// The complete lock algorithm — the thin fast path is bit-for-bit
    /// the paper's (Section 2.3), only the slow path differs.
    #[inline]
    fn lock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);

        let old = cell.load_relaxed().with_lock_field_clear();
        let new = LockWord::from_bits(old.bits() | t.shifted());
        self.reach(SchedPoint::LockFast, obj);
        let fast = match self.inject(InjectionPoint::LockFastCas) {
            FaultAction::FailCas => false,
            FaultAction::Yield => {
                std::thread::yield_now();
                true
            }
            _ => true,
        };
        if fast && cell.try_cas(old, new, profile).is_ok() {
            self.record_lock(LockScenario::Unlocked, 1);
            self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
            return Ok(());
        }

        let word = cell.load_relaxed();
        if word.can_nest(t.shifted()) {
            self.reach(SchedPoint::LockNest, obj);
            cell.store_relaxed(word.with_count_incremented());
            let depth = u32::from(word.thin_count()) + 2;
            self.record_lock(
                if depth <= SHALLOW_DEPTH {
                    LockScenario::NestedShallow
                } else {
                    LockScenario::NestedDeep
                },
                depth,
            );
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::AcquireNested { depth },
            );
            return Ok(());
        }

        self.lock_slow(obj, t, word)
    }

    /// Slow path: count overflow, inflated locks (with revalidation),
    /// and contention.
    #[inline(never)]
    fn lock_slow(&self, obj: ObjRef, t: ThreadToken, mut word: LockWord) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);
        // Jittered per-thread backoff (runtime::backoff): spinners that
        // collided in lockstep draw distinct pulse sequences, seeded by
        // the thread index so seeded replays stay deterministic.
        let mut backoff = Backoff::jittered(self.config.spin_policy(), u64::from(t.index().get()));
        let mut spun = false;
        let mut waiting = BlockedOnGuard(None);
        loop {
            if word.is_fat() {
                let Some((idx, monitor)) = self.monitor_of(word) else {
                    word = cell.load_acquire();
                    continue;
                };
                let (depth, contended) = match monitor.lock_uncontended(t) {
                    Some(depth) => (depth, depth > 1),
                    None => {
                        waiting.publish(&self.registry, t, obj);
                        monitor.lock(t, &self.registry)?;
                        (monitor.count(), true)
                    }
                };
                // A re-entrant acquisition (depth > 1) needs no check:
                // we already held the monitor, so the word cannot have
                // deflated. A fresh one must revalidate against
                // deflate-and-recycle.
                if depth == 1 && !self.revalidate(obj, word, idx) {
                    let r = monitor.unlock(t, &self.registry);
                    debug_assert!(r.is_ok());
                    // Advisory spin point so a serializing scheduler
                    // regains control on every retry.
                    self.reach(SchedPoint::LockSpin, obj);
                    word = cell.load_acquire();
                    continue;
                }
                if let Some(s) = &self.stats {
                    s.record_lock(
                        if depth > 1 {
                            if depth <= SHALLOW_DEPTH {
                                LockScenario::NestedShallow
                            } else {
                                LockScenario::NestedDeep
                            }
                        } else if contended {
                            LockScenario::FatContended
                        } else {
                            LockScenario::FatUncontended
                        },
                        depth,
                    );
                    s.record_spin_rounds(backoff.rounds());
                }
                self.emit(
                    Some(t.index()),
                    Some(obj),
                    TraceEventKind::AcquireFat { contended },
                );
                return Ok(());
            }

            if word.is_thin_owned_by(t.shifted()) {
                debug_assert_eq!(u32::from(word.thin_count()), MAX_THIN_COUNT);
                let locks = u32::from(word.thin_count()) + 1 + 1;
                self.emit(
                    Some(t.index()),
                    Some(obj),
                    TraceEventKind::AcquireNested { depth: locks },
                );
                self.inflate_owned(obj, t, locks, InflationCause::CountOverflow)?;
                self.record_lock(LockScenario::NestedDeep, locks);
                return Ok(());
            }

            if word.is_unlocked() {
                let new = LockWord::from_bits(word.bits() | t.shifted());
                self.reach(SchedPoint::LockSlowCas, obj);
                let attempt = match self.inject(InjectionPoint::LockSlowCas) {
                    FaultAction::FailCas => false,
                    FaultAction::Yield => {
                        std::thread::yield_now();
                        true
                    }
                    _ => true,
                };
                if attempt && cell.try_cas(word, new, profile).is_ok() {
                    if spun {
                        let rounds = u32::try_from(backoff.rounds()).unwrap_or(u32::MAX);
                        self.emit(
                            Some(t.index()),
                            Some(obj),
                            TraceEventKind::AcquireContendedThin {
                                spin_rounds: rounds,
                            },
                        );
                        // Post-contention inflation is an optimization;
                        // a full pool keeps the thin lock and lets the
                        // next contender spin.
                        match self.inflate_owned(obj, t, 1, InflationCause::Contention) {
                            Ok(_) | Err(SyncError::MonitorIndexExhausted) => {}
                            Err(e) => return Err(e),
                        }
                        self.record_lock(LockScenario::ContendedThin, 1);
                        if let Some(s) = &self.stats {
                            s.record_spin_rounds(backoff.rounds());
                        }
                    } else {
                        self.record_lock(LockScenario::Unlocked, 1);
                        self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
                    }
                    return Ok(());
                }
                word = cell.load_acquire();
                continue;
            }

            spun = true;
            waiting.publish(&self.registry, t, obj);
            self.reach(SchedPoint::LockSpin, obj);
            if self.inject(InjectionPoint::LockSpin) == FaultAction::Yield {
                std::thread::yield_now();
            }
            backoff.snooze();
            word = cell.load_acquire();
        }
    }

    /// The complete unlock algorithm; identical to the thin protocol's
    /// until the fat release, which deflates when quiescent.
    #[inline]
    fn unlock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);
        let word = cell.load_relaxed();

        if word.is_locked_once_by(t.shifted()) {
            self.reach(SchedPoint::UnlockThin, obj);
            if self.inject(InjectionPoint::UnlockStore) == FaultAction::Yield {
                std::thread::yield_now();
            }
            let restored = word.with_lock_field_clear();
            match self.config.unlock_strategy() {
                UnlockStrategy::Store => cell.store_unlock(restored, profile),
                UnlockStrategy::CompareAndSwap => {
                    let r = cell.try_cas_release(word, restored, profile);
                    debug_assert!(r.is_ok(), "owner-only discipline violated");
                }
            }
            if let Some(s) = &self.stats {
                s.record_unlock_thin();
            }
            self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockThin);
            return Ok(());
        }

        if word.is_thin_owned_by(t.shifted()) {
            debug_assert!(word.thin_count() > 0);
            self.reach(SchedPoint::UnlockNest, obj);
            cell.store_relaxed(word.with_count_decremented());
            if let Some(s) = &self.stats {
                s.record_unlock_thin();
            }
            self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockThin);
            return Ok(());
        }

        self.unlock_slow(obj, t, word)
    }

    #[inline(never)]
    fn unlock_slow(&self, obj: ObjRef, t: ThreadToken, word: LockWord) -> SyncResult<()> {
        if word.is_fat() {
            let Some((idx, monitor)) = self.monitor_of(word) else {
                // A fat word always resolves while its owner holds it;
                // reaching here means the caller does not own the lock.
                return Err(SyncError::NotOwner);
            };
            // Deflate iff we are the sole quiescent owner — one atomic
            // snapshot; see FatLock::is_sole_quiescent_owner for why the
            // check cannot be three separate reads.
            if monitor.is_sole_quiescent_owner(t) {
                return self.deflate_and_release(obj, idx, monitor, t);
            }
            self.reach(SchedPoint::FatUnlock, obj);
            let r = monitor.unlock(t, &self.registry);
            if r.is_ok() {
                if let Some(s) = &self.stats {
                    s.record_unlock_fat();
                }
                self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockFat);
            }
            return r;
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }

    /// Idle-scan reclaimer: walks the heap and deflates every fat word
    /// whose monitor is free and quiescent, returning the number of
    /// monitors reclaimed. The normal release path already deflates, so
    /// this only finds monitors stranded live by an abnormal path — an
    /// orphan sweep that reclaimed a dead owner, or a notify storm that
    /// drained without a final quiet release. Run it from a maintenance
    /// thread the way a JVM would run its monitor-deflation safepoint
    /// pass.
    pub fn reclaim_idle(&self, t: ThreadToken) -> usize {
        let mut reclaimed = 0;
        for obj in self.heap.iter() {
            let word = self.cell(obj).load_acquire();
            if !word.is_fat() {
                continue;
            }
            let Some((idx, monitor)) = self.monitor_of(word) else {
                continue;
            };
            // Try to become the owner without blocking; holding the
            // monitor freezes deflation state, then the usual
            // revalidate-and-quiesce check decides.
            if !monitor.try_lock(t) {
                continue;
            }
            if self.revalidate(obj, word, idx) && monitor.is_sole_quiescent_owner(t) {
                if self.deflate_and_release(obj, idx, monitor, t).is_ok() {
                    reclaimed += 1;
                }
            } else {
                let _ = monitor.unlock(t, &self.registry);
            }
        }
        reclaimed
    }

    /// Pre-inflates `obj` with an unowned pooled monitor (the receiving
    /// end of a `lockcheck` hint). Under this backend the hint is
    /// advisory twice over: the first quiet release deflates the monitor
    /// again, which is exactly the backend's contract.
    ///
    /// # Errors
    ///
    /// [`SyncError::MonitorIndexExhausted`] if the pool is at its bound.
    pub fn pre_inflate(&self, obj: ObjRef) -> SyncResult<bool> {
        let cell = self.cell(obj);
        let word = cell.load_relaxed();
        if !word.is_unlocked() {
            return Ok(false);
        }
        let idx = self.pool.acquire(Self::obj_index(obj))?;
        let inflated = word.inflated(idx);
        if cell.try_cas(word, inflated, self.config.profile()).is_ok() {
            self.inflations.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = &self.stats {
                s.record_inflation(InflationCause::Hint);
            }
            self.emit(
                None,
                Some(obj),
                TraceEventKind::Inflated {
                    cause: InflationCause::Hint,
                },
            );
            Ok(true)
        } else {
            // Lost the installing race: unlike the one-way table, the
            // pool takes the slot back instead of leaking it.
            self.pool.release(idx);
            Ok(false)
        }
    }

    /// Ensures `obj`'s lock is fat, inflating if the caller holds it
    /// thin. While the caller owns the resolved monitor the word cannot
    /// deflate, so no revalidation loop is needed here.
    fn require_fat(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<&FatLock> {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            let Some((_, monitor)) = self.monitor_of(word) else {
                return Err(SyncError::NotLocked);
            };
            if !monitor.holds(t) {
                return Err(if monitor.owner().is_some() {
                    SyncError::NotOwner
                } else {
                    SyncError::NotLocked
                });
            }
            return Ok(monitor);
        }
        if word.is_thin_owned_by(t.shifted()) {
            let locks = u32::from(word.thin_count()) + 1;
            return self.inflate_owned(obj, t, locks, InflationCause::WaitNotify);
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }

    /// One non-blocking acquisition attempt. The fat branch loops only
    /// to absorb deflate/re-inflate transitions observed mid-attempt.
    fn try_lock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<bool> {
        let profile = self.config.profile();
        let cell = self.cell(obj);

        let old = cell.load_relaxed().with_lock_field_clear();
        let new = LockWord::from_bits(old.bits() | t.shifted());
        let fast = match self.inject(InjectionPoint::LockFastCas) {
            FaultAction::FailCas => false,
            FaultAction::Yield => {
                std::thread::yield_now();
                true
            }
            _ => true,
        };
        if fast && cell.try_cas(old, new, profile).is_ok() {
            self.record_lock(LockScenario::Unlocked, 1);
            self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
            return Ok(true);
        }

        loop {
            let word = cell.load_relaxed();
            if word.can_nest(t.shifted()) {
                cell.store_relaxed(word.with_count_incremented());
                let depth = u32::from(word.thin_count()) + 2;
                self.record_lock(
                    if depth <= SHALLOW_DEPTH {
                        LockScenario::NestedShallow
                    } else {
                        LockScenario::NestedDeep
                    },
                    depth,
                );
                self.emit(
                    Some(t.index()),
                    Some(obj),
                    TraceEventKind::AcquireNested { depth },
                );
                return Ok(true);
            }

            if word.is_fat() {
                let Some((idx, monitor)) = self.monitor_of(word) else {
                    continue;
                };
                let contended = monitor.owner().is_some();
                if !monitor.try_lock(t) {
                    return Ok(false);
                }
                let depth = monitor.count();
                if depth == 1 && !self.revalidate(obj, word, idx) {
                    let r = monitor.unlock(t, &self.registry);
                    debug_assert!(r.is_ok());
                    continue;
                }
                self.record_lock(
                    if depth > 1 {
                        if depth <= SHALLOW_DEPTH {
                            LockScenario::NestedShallow
                        } else {
                            LockScenario::NestedDeep
                        }
                    } else if contended {
                        LockScenario::FatContended
                    } else {
                        LockScenario::FatUncontended
                    },
                    depth,
                );
                self.emit(
                    Some(t.index()),
                    Some(obj),
                    TraceEventKind::AcquireFat { contended },
                );
                return Ok(true);
            }

            if word.is_thin_owned_by(t.shifted()) {
                debug_assert_eq!(u32::from(word.thin_count()), MAX_THIN_COUNT);
                let locks = u32::from(word.thin_count()) + 2;
                self.emit(
                    Some(t.index()),
                    Some(obj),
                    TraceEventKind::AcquireNested { depth: locks },
                );
                self.inflate_owned(obj, t, locks, InflationCause::CountOverflow)?;
                self.record_lock(LockScenario::NestedDeep, locks);
                return Ok(true);
            }

            if word.is_unlocked() {
                let new = LockWord::from_bits(word.bits() | t.shifted());
                if cell.try_cas(word, new, profile).is_ok() {
                    self.record_lock(LockScenario::Unlocked, 1);
                    self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
                    return Ok(true);
                }
                continue;
            }

            // Thin-held by another thread: non-blocking means give up.
            return Ok(false);
        }
    }

    /// Deadline-bounded acquisition (see `ThinLocks::lock_deadline`);
    /// the fat branch revalidates like the untimed path.
    fn lock_deadline_impl(&self, obj: ObjRef, t: ThreadToken, timeout: Duration) -> SyncResult<()> {
        if self.try_lock_impl(obj, t)? {
            return Ok(());
        }
        let now = Instant::now();
        let deadline = now
            .checked_add(timeout)
            .unwrap_or_else(|| now + Duration::from_secs(86_400 * 365));
        let mut waiting = BlockedOnGuard(None);
        waiting.publish(&self.registry, t, obj);
        // Jittered per-thread backoff (runtime::backoff): spinners that
        // collided in lockstep draw distinct pulse sequences, seeded by
        // the thread index so seeded replays stay deterministic.
        let mut backoff = Backoff::jittered(self.config.spin_policy(), u64::from(t.index().get()));
        loop {
            let word = self.cell(obj).load_acquire();
            if word.is_fat() {
                let Some((idx, monitor)) = self.monitor_of(word) else {
                    continue;
                };
                let contended = monitor.owner().is_some();
                match monitor.lock_n_deadline(t, 1, &self.registry, deadline) {
                    Ok(()) => {
                        let depth = monitor.count();
                        if depth == 1 && !self.revalidate(obj, word, idx) {
                            let r = monitor.unlock(t, &self.registry);
                            debug_assert!(r.is_ok());
                            if Instant::now() >= deadline {
                                return self.deadline_expired(obj, t);
                            }
                            continue;
                        }
                        if let Some(s) = &self.stats {
                            s.record_lock(
                                if depth > 1 {
                                    if depth <= SHALLOW_DEPTH {
                                        LockScenario::NestedShallow
                                    } else {
                                        LockScenario::NestedDeep
                                    }
                                } else if contended {
                                    LockScenario::FatContended
                                } else {
                                    LockScenario::FatUncontended
                                },
                                depth,
                            );
                        }
                        self.emit(
                            Some(t.index()),
                            Some(obj),
                            TraceEventKind::AcquireFat { contended },
                        );
                        return Ok(());
                    }
                    Err(SyncError::Timeout) => return self.deadline_expired(obj, t),
                    Err(e) => return Err(e),
                }
            }
            if self.try_lock_impl(obj, t)? {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return self.deadline_expired(obj, t);
            }
            if self.inject(InjectionPoint::LockSpin) == FaultAction::Yield {
                std::thread::yield_now();
            }
            backoff.snooze();
        }
    }

    fn deadline_expired(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireTimedOut);
        if let Some(report) = crate::watchdog::confirm_cycle(self, t.index(), obj) {
            let threads = u32::try_from(report.threads.len()).unwrap_or(u32::MAX);
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::DeadlockDetected { threads },
            );
            return Err(SyncError::DeadlockDetected);
        }
        Err(SyncError::Timeout)
    }
}

/// RAII publication of a thread's waits-for edge; mirrors the thin
/// protocol's guard.
struct BlockedOnGuard(Option<Arc<ThreadRecord>>);

impl BlockedOnGuard {
    fn publish(&mut self, registry: &ThreadRegistry, t: ThreadToken, obj: ObjRef) {
        if self.0.is_none() {
            if let Ok(record) = registry.record(t.index()) {
                record.set_blocked_on(Some(obj));
                self.0 = Some(record);
            }
        }
    }
}

impl Drop for BlockedOnGuard {
    fn drop(&mut self) {
        if let Some(record) = &self.0 {
            record.set_blocked_on(None);
        }
    }
}

/// The registry exit sweep over the pool: force-releases every lock a
/// dead thread left behind. A reclaimed fat monitor stays live (unowned,
/// word still fat) — the next contender's quiet release, or a
/// [`CjmLocks::reclaim_idle`] pass, deflates it.
struct CjmOrphanSweeper {
    heap: Arc<Heap>,
    pool: Arc<MonitorPool>,
    tracer: Option<Arc<dyn TraceSink>>,
    injector: Option<Arc<dyn FaultInjector>>,
    config: DynamicConfig,
}

impl CjmOrphanSweeper {
    fn emit_reclaim(&self, dead: ThreadIndex, obj: ObjRef, fat: bool) {
        if let Some(sink) = &self.tracer {
            sink.record(
                Some(dead),
                Some(obj),
                TraceEventKind::OrphanReclaimed { fat },
            );
        }
    }
}

impl ExitSweeper for CjmOrphanSweeper {
    fn sweep_thread(&self, dead: ThreadIndex, registry: &ThreadRegistry) {
        if let Some(injector) = &self.injector {
            if injector.decide(InjectionPoint::RegistryRelease) == FaultAction::Yield {
                std::thread::yield_now();
            }
        }
        for obj in self.heap.iter() {
            let cell = self.heap.header(obj).lock_word();
            let word = cell.load_acquire();
            if word.is_fat() {
                let Some(idx) = word.monitor_index() else {
                    continue;
                };
                if let Some(monitor) = self.pool.get(idx) {
                    if monitor.reclaim_orphan(dead, registry) {
                        self.emit_reclaim(dead, obj, true);
                    }
                }
            } else if word.thin_owner() == Some(dead) {
                let cleared = word.with_lock_field_clear();
                if cell.try_cas(word, cleared, self.config.profile()).is_ok() {
                    self.emit_reclaim(dead, obj, false);
                }
            }
        }
    }
}

impl SyncProtocol for CjmLocks {
    #[inline]
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.lock_impl(obj, t)
    }

    #[inline]
    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.unlock_impl(obj, t)
    }

    fn try_lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<bool> {
        let acquired = self.try_lock_impl(obj, t)?;
        if !acquired {
            self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireTimedOut);
        }
        Ok(acquired)
    }

    fn lock_deadline(&self, obj: ObjRef, t: ThreadToken, timeout: Duration) -> SyncResult<()> {
        self.lock_deadline_impl(obj, t, timeout)
    }

    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        if let Some(s) = &self.stats {
            s.record_wait();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Wait);
        // While we sit in the wait set (and later the entry queue) the
        // monitor can never pass the quiescence snapshot, so the word
        // stays fat until we have re-acquired and released it.
        monitor.wait(t, &self.registry, timeout)
    }

    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if let Some(s) = &self.stats {
            s.record_notify();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Notify);
        self.reach(SchedPoint::Notify, obj);
        monitor.notify(t)
    }

    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if let Some(s) = &self.stats {
            s.record_notify();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Notify);
        self.reach(SchedPoint::Notify, obj);
        monitor.notify_all(t)
    }

    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            self.monitor_of(word).is_some_and(|(_, m)| m.holds(t))
        } else {
            word.is_thin_owned_by(t.shifted())
        }
    }

    fn pre_inflate_hint(&self, obj: ObjRef) -> bool {
        let applied = self.pre_inflate(obj).unwrap_or(false);
        self.emit(None, Some(obj), TraceEventKind::PreInflateHint { applied });
        applied
    }

    fn trace_sink(&self) -> Option<&dyn TraceSink> {
        self.tracer.as_deref()
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn name(&self) -> &'static str {
        "CJM"
    }
}

impl SyncBackend for CjmLocks {
    fn monitor_probe(&self, obj: ObjRef) -> Option<MonitorProbe> {
        let monitor = self.monitor_for(obj)?;
        Some(MonitorProbe {
            owner: monitor.owner(),
            count: monitor.count(),
            entry_queue_len: monitor.entry_queue_len(),
            wait_set_len: monitor.wait_set_len(),
        })
    }

    fn in_wait_set(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.monitor_for(obj).is_some_and(|m| m.is_waiting(t))
    }

    fn deflation_capable(&self) -> bool {
        true
    }

    fn inflation_count(&self) -> u64 {
        self.inflations.load(Ordering::Relaxed)
    }

    fn deflation_count(&self) -> u64 {
        self.deflations.load(Ordering::Relaxed)
    }

    fn monitors_live(&self) -> usize {
        self.pool.live()
    }

    fn monitors_peak(&self) -> usize {
        self.pool.peak()
    }

    fn monitors_allocated(&self) -> u64 {
        self.pool.allocated_total()
    }
}

impl fmt::Debug for CjmLocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CjmLocks")
            .field("heap", &self.heap)
            .field("live", &self.pool.live())
            .field("peak", &self.pool.peak())
            .field("inflations", &self.inflations.load(Ordering::Relaxed))
            .field("deflations", &self.deflations.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    fn fresh(capacity: usize) -> CjmLocks {
        CjmLocks::with_capacity(capacity)
    }

    #[test]
    fn thin_fast_path_matches_paper() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        let before = p.lock_word(obj);
        p.lock(obj, t).unwrap();
        let held = p.lock_word(obj);
        assert_eq!(held.thin_owner().map(|o| o.get()), Some(t.index().get()));
        assert_eq!(held.header_bits(), before.header_bits());
        p.unlock(obj, t).unwrap();
        assert_eq!(p.lock_word(obj), before, "word restored bit-for-bit");
        assert_eq!(p.inflation_count(), 0);
    }

    #[test]
    fn quiet_fat_release_deflates_and_recycles() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        p.notify(obj, t).unwrap(); // inflate (WaitNotify)
        assert!(p.lock_word(obj).is_fat());
        assert_eq!(p.monitors_live(), 1);
        p.unlock(obj, t).unwrap(); // deflate
        assert!(p.lock_word(obj).is_unlocked(), "word back to neutral");
        assert_eq!(p.monitors_live(), 0);
        assert_eq!(p.deflation_count(), 1);
        // Deflated object relocks thin.
        p.lock(obj, t).unwrap();
        assert!(p.lock_word(obj).is_thin_shape());
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn nested_fat_release_does_not_deflate_early() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        p.lock(obj, t).unwrap();
        p.notify(obj, t).unwrap(); // inflate at depth 2
        assert!(p.lock_word(obj).is_fat());
        p.unlock(obj, t).unwrap();
        assert!(p.lock_word(obj).is_fat(), "still held once: no deflation");
        assert_eq!(p.deflation_count(), 0);
        p.unlock(obj, t).unwrap();
        assert!(p.lock_word(obj).is_unlocked(), "final release deflates");
        assert_eq!(p.deflation_count(), 1);
    }

    #[test]
    fn waiters_block_deflation_until_the_last_release() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let waiter = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                let out = p.wait(obj, t, None).unwrap();
                assert!(p.holds_lock(obj, t));
                p.unlock(obj, t).unwrap();
                out
            })
        };
        while !p.in_wait_set_any(obj) {
            thread::yield_now();
        }
        let r = p.registry().register().unwrap();
        let t = r.token();
        p.lock(obj, t).unwrap();
        p.notify(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        // The notified waiter was in the entry queue at our release, so
        // our release must NOT have deflated.
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified);
        // The waiter's own final release was quiescent: deflated.
        assert!(p.lock_word(obj).is_unlocked());
        assert_eq!(p.monitors_live(), 0);
        assert_eq!(p.deflation_count(), 1);
    }

    impl CjmLocks {
        /// Test helper: anyone in the wait set of obj's monitor?
        fn in_wait_set_any(&self, obj: ObjRef) -> bool {
            self.monitor_for(obj).is_some_and(|m| m.wait_set_len() > 0)
        }
    }

    #[test]
    fn reinflation_ping_pong_bounds_population() {
        // The churn loop: every round inflates (wait-notify cause) and
        // the quiet release deflates. Monitor population must stay at
        // one slot regardless of the number of rounds — the table-based
        // protocols grow their footprint per object (thin) or per
        // inflation (tasuki).
        const ROUNDS: u64 = 500;
        let p = fresh(8);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let objs: Vec<_> = (0..8).map(|_| p.heap().alloc().unwrap()).collect();
        for round in 0..ROUNDS {
            let obj = objs[(round % 8) as usize];
            p.lock(obj, t).unwrap();
            p.notify(obj, t).unwrap();
            p.unlock(obj, t).unwrap();
        }
        assert_eq!(p.monitors_live(), 0, "all monitors deflated");
        assert_eq!(p.monitors_peak(), 1, "never more than one live");
        assert_eq!(p.inflation_count(), ROUNDS);
        assert_eq!(p.deflation_count(), ROUNDS);
        assert_eq!(p.monitors_allocated(), ROUNDS, "slot recycled each round");
        assert!(p.pool().recycled_total() >= ROUNDS - 1);
    }

    #[test]
    fn deflate_vs_concurrent_acquire_race() {
        // Hammer one object from several threads with a wait-notify
        // inflation in every round, so deflating releases constantly
        // race against fresh fat-path acquisitions and the revalidation
        // path runs for real. The counter proves mutual exclusion held.
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let total = Arc::new(AtomicU64::new(0));
        const THREADS: usize = 4;
        const ITERS: u64 = 400;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let p = Arc::clone(&p);
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                for _ in 0..ITERS {
                    p.lock(obj, t).unwrap();
                    p.notify(obj, t).unwrap(); // force fat while held
                    let v = total.load(Ordering::Relaxed);
                    std::hint::spin_loop();
                    total.store(v + 1, Ordering::Relaxed);
                    p.unlock(obj, t).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), THREADS as u64 * ITERS);
        let r = p.registry().register().unwrap();
        assert!(!p.holds_lock(obj, r.token()));
        assert!(p.monitors_peak() <= 1, "one object: at most one monitor");
        // Every inflation is eventually undone. One scan can miss a
        // monitor that is momentarily non-quiescent (a loaded host
        // delays the last waiter's bookkeeping), so give the reclaimer
        // a few passes before judging convergence.
        for _ in 0..50 {
            let _ = p.reclaim_idle(r.token());
            if p.monitors_live() == 0 {
                break;
            }
            thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(p.monitors_live(), 0, "population converged to zero");
    }

    #[test]
    fn contention_inflates_then_deflates() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let owner = {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                barrier.wait();
                thread::sleep(Duration::from_millis(30));
                p.unlock(obj, t).unwrap();
            })
        };
        let r = p.registry().register().unwrap();
        let t = r.token();
        barrier.wait();
        p.lock(obj, t).unwrap(); // spins, acquires, inflates
        assert!(p.lock_word(obj).is_fat(), "contention inflated");
        p.unlock(obj, t).unwrap(); // quiet: deflates
        owner.join().unwrap();
        assert!(p.lock_word(obj).is_unlocked(), "deflated after the burst");
        assert_eq!(p.monitors_live(), 0);
    }

    #[test]
    fn count_overflow_inflates_and_unwinds_to_neutral() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        for _ in 0..257 {
            p.lock(obj, t).unwrap();
        }
        assert!(p.lock_word(obj).is_fat());
        for _ in 0..257 {
            p.unlock(obj, t).unwrap();
        }
        assert!(p.lock_word(obj).is_unlocked(), "full unwind deflates");
        assert_eq!(p.deflation_count(), 1);
        assert_eq!(p.monitors_live(), 0);
    }

    #[test]
    fn unlock_errors_mirror_java() {
        let p = fresh(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        assert_eq!(p.unlock(obj, ra.token()), Err(SyncError::NotLocked));
        p.lock(obj, ra.token()).unwrap();
        assert_eq!(p.unlock(obj, rb.token()), Err(SyncError::NotOwner));
        // Same through the fat shape.
        p.notify(obj, ra.token()).unwrap();
        assert_eq!(p.unlock(obj, rb.token()), Err(SyncError::NotOwner));
        p.unlock(obj, ra.token()).unwrap();
        assert_eq!(p.unlock(obj, ra.token()), Err(SyncError::NotLocked));
    }

    #[test]
    fn try_lock_and_deadline_cross_deflation() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        // try_lock through a fat word.
        p.pre_inflate(obj).unwrap();
        assert!(p.lock_word(obj).is_fat());
        assert!(p.try_lock(obj, t).unwrap());
        p.unlock(obj, t).unwrap(); // quiet release of the hint monitor
        assert!(p.lock_word(obj).is_unlocked(), "hint deflated on release");
        // lock_deadline on the neutral word.
        p.lock_deadline(obj, t, Duration::from_millis(50)).unwrap();
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn pool_exhaustion_is_tolerated_on_contention_path() {
        // Bound of zero: inflation can never succeed. Contention must
        // still be correct (spin-only), and wait/notify must surface the
        // exhaustion.
        let heap = Arc::new(Heap::with_capacity(4));
        let p = CjmLocks::with_monitor_bound(heap, ThreadRegistry::new(), 0);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        assert_eq!(p.notify(obj, t), Err(SyncError::MonitorIndexExhausted));
        p.unlock(obj, t).unwrap();
        assert_eq!(p.pre_inflate(obj), Err(SyncError::MonitorIndexExhausted));
        assert!(!p.pre_inflate_hint(obj));
    }

    #[test]
    fn orphan_sweep_then_idle_scan_reclaims_monitor() {
        let p = Arc::new(fresh(4).with_orphan_recovery());
        let obj = p.heap().alloc().unwrap();
        {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                p.notify(obj, t).unwrap(); // inflate
                                           // Exit without unlocking: the sweeper reclaims.
            })
            .join()
            .unwrap();
        }
        let r = p.registry().register().unwrap();
        let t = r.token();
        assert!(p.lock_word(obj).is_fat(), "sweep leaves the word fat");
        assert_eq!(p.owner_of(obj), None, "ownership reclaimed");
        assert_eq!(p.monitors_live(), 1, "monitor stranded live");
        assert_eq!(p.reclaim_idle(t), 1, "idle scan deflates it");
        assert!(p.lock_word(obj).is_unlocked());
        assert_eq!(p.monitors_live(), 0);
        // Object fully usable afterwards.
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn population_bound_under_many_objects() {
        // Inflate K objects simultaneously (hold them fat), release
        // them, and confirm peak == K while the final population is 0.
        const K: usize = 8;
        let p = fresh(K);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let objs: Vec<_> = (0..K).map(|_| p.heap().alloc().unwrap()).collect();
        for &obj in &objs {
            p.lock(obj, t).unwrap();
            p.notify(obj, t).unwrap();
        }
        assert_eq!(p.monitors_live(), K);
        for &obj in &objs {
            p.unlock(obj, t).unwrap();
        }
        assert_eq!(p.monitors_live(), 0);
        assert_eq!(p.monitors_peak(), K);
        assert!(p.pool().footprint() <= K, "footprint bounded by peak");
    }

    #[test]
    fn stats_and_events_flow_through() {
        let stats = Arc::new(LockStats::new());
        let p = fresh(4).with_stats(Arc::clone(&stats));
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.scenario_counts[0], 1);
        assert_eq!(snap.scenario_counts[1], 1);
        assert_eq!(snap.unlocks_thin, 2);
    }

    #[test]
    fn backend_probes_report_cjm_shape() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        assert!(p.deflation_capable());
        assert!(p.monitor_probe(obj).is_none());
        p.lock(obj, t).unwrap();
        assert_eq!(p.owner_of(obj), Some(t.index()));
        p.notify(obj, t).unwrap();
        let probe = p.monitor_probe(obj).unwrap();
        assert_eq!(probe.owner, Some(t.index()));
        assert_eq!(probe.count, 1);
        assert!(!probe.is_idle());
        p.unlock(obj, t).unwrap();
        assert!(p.monitor_probe(obj).is_none(), "deflated: no fat probe");
        assert_eq!(p.owner_of(obj), None);
    }
}
