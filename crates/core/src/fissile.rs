//! Fissile locks: a thin test-and-set fast path that *fissions* into a
//! FIFO ticket queue under contention and re-coheres when the queue
//! drains (after Dice & Kogan, "Fissile Locks", arXiv:2003.05025).
//!
//! The thin protocol answers contention by spinning and then inflating
//! — permanently, and with no fairness guarantee while thin: whichever
//! spinner's CAS lands first wins, so one thread can barge indefinitely.
//! Fissile locks keep the paper's lock word and fast path bit-identical
//! to [`ThinLocks`](crate::thin::ThinLocks) but move the contention
//! response out of the word entirely, into a per-object mode byte plus
//! the crate-internal `ticket` side table:
//!
//! ```text
//!                 spin budget exhausted (CAS)
//!   COHERED ────────────────────────────────────► FISSIONED
//!      ▲                                              │
//!      │        queue drained (last ticket            │ lockers draw
//!      │        retired, none outstanding)            │ FIFO tickets
//!      └──────────────────────────────────────────────┘
//!
//!   PINNED: FISSIONED forced by the adaptive policy; never re-coheres
//!   until [`release_fifo`](FissileLocks::release_fifo).
//! ```
//!
//! * **Cohered** — the fast path is the paper's single CAS and the
//!   common-case unlock is the paper's plain store. Unlike thin, a
//!   spinner that finally wins the word does *not* inflate: contention
//!   is answered by fission, so inflation is reserved for
//!   `wait`/`notify`, count overflow, and pre-inflation hints.
//! * **Fissioned** — blocking acquisitions draw a ticket and are
//!   admitted in FIFO order; mutual exclusion itself is still the word
//!   CAS, so `try_lock` and deadline-bounded acquisitions can barge
//!   (they hold no ticket and never stall the queue — see the
//!   exactly-once retirement rule in the `ticket` module).
//! * **Re-cohesion** — the release that retires the last outstanding
//!   ticket flips the mode back to cohered, restoring the featherweight
//!   fast path once contention has drained.
//!
//! Because every queueing structure lives outside the lock word, the
//! word obeys the same invariants as the thin backend (header
//! preservation, owner-only writes, one-way inflation) and the model
//! checker's word-conformance sweep applies unchanged.
//!
//! # Fission lifecycle
//!
//! ```
//! use thinlock::FissileLocks;
//! use thinlock_runtime::protocol::SyncProtocol;
//!
//! let locks = FissileLocks::with_capacity(8);
//! let reg = locks.registry().register()?;
//! let me = reg.token();
//! let obj = locks.heap().alloc()?;
//!
//! assert!(!locks.is_fissioned(obj));
//! assert!(locks.fission(obj));      // what exhausting the spin budget does
//! locks.lock(obj, me)?;             // draws ticket 0, admitted at once
//! assert!(locks.is_fissioned(obj));
//! locks.unlock(obj, me)?;           // retires the last ticket...
//! assert!(!locks.is_fissioned(obj)); // ...so the lock re-coheres
//! assert_eq!(locks.inflated_count(), 0, "fission is not inflation");
//! # Ok::<(), thinlock_runtime::SyncError>(())
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use thinlock_monitor::{FatLock, MonitorTable};
use thinlock_runtime::arch::LockWordCell;
use thinlock_runtime::backend::{MonitorProbe, SyncBackend};
use thinlock_runtime::backoff::Backoff;
use thinlock_runtime::error::{SyncError, SyncResult};
use thinlock_runtime::events::{TraceEventKind, TraceSink};
use thinlock_runtime::fault::{FaultAction, FaultInjector, InjectionPoint};
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::lockword::{LockWord, ThreadIndex, MAX_THIN_COUNT};
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ExitSweeper, ThreadRecord, ThreadRegistry, ThreadToken};
use thinlock_runtime::schedule::{SchedPoint, Schedule};
use thinlock_runtime::stats::{InflationCause, LockScenario, LockStats};

use crate::config::{DynamicConfig, FastPathConfig, UnlockStrategy};
use crate::ticket::TicketLedger;

/// Nesting depth at or below which an acquisition counts as "shallow"
/// in the statistics (same convention as the thin backend).
const SHALLOW_DEPTH: u32 = 4;

/// Spin rounds a cohered contender tolerates before fissioning the
/// lock. Small by design: Dice & Kogan size the TS phase to cover only
/// short critical sections, handing longer contention to the queue.
const FISSION_SPIN_BUDGET: u64 = 6;

/// Mode byte: featherweight fast path, no queue.
const COHERED: u8 = 0;
/// Mode byte: blocking lockers draw FIFO tickets.
const FISSIONED: u8 = 1;
/// Mode byte: fissioned by the adaptive policy; exempt from re-cohesion.
const PINNED: u8 = 2;

/// Per-object fission mode bytes, shared with the orphan sweeper.
#[derive(Debug)]
struct FissionMap {
    modes: Box<[AtomicU8]>,
}

impl FissionMap {
    fn new(objects: usize) -> Self {
        FissionMap {
            modes: (0..objects).map(|_| AtomicU8::new(COHERED)).collect(),
        }
    }

    fn mode(&self, obj: ObjRef) -> u8 {
        self.modes[obj.index()].load(Ordering::Acquire)
    }

    /// COHERED → FISSIONED; loses benignly to a concurrent fission or a
    /// pin.
    fn fission(&self, obj: ObjRef) -> bool {
        self.modes[obj.index()]
            .compare_exchange(COHERED, FISSIONED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// FISSIONED → COHERED; a PINNED object stays fissioned.
    fn recohere(&self, obj: ObjRef) -> bool {
        self.modes[obj.index()]
            .compare_exchange(FISSIONED, COHERED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    fn pin(&self, obj: ObjRef) {
        self.modes[obj.index()].store(PINNED, Ordering::Release);
    }

    fn unpin(&self, obj: ObjRef) {
        self.modes[obj.index()].store(COHERED, Ordering::Release);
    }
}

/// The fissile-lock protocol: thin fast path, FIFO queue under
/// contention, re-cohesion when the queue drains. See the module docs
/// for the mode machine.
pub struct FissileLocks {
    heap: Arc<Heap>,
    registry: ThreadRegistry,
    monitors: Arc<MonitorTable>,
    config: DynamicConfig,
    tickets: Arc<TicketLedger>,
    fission: Arc<FissionMap>,
    stats: Option<Arc<LockStats>>,
    tracer: Option<Arc<dyn TraceSink>>,
    injector: Option<Arc<dyn FaultInjector>>,
    schedule: Option<Arc<dyn Schedule>>,
}

impl FissileLocks {
    /// Creates a protocol over a fresh heap of `capacity` objects.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::new(
            Arc::new(Heap::with_capacity(capacity)),
            ThreadRegistry::new(),
        )
    }

    /// Creates a protocol over an existing heap and registry. The
    /// monitor table and ticket ledger are sized to the heap.
    pub fn new(heap: Arc<Heap>, registry: ThreadRegistry) -> Self {
        let monitors = Arc::new(MonitorTable::with_capacity(heap.capacity()));
        let tickets = Arc::new(TicketLedger::new(heap.capacity(), registry.max_threads()));
        let fission = Arc::new(FissionMap::new(heap.capacity()));
        FissileLocks {
            heap,
            registry,
            monitors,
            config: DynamicConfig::default(),
            tickets,
            fission,
            stats: None,
            tracer: None,
            injector: None,
            schedule: None,
        }
    }

    /// Attaches statistics counters (`ThinLocks::with_stats` discipline).
    #[must_use]
    pub fn with_stats(mut self, stats: Arc<LockStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Attaches an event sink for the full transition stream.
    #[must_use]
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.monitors.set_sink(Arc::clone(&sink));
        self.tracer = Some(sink);
        self
    }

    /// Attaches a fault injector, propagated into the monitor table and
    /// the heap so one injector covers the whole stack.
    #[must_use]
    pub fn with_fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.monitors.set_fault_injector(Arc::clone(&injector));
        self.heap.set_fault_injector(Arc::clone(&injector));
        self.injector = Some(injector);
        self
    }

    /// Attaches a cooperative schedule (model checker). Timed paths
    /// carry no schedule points, matching the thin backend.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Arc<dyn Schedule>) -> Self {
        self.monitors.set_schedule(Arc::clone(&schedule));
        self.schedule = Some(schedule);
        self
    }

    /// Installs the orphaned-lock sweeper on this protocol's registry.
    /// The sweep force-releases a dead thread's words *and* retires its
    /// pending ticket hand-off, so a queue behind a dead owner drains
    /// instead of stalling.
    #[must_use]
    pub fn with_orphan_recovery(self) -> Self {
        self.enable_orphan_recovery();
        self
    }

    /// Non-consuming form of [`FissileLocks::with_orphan_recovery`].
    pub fn enable_orphan_recovery(&self) {
        self.registry.set_exit_sweeper(Arc::new(FissileSweeper {
            heap: Arc::clone(&self.heap),
            monitors: Arc::clone(&self.monitors),
            tracer: self.tracer.clone(),
            injector: self.injector.clone(),
            profile: self.config.profile(),
            tickets: Arc::clone(&self.tickets),
            fission: Arc::clone(&self.fission),
        }));
    }

    /// Number of locks inflated so far (monitors allocated).
    pub fn inflated_count(&self) -> usize {
        self.monitors.len()
    }

    /// The raw lock word of `obj` — diagnostics and tests.
    pub fn lock_word(&self, obj: ObjRef) -> LockWord {
        self.cell(obj).load_relaxed()
    }

    /// The fat monitor of `obj`, if its lock has inflated.
    pub fn monitor_for(&self, obj: ObjRef) -> Option<&FatLock> {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            Some(self.monitor_of(word))
        } else {
            None
        }
    }

    /// True while `obj` is in a fissioned mode (including pinned) —
    /// blocking acquisitions are drawing FIFO tickets.
    pub fn is_fissioned(&self, obj: ObjRef) -> bool {
        self.fission.mode(obj) != COHERED
    }

    /// Fissions `obj` by hand — exactly what a contender does when its
    /// spin budget runs out. Returns `false` if the object was already
    /// fissioned (or pinned). Unlike inflation this is reversible: the
    /// release that drains the queue re-coheres the lock.
    pub fn fission(&self, obj: ObjRef) -> bool {
        self.fission.fission(obj)
    }

    /// Pins `obj` into FIFO mode: like [`fission`](FissileLocks::fission)
    /// but exempt from re-cohesion, for objects the adaptive policy has
    /// classified as persistently contended.
    pub fn pin_fifo(&self, obj: ObjRef) {
        self.fission.pin(obj);
    }

    /// Releases an adaptive pin, restoring the cohered fast path.
    /// Outstanding tickets keep draining through the exactly-once
    /// retirement rule; new lockers go back to the thin fast path.
    pub fn release_fifo(&self, obj: ObjRef) {
        self.fission.unpin(obj);
    }

    /// True while `obj` is pinned by the adaptive policy.
    pub fn pinned(&self, obj: ObjRef) -> bool {
        self.fission.mode(obj) == PINNED
    }

    #[inline]
    fn cell(&self, obj: ObjRef) -> &LockWordCell {
        self.heap.header(obj).lock_word()
    }

    #[inline]
    fn record_lock(&self, scenario: LockScenario, depth: u32) {
        if let Some(s) = &self.stats {
            s.record_lock(scenario, depth);
        }
    }

    #[inline]
    fn record_inflation(&self, cause: InflationCause) {
        if let Some(s) = &self.stats {
            s.record_inflation(cause);
        }
    }

    #[inline]
    fn emit(&self, thread: Option<ThreadIndex>, obj: Option<ObjRef>, kind: TraceEventKind) {
        if let Some(sink) = &self.tracer {
            sink.record(thread, obj, kind);
        }
    }

    #[inline]
    fn inject(&self, point: InjectionPoint) -> FaultAction {
        match &self.injector {
            None => FaultAction::Proceed,
            Some(injector) => injector.decide(point),
        }
    }

    #[inline]
    fn reach(&self, point: SchedPoint, obj: ObjRef) {
        if let Some(s) = &self.schedule {
            let _ = s.reached(point, Some(obj));
        }
    }

    fn monitor_of(&self, word: LockWord) -> &FatLock {
        let idx = word.monitor_index().expect("word must be inflated");
        self.monitors
            .get(idx)
            .expect("inflated word references an allocated monitor")
    }

    /// Owner-only inflation, identical to the thin backend's. Reached
    /// only from `wait`/`notify` and count overflow — contention
    /// fissions instead.
    fn inflate_owned(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        locks: u32,
        cause: InflationCause,
    ) -> SyncResult<&FatLock> {
        self.reach(SchedPoint::Inflate, obj);
        if self.inject(InjectionPoint::Inflate) == FaultAction::Yield {
            std::thread::yield_now();
        }
        let idx = self.monitors.allocate(FatLock::new_owned(t, locks))?;
        let cell = self.cell(obj);
        let current = cell.load_relaxed();
        cell.store_release(current.inflated(idx));
        self.record_inflation(cause);
        self.emit(
            Some(t.index()),
            Some(obj),
            TraceEventKind::Inflated { cause },
        );
        Ok(self.monitor_of(current.inflated(idx)))
    }

    /// Fat-monitor acquisition (entry queue), shared by the cohered slow
    /// path and the ticket queue's divert-on-inflation arm.
    fn lock_fat(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        word: LockWord,
        waiting: &mut BlockedOnGuard,
    ) -> SyncResult<()> {
        // The monitor's own park point carries no object (the fat lock
        // does not know which word references it); a scheduler resolves
        // it to the caller's most recent announced object. A fissioned
        // word reaches here without passing the cohered fast path's
        // announcement, so make one now or the park would be attributed
        // to a stale object — or none at all.
        self.reach(SchedPoint::LockFast, obj);
        let monitor = self.monitor_of(word);
        let (depth, contended) = match monitor.lock_uncontended(t) {
            Some(depth) => (depth, depth > 1),
            None => {
                waiting.publish(&self.registry, t, obj);
                monitor.lock(t, &self.registry)?;
                (monitor.count(), true)
            }
        };
        self.record_lock(
            if depth > 1 {
                if depth <= SHALLOW_DEPTH {
                    LockScenario::NestedShallow
                } else {
                    LockScenario::NestedDeep
                }
            } else if contended {
                LockScenario::FatContended
            } else {
                LockScenario::FatUncontended
            },
            depth,
        );
        self.emit(
            Some(t.index()),
            Some(obj),
            TraceEventKind::AcquireFat { contended },
        );
        Ok(())
    }

    /// The complete lock algorithm.
    #[inline]
    fn lock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);

        // Cohered fast path — the paper's single CAS, gated on the mode
        // byte so a fissioned object routes lockers to the queue.
        if self.fission.mode(obj) == COHERED {
            let old = cell.load_relaxed().with_lock_field_clear();
            let new = LockWord::from_bits(old.bits() | t.shifted());
            self.reach(SchedPoint::LockFast, obj);
            let fast = match self.inject(InjectionPoint::LockFastCas) {
                FaultAction::FailCas => false,
                FaultAction::Yield => {
                    std::thread::yield_now();
                    true
                }
                _ => true,
            };
            if fast && cell.try_cas(old, new, profile).is_ok() {
                self.record_lock(LockScenario::Unlocked, 1);
                self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
                return Ok(());
            }
        }

        // Nested locking by this thread — mode-independent, the word is
        // owned by us either way.
        let word = cell.load_relaxed();
        if word.can_nest(t.shifted()) {
            self.reach(SchedPoint::LockNest, obj);
            cell.store_relaxed(word.with_count_incremented());
            let depth = u32::from(word.thin_count()) + 2;
            self.record_lock(
                if depth <= SHALLOW_DEPTH {
                    LockScenario::NestedShallow
                } else {
                    LockScenario::NestedDeep
                },
                depth,
            );
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::AcquireNested { depth },
            );
            return Ok(());
        }

        self.lock_slow(obj, t, word)
    }

    /// Cohered slow path: fat locks, count overflow, and the bounded
    /// spin that ends in fission instead of inflation.
    #[inline(never)]
    fn lock_slow(&self, obj: ObjRef, t: ThreadToken, mut word: LockWord) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);
        let mut backoff = Backoff::jittered(self.config.spin_policy(), u64::from(t.index().get()));
        let mut spun = false;
        let mut waiting = BlockedOnGuard(None);
        loop {
            if word.is_fat() {
                return self.lock_fat(obj, t, word, &mut waiting);
            }

            if word.is_thin_owned_by(t.shifted()) {
                // Owned by us at the maximum count: the 257th acquisition.
                debug_assert_eq!(u32::from(word.thin_count()), MAX_THIN_COUNT);
                let locks = u32::from(word.thin_count()) + 1 + 1;
                self.emit(
                    Some(t.index()),
                    Some(obj),
                    TraceEventKind::AcquireNested { depth: locks },
                );
                self.inflate_owned(obj, t, locks, InflationCause::CountOverflow)?;
                self.record_lock(LockScenario::NestedDeep, locks);
                return Ok(());
            }

            if self.fission.mode(obj) != COHERED {
                // Someone (possibly us, below) fissioned the lock while
                // we were in the slow path: join the queue.
                return self.queue_lock(obj, t, waiting);
            }

            if word.is_unlocked() {
                let new = LockWord::from_bits(word.bits() | t.shifted());
                self.reach(SchedPoint::LockSlowCas, obj);
                let attempt = match self.inject(InjectionPoint::LockSlowCas) {
                    FaultAction::FailCas => false,
                    FaultAction::Yield => {
                        std::thread::yield_now();
                        true
                    }
                    _ => true,
                };
                if attempt && cell.try_cas(word, new, profile).is_ok() {
                    if spun {
                        // Where the thin backend inflates
                        // (InflationCause::Contention), fissile stays
                        // thin: contention is the queue's job.
                        let rounds = u32::try_from(backoff.rounds()).unwrap_or(u32::MAX);
                        self.emit(
                            Some(t.index()),
                            Some(obj),
                            TraceEventKind::AcquireContendedThin {
                                spin_rounds: rounds,
                            },
                        );
                        self.record_lock(LockScenario::ContendedThin, 1);
                        if let Some(s) = &self.stats {
                            s.record_spin_rounds(backoff.rounds());
                        }
                    } else {
                        self.record_lock(LockScenario::Unlocked, 1);
                        self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
                    }
                    return Ok(());
                }
                word = cell.load_acquire();
                continue;
            }

            // Thin-locked by another thread: spin against the budget.
            spun = true;
            waiting.publish(&self.registry, t, obj);
            if backoff.rounds() >= FISSION_SPIN_BUDGET {
                // Budget exhausted: fission (a lost CAS means someone
                // else just did) and queue on the next iteration.
                self.fission.fission(obj);
                word = cell.load_acquire();
                continue;
            }
            self.reach(SchedPoint::LockSpin, obj);
            if self.inject(InjectionPoint::LockSpin) == FaultAction::Yield {
                std::thread::yield_now();
            }
            backoff.snooze();
            word = cell.load_acquire();
        }
    }

    /// Fissioned acquisition: draw a ticket, wait for admission, take
    /// the word. Inflation permanently diverts the whole queue to the
    /// fat monitor (stranded tickets are harmless — every iteration
    /// checks for the fat shape first).
    fn queue_lock(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        mut waiting: BlockedOnGuard,
    ) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);
        let mut backoff = Backoff::jittered(self.config.spin_policy(), u64::from(t.index().get()));

        let word = cell.load_acquire();
        if word.is_fat() {
            return self.lock_fat(obj, t, word, &mut waiting);
        }
        let ticket = self.tickets.take_ticket(obj);
        self.tickets.publish_wait(t, obj, ticket);
        loop {
            let word = cell.load_acquire();
            if word.is_fat() {
                self.tickets.clear_wait(t);
                return self.lock_fat(obj, t, word, &mut waiting);
            }
            if self.tickets.is_admitted(obj, ticket) && word.is_unlocked() {
                let new = LockWord::from_bits(word.bits() | t.shifted());
                self.reach(SchedPoint::LockSlowCas, obj);
                let attempt = match self.inject(InjectionPoint::LockSlowCas) {
                    FaultAction::FailCas => false,
                    FaultAction::Yield => {
                        std::thread::yield_now();
                        true
                    }
                    _ => true,
                };
                if attempt && cell.try_cas(word, new, profile).is_ok() {
                    self.tickets.clear_wait(t);
                    self.tickets.record_admitted(obj, ticket);
                    let rounds = backoff.rounds();
                    if rounds == 0 {
                        self.record_lock(LockScenario::Unlocked, 1);
                        self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
                    } else {
                        self.emit(
                            Some(t.index()),
                            Some(obj),
                            TraceEventKind::AcquireContendedThin {
                                spin_rounds: u32::try_from(rounds).unwrap_or(u32::MAX),
                            },
                        );
                        self.record_lock(LockScenario::ContendedThin, 1);
                        if let Some(s) = &self.stats {
                            s.record_spin_rounds(rounds);
                        }
                    }
                    return Ok(());
                }
                // Lost the word to a barger; re-check from the top.
                continue;
            }
            waiting.publish(&self.registry, t, obj);
            self.reach(SchedPoint::LockSpin, obj);
            if self.inject(InjectionPoint::LockSpin) == FaultAction::Yield {
                std::thread::yield_now();
            }
            backoff.snooze();
        }
    }

    /// Retires a pending ticket hand-off after releasing the word, and
    /// re-coheres the lock once the queue has fully drained.
    #[inline]
    fn finish_ticketed_release(&self, obj: ObjRef, snapshot: u64) {
        if self.tickets.retire_admitted(obj, snapshot) && self.tickets.outstanding(obj) == 0 {
            self.fission.recohere(obj);
        }
    }

    /// The complete unlock algorithm: the thin backend's word
    /// transitions plus the ticket hand-off.
    #[inline]
    fn unlock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let profile = self.config.profile();
        let cell = self.cell(obj);
        let word = cell.load_relaxed();

        if word.is_locked_once_by(t.shifted()) {
            // Snapshot the hand-off obligation *before* the word clear:
            // afterwards a new ticketed owner could arm a fresh one.
            let snapshot = self.tickets.admitted_snapshot(obj);
            self.reach(SchedPoint::UnlockThin, obj);
            if self.inject(InjectionPoint::UnlockStore) == FaultAction::Yield {
                std::thread::yield_now();
            }
            let restored = word.with_lock_field_clear();
            match self.config.unlock_strategy() {
                UnlockStrategy::Store => cell.store_unlock(restored, profile),
                UnlockStrategy::CompareAndSwap => {
                    let r = cell.try_cas_release(word, restored, profile);
                    debug_assert!(r.is_ok(), "owner-only discipline violated");
                }
            }
            self.finish_ticketed_release(obj, snapshot);
            if let Some(s) = &self.stats {
                s.record_unlock_thin();
            }
            self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockThin);
            return Ok(());
        }

        if word.is_thin_owned_by(t.shifted()) {
            debug_assert!(word.thin_count() > 0);
            self.reach(SchedPoint::UnlockNest, obj);
            cell.store_relaxed(word.with_count_decremented());
            if let Some(s) = &self.stats {
                s.record_unlock_thin();
            }
            self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockThin);
            return Ok(());
        }

        self.unlock_slow(obj, t, word)
    }

    #[inline(never)]
    fn unlock_slow(&self, obj: ObjRef, t: ThreadToken, word: LockWord) -> SyncResult<()> {
        if word.is_fat() {
            self.reach(SchedPoint::FatUnlock, obj);
            let r = self.monitor_of(word).unlock(t, &self.registry);
            if r.is_ok() {
                if let Some(s) = &self.stats {
                    s.record_unlock_fat();
                }
                self.emit(Some(t.index()), Some(obj), TraceEventKind::UnlockFat);
            }
            return r;
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }

    /// Pre-inflation hint, identical to the thin backend's.
    ///
    /// # Errors
    ///
    /// [`SyncError::MonitorIndexExhausted`] if the monitor table is full.
    pub fn pre_inflate(&self, obj: ObjRef) -> SyncResult<bool> {
        let cell = self.cell(obj);
        let word = cell.load_relaxed();
        if !word.is_unlocked() {
            return Ok(false);
        }
        let idx = self.monitors.allocate(FatLock::new())?;
        if cell
            .try_cas(word, word.inflated(idx), self.config.profile())
            .is_ok()
        {
            self.record_inflation(InflationCause::Hint);
            self.emit(
                None,
                Some(obj),
                TraceEventKind::Inflated {
                    cause: InflationCause::Hint,
                },
            );
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Ensures `obj`'s lock is fat, inflating if the caller holds it thin.
    fn require_fat(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<&FatLock> {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            let monitor = self.monitor_of(word);
            if !monitor.holds(t) {
                return Err(if monitor.owner().is_some() {
                    SyncError::NotOwner
                } else {
                    SyncError::NotLocked
                });
            }
            return Ok(monitor);
        }
        if word.is_thin_owned_by(t.shifted()) {
            let locks = u32::from(word.thin_count()) + 1;
            return self.inflate_owned(obj, t, locks, InflationCause::WaitNotify);
        }
        if word.is_unlocked() {
            Err(SyncError::NotLocked)
        } else {
            Err(SyncError::NotOwner)
        }
    }

    /// One non-blocking acquisition attempt. A `try_lock` holds no
    /// ticket: it may barge past the queue (and its release may retire
    /// a dead ticketed owner's hand-off via the exactly-once rule).
    fn try_lock_impl(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<bool> {
        let profile = self.config.profile();
        let cell = self.cell(obj);

        let old = cell.load_relaxed().with_lock_field_clear();
        let new = LockWord::from_bits(old.bits() | t.shifted());
        let fast = match self.inject(InjectionPoint::LockFastCas) {
            FaultAction::FailCas => false,
            FaultAction::Yield => {
                std::thread::yield_now();
                true
            }
            _ => true,
        };
        if fast && cell.try_cas(old, new, profile).is_ok() {
            self.record_lock(LockScenario::Unlocked, 1);
            self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
            return Ok(true);
        }

        let word = cell.load_relaxed();
        if word.can_nest(t.shifted()) {
            cell.store_relaxed(word.with_count_incremented());
            let depth = u32::from(word.thin_count()) + 2;
            self.record_lock(
                if depth <= SHALLOW_DEPTH {
                    LockScenario::NestedShallow
                } else {
                    LockScenario::NestedDeep
                },
                depth,
            );
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::AcquireNested { depth },
            );
            return Ok(true);
        }

        if word.is_fat() {
            let monitor = self.monitor_of(word);
            let contended = monitor.owner().is_some();
            if monitor.try_lock(t) {
                let depth = monitor.count();
                self.record_lock(
                    if depth > 1 {
                        if depth <= SHALLOW_DEPTH {
                            LockScenario::NestedShallow
                        } else {
                            LockScenario::NestedDeep
                        }
                    } else if contended {
                        LockScenario::FatContended
                    } else {
                        LockScenario::FatUncontended
                    },
                    depth,
                );
                self.emit(
                    Some(t.index()),
                    Some(obj),
                    TraceEventKind::AcquireFat { contended },
                );
                return Ok(true);
            }
            return Ok(false);
        }

        if word.is_thin_owned_by(t.shifted()) {
            debug_assert_eq!(u32::from(word.thin_count()), MAX_THIN_COUNT);
            let locks = u32::from(word.thin_count()) + 2;
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::AcquireNested { depth: locks },
            );
            self.inflate_owned(obj, t, locks, InflationCause::CountOverflow)?;
            self.record_lock(LockScenario::NestedDeep, locks);
            return Ok(true);
        }

        if word.is_unlocked() {
            let new = LockWord::from_bits(word.bits() | t.shifted());
            if cell.try_cas(word, new, profile).is_ok() {
                self.record_lock(LockScenario::Unlocked, 1);
                self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireUnlocked);
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Deadline-bounded acquisition, identical in shape to the thin
    /// backend's: ticketless spinning (barging) on a thin word, timed
    /// parking on a fat one, and never a trace left on timeout.
    fn lock_deadline_impl(&self, obj: ObjRef, t: ThreadToken, timeout: Duration) -> SyncResult<()> {
        if self.try_lock_impl(obj, t)? {
            return Ok(());
        }
        let now = Instant::now();
        let deadline = now
            .checked_add(timeout)
            .unwrap_or_else(|| now + Duration::from_secs(86_400 * 365));
        let mut waiting = BlockedOnGuard(None);
        waiting.publish(&self.registry, t, obj);
        let mut backoff = Backoff::jittered(self.config.spin_policy(), u64::from(t.index().get()));
        loop {
            let word = self.cell(obj).load_acquire();
            if word.is_fat() {
                let monitor = self.monitor_of(word);
                let contended = monitor.owner().is_some();
                return match monitor.lock_n_deadline(t, 1, &self.registry, deadline) {
                    Ok(()) => {
                        let depth = monitor.count();
                        self.record_lock(
                            if depth > 1 {
                                if depth <= SHALLOW_DEPTH {
                                    LockScenario::NestedShallow
                                } else {
                                    LockScenario::NestedDeep
                                }
                            } else if contended {
                                LockScenario::FatContended
                            } else {
                                LockScenario::FatUncontended
                            },
                            depth,
                        );
                        self.emit(
                            Some(t.index()),
                            Some(obj),
                            TraceEventKind::AcquireFat { contended },
                        );
                        Ok(())
                    }
                    Err(SyncError::Timeout) => self.deadline_expired(obj, t),
                    Err(e) => Err(e),
                };
            }
            if self.try_lock_impl(obj, t)? {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return self.deadline_expired(obj, t);
            }
            if self.inject(InjectionPoint::LockSpin) == FaultAction::Yield {
                std::thread::yield_now();
            }
            backoff.snooze();
        }
    }

    fn deadline_expired(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireTimedOut);
        if let Some(report) = crate::watchdog::confirm_cycle(self, t.index(), obj) {
            let threads = u32::try_from(report.threads.len()).unwrap_or(u32::MAX);
            self.emit(
                Some(t.index()),
                Some(obj),
                TraceEventKind::DeadlockDetected { threads },
            );
            return Err(SyncError::DeadlockDetected);
        }
        Err(SyncError::Timeout)
    }
}

/// RAII publication of a thread's waits-for edge (same discipline as
/// the thin backend).
struct BlockedOnGuard(Option<Arc<ThreadRecord>>);

impl BlockedOnGuard {
    fn publish(&mut self, registry: &ThreadRegistry, t: ThreadToken, obj: ObjRef) {
        if self.0.is_none() {
            if let Ok(record) = registry.record(t.index()) {
                record.set_blocked_on(Some(obj));
                self.0 = Some(record);
            }
        }
    }
}

impl Drop for BlockedOnGuard {
    fn drop(&mut self) {
        if let Some(record) = &self.0 {
            record.set_blocked_on(None);
        }
    }
}

/// The registry exit sweep: the thin sweeper's word reclamation plus
/// ticket-queue repair — a dead ticketed owner's hand-off is retired so
/// the threads queued behind it keep draining.
struct FissileSweeper {
    heap: Arc<Heap>,
    monitors: Arc<MonitorTable>,
    tracer: Option<Arc<dyn TraceSink>>,
    injector: Option<Arc<dyn FaultInjector>>,
    profile: thinlock_runtime::arch::ArchProfile,
    tickets: Arc<TicketLedger>,
    fission: Arc<FissionMap>,
}

impl FissileSweeper {
    fn emit_reclaim(&self, dead: ThreadIndex, obj: ObjRef, fat: bool) {
        if let Some(sink) = &self.tracer {
            sink.record(
                Some(dead),
                Some(obj),
                TraceEventKind::OrphanReclaimed { fat },
            );
        }
    }
}

impl ExitSweeper for FissileSweeper {
    fn sweep_thread(&self, dead: ThreadIndex, registry: &ThreadRegistry) {
        if let Some(injector) = &self.injector {
            if injector.decide(InjectionPoint::RegistryRelease) == FaultAction::Yield {
                std::thread::yield_now();
            }
        }
        self.tickets.clear_wait_index(dead);
        for obj in self.heap.iter() {
            let cell = self.heap.header(obj).lock_word();
            let word = cell.load_acquire();
            if word.is_fat() {
                let Some(idx) = word.monitor_index() else {
                    continue;
                };
                if let Some(monitor) = self.monitors.get(idx) {
                    if monitor.reclaim_orphan(dead, registry) {
                        self.emit_reclaim(dead, obj, true);
                    }
                }
            } else if word.thin_owner() == Some(dead) {
                // Snapshot before the clearing CAS, mirroring unlock:
                // the obligation is either 0 or the dead owner's.
                let snapshot = self.tickets.admitted_snapshot(obj);
                let cleared = word.with_lock_field_clear();
                if cell.try_cas(word, cleared, self.profile).is_ok() {
                    if self.tickets.retire_admitted(obj, snapshot)
                        && self.tickets.outstanding(obj) == 0
                    {
                        self.fission.recohere(obj);
                    }
                    self.emit_reclaim(dead, obj, false);
                }
            }
        }
    }
}

impl SyncProtocol for FissileLocks {
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.lock_impl(obj, t)
    }

    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.unlock_impl(obj, t)
    }

    fn try_lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<bool> {
        let acquired = self.try_lock_impl(obj, t)?;
        if !acquired {
            self.emit(Some(t.index()), Some(obj), TraceEventKind::AcquireTimedOut);
        }
        Ok(acquired)
    }

    fn lock_deadline(&self, obj: ObjRef, t: ThreadToken, timeout: Duration) -> SyncResult<()> {
        self.lock_deadline_impl(obj, t, timeout)
    }

    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        if let Some(s) = &self.stats {
            s.record_wait();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Wait);
        monitor.wait(t, &self.registry, timeout)
    }

    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if let Some(s) = &self.stats {
            s.record_notify();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Notify);
        self.reach(SchedPoint::Notify, obj);
        monitor.notify(t)
    }

    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if let Some(s) = &self.stats {
            s.record_notify();
        }
        let monitor = self.require_fat(obj, t)?;
        self.emit(Some(t.index()), Some(obj), TraceEventKind::Notify);
        self.reach(SchedPoint::Notify, obj);
        monitor.notify_all(t)
    }

    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let word = self.cell(obj).load_acquire();
        if word.is_fat() {
            self.monitor_of(word).holds(t)
        } else {
            word.is_thin_owned_by(t.shifted())
        }
    }

    fn pre_inflate_hint(&self, obj: ObjRef) -> bool {
        let applied = self.pre_inflate(obj).unwrap_or(false);
        self.emit(None, Some(obj), TraceEventKind::PreInflateHint { applied });
        applied
    }

    fn pin_fifo_hint(&self, obj: ObjRef) -> bool {
        self.pin_fifo(obj);
        true
    }

    fn trace_sink(&self) -> Option<&dyn TraceSink> {
        self.tracer.as_deref()
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn name(&self) -> &'static str {
        "Fissile"
    }
}

impl SyncBackend for FissileLocks {
    fn monitor_probe(&self, obj: ObjRef) -> Option<MonitorProbe> {
        let monitor = self.monitor_for(obj)?;
        Some(MonitorProbe {
            owner: monitor.owner(),
            count: monitor.count(),
            entry_queue_len: monitor.entry_queue_len(),
            wait_set_len: monitor.wait_set_len(),
        })
    }

    fn in_wait_set(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.monitor_for(obj).is_some_and(|m| m.is_waiting(t))
    }

    fn spin_enabled(&self, obj: ObjRef, t: ThreadToken) -> bool {
        let word = self.probe_word(obj);
        match self.tickets.waiting_ticket(t, obj) {
            // Queued: progress needs the fat shape (divert) or an
            // admitted ticket with the word free.
            Some(ticket) => {
                word.is_fat() || (word.is_unlocked() && self.tickets.is_admitted(obj, ticket))
            }
            // Cohered spinner: every granted spin burns budget toward
            // fission, so the step always makes (bounded) progress.
            None => true,
        }
    }

    fn inflation_count(&self) -> u64 {
        self.monitors.len() as u64
    }

    fn monitors_live(&self) -> usize {
        self.monitors.len()
    }

    fn monitors_peak(&self) -> usize {
        self.monitors.len()
    }

    fn monitors_allocated(&self) -> u64 {
        self.monitors.len() as u64
    }
}

impl fmt::Debug for FissileLocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FissileLocks")
            .field("heap", &self.heap)
            .field("inflated", &self.monitors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    fn fresh(capacity: usize) -> FissileLocks {
        FissileLocks::with_capacity(capacity)
    }

    #[test]
    fn cohered_lock_unlock_is_thin_identical() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        let before = p.lock_word(obj);
        p.lock(obj, t).unwrap();
        let held = p.lock_word(obj);
        assert_eq!(held.thin_owner().map(|o| o.get()), Some(t.index().get()));
        assert_eq!(held.header_bits(), before.header_bits());
        p.unlock(obj, t).unwrap();
        assert_eq!(p.lock_word(obj), before, "word restored bit-for-bit");
        assert!(!p.is_fissioned(obj));
        assert_eq!(p.inflated_count(), 0);
    }

    #[test]
    fn forced_fission_recoheres_when_queue_drains() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        assert!(p.fission(obj));
        assert!(!p.fission(obj), "second fission is a no-op");
        p.lock(obj, t).unwrap();
        assert!(p.is_fissioned(obj));
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        assert!(!p.is_fissioned(obj), "drained queue re-coheres");
        assert!(p.lock_word(obj).is_unlocked());
        assert_eq!(p.inflated_count(), 0);
        // And the cohered fast path works again.
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn pinning_survives_queue_drain() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.pin_fifo(obj);
        assert!(p.pinned(obj));
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        assert!(p.pinned(obj), "drain does not unpin");
        p.release_fifo(obj);
        assert!(!p.is_fissioned(obj));
    }

    #[test]
    fn contention_fissions_instead_of_inflating() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let owner = {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                barrier.wait();
                thread::sleep(Duration::from_millis(30));
                p.unlock(obj, t).unwrap();
            })
        };
        let r = p.registry().register().unwrap();
        let t = r.token();
        barrier.wait();
        p.lock(obj, t).unwrap(); // exhausts the budget, fissions, queues
        assert!(p.holds_lock(obj, t));
        assert_eq!(p.inflated_count(), 0, "contention must not inflate");
        p.unlock(obj, t).unwrap();
        owner.join().unwrap();
        assert!(!p.is_fissioned(obj), "queue drained, lock re-cohered");
    }

    #[test]
    fn nesting_works_in_both_modes() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        for mode in 0..2 {
            if mode == 1 {
                p.fission(obj);
            }
            for depth in 1..=5u8 {
                p.lock(obj, t).unwrap();
                assert_eq!(p.lock_word(obj).thin_count(), depth - 1);
            }
            for _ in 0..5 {
                p.unlock(obj, t).unwrap();
            }
            assert!(p.lock_word(obj).is_unlocked());
        }
        assert_eq!(p.inflated_count(), 0);
    }

    #[test]
    fn count_overflow_still_inflates() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        for _ in 0..257 {
            p.lock(obj, t).unwrap();
        }
        assert!(p.lock_word(obj).is_fat());
        assert_eq!(p.inflated_count(), 1);
        for _ in 0..257 {
            p.unlock(obj, t).unwrap();
        }
        assert!(!p.holds_lock(obj, t));
    }

    #[test]
    fn wait_notify_inflates_and_works() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let waiter = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                let out = p.wait(obj, t, None).unwrap();
                p.unlock(obj, t).unwrap();
                out
            })
        };
        while !p.lock_word(obj).is_fat() {
            thread::yield_now();
        }
        let r = p.registry().register().unwrap();
        let t = r.token();
        p.lock(obj, t).unwrap();
        p.notify(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified);
    }

    #[test]
    fn inflation_diverts_a_fissioned_queue() {
        // Fission first, then inflate via a hint: queued acquisitions
        // must divert to the fat monitor instead of stalling on
        // stranded tickets.
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.fission(obj);
        assert!(p.pre_inflate(obj).unwrap());
        p.lock(obj, t).unwrap();
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        assert!(p.lock_word(obj).is_fat(), "inflation is permanent");
    }

    #[test]
    fn orphan_sweep_retires_dead_ticketed_owner() {
        let p = Arc::new(fresh(4).with_orphan_recovery());
        let obj = p.heap().alloc().unwrap();
        p.fission(obj);
        {
            let r = p.registry().register().unwrap();
            p.lock(obj, r.token()).unwrap(); // ticketed acquisition
            assert!(p.is_fissioned(obj));
            // Dies owning the lock: the sweeper must clear the word AND
            // retire the hand-off so the queue is not wedged.
        }
        assert!(p.lock_word(obj).is_unlocked(), "sweeper cleared the word");
        assert!(!p.is_fissioned(obj), "sweeper re-cohered the drained queue");
        let r = p.registry().register().unwrap();
        let t = r.token();
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn try_lock_barges_while_fissioned() {
        let p = fresh(4);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.fission(obj);
        assert!(p.try_lock(obj, t).unwrap(), "barger ignores the queue");
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        assert!(p.lock_word(obj).is_unlocked());
    }

    #[test]
    fn mutual_exclusion_many_threads_one_object() {
        let p = Arc::new(fresh(4));
        let obj = p.heap().alloc().unwrap();
        let total = Arc::new(AtomicU64::new(0));
        const THREADS: usize = 4;
        const ITERS: u64 = 300;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let p = Arc::clone(&p);
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                for _ in 0..ITERS {
                    p.lock(obj, t).unwrap();
                    let v = total.load(Ordering::Relaxed);
                    std::hint::spin_loop();
                    total.store(v + 1, Ordering::Relaxed);
                    p.unlock(obj, t).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), THREADS as u64 * ITERS);
        assert_eq!(p.inflated_count(), 0, "contention never inflates");
        let r = p.registry().register().unwrap();
        assert!(!p.holds_lock(obj, r.token()));
    }

    #[test]
    fn unlock_errors_mirror_java() {
        let p = fresh(4);
        let ra = p.registry().register().unwrap();
        let rb = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        assert_eq!(p.unlock(obj, ra.token()), Err(SyncError::NotLocked));
        p.lock(obj, ra.token()).unwrap();
        assert_eq!(p.unlock(obj, rb.token()), Err(SyncError::NotOwner));
        p.unlock(obj, ra.token()).unwrap();
    }
}
