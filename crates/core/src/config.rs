//! Fast-path configuration: the Figure 6 engineering variants.
//!
//! Section 3.5 of the paper measures several engineerings of the same
//! locking algorithm:
//!
//! * **Inline** — assembly inlined into each bytecode, specialized per
//!   architecture. Here: a zero-sized [`FastPathConfig`] whose methods are
//!   compile-time constants, so the protocol monomorphizes to a straight-
//!   line fast path ([`StaticUp`], [`StaticMp`], [`StaticKernelCas`]).
//! * **FnCall** — one shared out-of-line lock/unlock routine. Here:
//!   [`FastPathConfig::outlined`] returns `true`, routing the fast path
//!   through an `#[inline(never)]` function.
//! * **ThinLock (dynamic architecture test)** — the shipped configuration:
//!   the CPU type is tested at run time on every operation. Here:
//!   [`DynamicConfig`], whose profile is a runtime value.
//! * **UnlkC&S** — unlocking with compare-and-swap instead of a store,
//!   demonstrating why the owner-only-write discipline pays. Here:
//!   [`UnlockStrategy::CompareAndSwap`].

use std::fmt::Debug;

use thinlock_runtime::arch::ArchProfile;
use thinlock_runtime::backoff::SpinPolicy;

/// How the unlock path writes the restored lock word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UnlockStrategy {
    /// A plain (release on MP) store — the paper's design, legal because
    /// only the owner may write the lock word of a held lock.
    #[default]
    Store,
    /// Compare-and-swap — the Figure 6 "UnlkC&S" straw man.
    CompareAndSwap,
}

/// Compile-time or runtime selection of the fast-path engineering.
///
/// Implementations should keep every method `#[inline]`-friendly: when all
/// answers are constants the optimizer reduces the protocol to the paper's
/// specialized inline assembly; when they read fields it becomes the
/// dynamically-tested shipped version.
pub trait FastPathConfig: Debug + Send + Sync + 'static {
    /// The simulated hardware (fence and CAS behaviour).
    fn profile(&self) -> ArchProfile;

    /// How unlock writes the lock word.
    fn unlock_strategy(&self) -> UnlockStrategy {
        UnlockStrategy::Store
    }

    /// Route the fast path through an `#[inline(never)]` function,
    /// modelling the paper's single shared lock/unlock routine.
    fn outlined(&self) -> bool {
        false
    }

    /// How the contention path waits for the owner (ablation knob).
    fn spin_policy(&self) -> SpinPolicy {
        SpinPolicy::SpinThenYield
    }
}

/// Runtime-configurable fast path — the paper's shipped "ThinLock"
/// configuration (dynamic architecture test on every operation).
///
/// # Example
///
/// ```
/// use thinlock::{DynamicConfig, FastPathConfig, UnlockStrategy};
/// use thinlock_runtime::arch::ArchProfile;
///
/// let cfg = DynamicConfig::new(ArchProfile::PowerPcMp);
/// assert_eq!(cfg.profile(), ArchProfile::PowerPcMp);
/// assert_eq!(cfg.unlock_strategy(), UnlockStrategy::Store);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicConfig {
    /// Simulated hardware profile.
    pub profile: ArchProfile,
    /// Unlock write strategy.
    pub unlock: UnlockStrategy,
    /// Whether the fast path is forced out of line.
    pub outlined: bool,
    /// Contention-wait policy.
    pub spin: SpinPolicy,
}

impl DynamicConfig {
    /// Creates the shipped configuration for `profile` (store unlock,
    /// inlined fast path).
    pub fn new(profile: ArchProfile) -> Self {
        DynamicConfig {
            profile,
            unlock: UnlockStrategy::Store,
            outlined: false,
            spin: SpinPolicy::SpinThenYield,
        }
    }

    /// Switches to the Figure 6 "UnlkC&S" unlock.
    #[must_use]
    pub fn with_cas_unlock(mut self) -> Self {
        self.unlock = UnlockStrategy::CompareAndSwap;
        self
    }

    /// Forces the fast path through an out-of-line function ("FnCall").
    #[must_use]
    pub fn with_outlined_fast_path(mut self) -> Self {
        self.outlined = true;
        self
    }

    /// Selects the contention-wait policy (ablation).
    #[must_use]
    pub fn with_spin_policy(mut self, spin: SpinPolicy) -> Self {
        self.spin = spin;
        self
    }
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig::new(ArchProfile::default())
    }
}

impl FastPathConfig for DynamicConfig {
    #[inline]
    fn profile(&self) -> ArchProfile {
        self.profile
    }

    #[inline]
    fn unlock_strategy(&self) -> UnlockStrategy {
        self.unlock
    }

    #[inline]
    fn outlined(&self) -> bool {
        self.outlined
    }

    #[inline]
    fn spin_policy(&self) -> SpinPolicy {
        self.spin
    }
}

macro_rules! static_profile {
    ($(#[$doc:meta])* $name:ident => $profile:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
        pub struct $name;

        impl FastPathConfig for $name {
            #[inline]
            fn profile(&self) -> ArchProfile {
                $profile
            }
        }
    };
}

static_profile!(
    /// Compile-time PowerPC-uniprocessor fast path — Figure 6 "Inline".
    StaticUp => ArchProfile::PowerPcUp
);
static_profile!(
    /// Compile-time PowerPC-multiprocessor fast path — Figure 6 "MP Sync".
    StaticMp => ArchProfile::PowerPcMp
);
static_profile!(
    /// Compile-time POWER kernel-CAS fast path.
    StaticKernelCas => ArchProfile::PowerKernelCas
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_design() {
        let cfg = DynamicConfig::default();
        assert_eq!(cfg.profile(), ArchProfile::PowerPcMp);
        assert_eq!(cfg.unlock_strategy(), UnlockStrategy::Store);
        assert!(!cfg.outlined());
    }

    #[test]
    fn builders_compose() {
        let cfg = DynamicConfig::new(ArchProfile::PowerPcUp)
            .with_cas_unlock()
            .with_outlined_fast_path();
        assert_eq!(cfg.profile(), ArchProfile::PowerPcUp);
        assert_eq!(cfg.unlock_strategy(), UnlockStrategy::CompareAndSwap);
        assert!(cfg.outlined());
    }

    #[test]
    fn static_configs_are_zero_sized_constants() {
        assert_eq!(std::mem::size_of::<StaticUp>(), 0);
        assert_eq!(StaticUp.profile(), ArchProfile::PowerPcUp);
        assert_eq!(StaticMp.profile(), ArchProfile::PowerPcMp);
        assert_eq!(StaticKernelCas.profile(), ArchProfile::PowerKernelCas);
        assert_eq!(StaticUp.unlock_strategy(), UnlockStrategy::Store);
        assert!(!StaticMp.outlined());
    }
}
