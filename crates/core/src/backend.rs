//! Backend selection: one name-keyed constructor for every protocol the
//! workspace implements, so harnesses (`reproduce --backend`, `chaos
//! --backend`, `lockmc --backend`) build interchangeable
//! [`SyncBackend`] trait objects from a CLI flag instead of hard-coding
//! `ThinLocks`.
//!
//! ```
//! use thinlock::BackendChoice;
//!
//! let choice = BackendChoice::from_name("cjm").expect("known backend");
//! let locks = choice.build(16);
//! assert_eq!(locks.name(), "CJM");
//! assert!(locks.deflation_capable());
//! ```

use std::fmt;
use std::sync::Arc;

use thinlock_runtime::backend::SyncBackend;
use thinlock_runtime::events::TraceSink;
use thinlock_runtime::fault::FaultInjector;
use thinlock_runtime::schedule::Schedule;
use thinlock_runtime::stats::LockStats;

use crate::adaptive::AdaptiveLocks;
use crate::cjm::CjmLocks;
use crate::fissile::FissileLocks;
use crate::hapax::HapaxLocks;
use crate::tasuki::TasukiLocks;
use crate::thin::ThinLocks;

/// The protocols selectable by name from harness CLIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendChoice {
    /// The paper's protocol: one-way inflation into a grow-only monitor
    /// table ([`ThinLocks`]).
    Thin,
    /// Tasuki-style deflation on observed-quiet release, still over a
    /// grow-only table ([`TasukiLocks`]).
    Tasuki,
    /// Compact Java Monitors: deflation plus a bounded recycling monitor
    /// pool ([`CjmLocks`]).
    Cjm,
    /// Thin fast path that fissions into a FIFO ticket queue under
    /// contention and re-coheres when it drains ([`FissileLocks`]).
    Fissile,
    /// Constant-time ticketed arrival with FIFO admission on every
    /// blocking acquisition ([`HapaxLocks`]).
    Hapax,
    /// Per-object composite: fissile semantics plus a pin policy driven
    /// by observed contention ([`AdaptiveLocks`]).
    Adaptive,
}

/// Optional instrumentation threaded into a backend at construction.
///
/// The thin, CJM, fissile, hapax, and adaptive backends accept all five
/// seams. The Tasuki backend honors `fault_injector` and
/// `orphan_recovery` (so the chaos harness and the crash matrix cover
/// it) but ignores `stats`, `trace_sink`, and `schedule` — harnesses
/// that depend on one of those restrict themselves to
/// [`BackendChoice::schedulable`] choices.
#[derive(Default)]
pub struct BackendSeams {
    /// Statistics counters (`ThinLocks::with_stats` discipline).
    pub stats: Option<Arc<LockStats>>,
    /// Event sink for the full transition stream.
    pub trace_sink: Option<Arc<dyn TraceSink>>,
    /// Fault injector for the chaos harness.
    pub fault_injector: Option<Arc<dyn FaultInjector>>,
    /// Cooperative schedule for the model checker.
    pub schedule: Option<Arc<dyn Schedule>>,
    /// Install the registry exit sweeper for orphaned-lock recovery.
    pub orphan_recovery: bool,
}

impl fmt::Debug for BackendSeams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendSeams")
            .field("stats", &self.stats.is_some())
            .field("trace_sink", &self.trace_sink.is_some())
            .field("fault_injector", &self.fault_injector.is_some())
            .field("schedule", &self.schedule.is_some())
            .field("orphan_recovery", &self.orphan_recovery)
            .finish()
    }
}

impl BackendChoice {
    /// Every selectable backend, in CLI-listing order.
    pub const ALL: [BackendChoice; 6] = [
        BackendChoice::Thin,
        BackendChoice::Tasuki,
        BackendChoice::Cjm,
        BackendChoice::Fissile,
        BackendChoice::Hapax,
        BackendChoice::Adaptive,
    ];

    /// Parses a CLI name (case-insensitive): `thin`, `tasuki`, `cjm`,
    /// `fissile`, `hapax`, `adaptive`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "thin" => Some(BackendChoice::Thin),
            "tasuki" => Some(BackendChoice::Tasuki),
            "cjm" => Some(BackendChoice::Cjm),
            "fissile" => Some(BackendChoice::Fissile),
            "hapax" => Some(BackendChoice::Hapax),
            "adaptive" => Some(BackendChoice::Adaptive),
            _ => None,
        }
    }

    /// The CLI name; [`BackendChoice::from_name`] round-trips it.
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Thin => "thin",
            BackendChoice::Tasuki => "tasuki",
            BackendChoice::Cjm => "cjm",
            BackendChoice::Fissile => "fissile",
            BackendChoice::Hapax => "hapax",
            BackendChoice::Adaptive => "adaptive",
        }
    }

    /// Whether this backend ever restores a fat word to neutral — picks
    /// the invariant set the model checker enforces (one-way inflation
    /// vs. deflation safety). The ticket-queue backends answer
    /// contention outside the word, so their inflation (wait/notify,
    /// overflow, hints only) stays strictly one-way.
    pub fn deflation_capable(self) -> bool {
        match self {
            BackendChoice::Thin
            | BackendChoice::Fissile
            | BackendChoice::Hapax
            | BackendChoice::Adaptive => false,
            BackendChoice::Tasuki | BackendChoice::Cjm => true,
        }
    }

    /// Whether the backend honors all [`BackendSeams`] — harnesses that
    /// depend on the `schedule` seam (the model checker) only offer
    /// these choices.
    pub fn schedulable(self) -> bool {
        !matches!(self, BackendChoice::Tasuki)
    }

    /// Whether the backend consults [`FaultInjector`] at its labeled
    /// injection points — the capability the chaos harness and the
    /// crash-chaos supervisor require. Every backend qualifies.
    pub fn fault_injectable(self) -> bool {
        true
    }

    /// Whether the backend installs a registry exit sweeper when
    /// [`BackendSeams::orphan_recovery`] is set, force-releasing a dead
    /// thread's locks (and, for the ticket-queue backends, retiring the
    /// dead owner's pending FIFO hand-off). Every backend qualifies.
    pub fn orphan_recoverable(self) -> bool {
        true
    }

    /// Whether `monitors_live`/`monitors_peak` are bounded by the number
    /// of simultaneously-inflated objects. The Tasuki table never reuses
    /// an index (its deflation revalidation relies on that), so its
    /// reported population is the *cumulative* inflation count and the
    /// chaos harness must not grade it against the live-object bound.
    pub fn bounded_monitor_population(self) -> bool {
        !matches!(self, BackendChoice::Tasuki)
    }

    /// Whether contended acquisitions are admitted in FIFO arrival
    /// order (ticket-queue backends) rather than by spin race. Fairness
    /// harnesses gate the Jain index only for these backends — a
    /// barging acquirer makes no admission-order promise to regress.
    /// Fissile qualifies because its fissioned mode is the FIFO queue
    /// and contention is exactly what fissions the word; adaptive
    /// inherits fissile's machinery.
    pub fn fifo_admission(self) -> bool {
        matches!(
            self,
            BackendChoice::Fissile | BackendChoice::Hapax | BackendChoice::Adaptive
        )
    }

    /// Builds an uninstrumented backend over a fresh heap of `capacity`
    /// objects.
    pub fn build(self, capacity: usize) -> Arc<dyn SyncBackend + Send + Sync> {
        self.build_with(capacity, BackendSeams::default())
    }

    /// Builds a backend with instrumentation seams attached (see
    /// [`BackendSeams`] for the Tasuki caveat).
    pub fn build_with(
        self,
        capacity: usize,
        seams: BackendSeams,
    ) -> Arc<dyn SyncBackend + Send + Sync> {
        match self {
            BackendChoice::Thin => {
                let mut p = ThinLocks::with_capacity(capacity);
                if let Some(stats) = seams.stats {
                    p = p.with_stats(stats);
                }
                if let Some(sink) = seams.trace_sink {
                    p = p.with_trace_sink(sink);
                }
                if let Some(injector) = seams.fault_injector {
                    p = p.with_fault_injector(injector);
                }
                if let Some(schedule) = seams.schedule {
                    p = p.with_schedule(schedule);
                }
                if seams.orphan_recovery {
                    p = p.with_orphan_recovery();
                }
                Arc::new(p)
            }
            BackendChoice::Tasuki => {
                let mut p = TasukiLocks::with_capacity(capacity);
                if let Some(injector) = seams.fault_injector {
                    p = p.with_fault_injector(injector);
                }
                if seams.orphan_recovery {
                    p = p.with_orphan_recovery();
                }
                Arc::new(p)
            }
            BackendChoice::Cjm => {
                let mut p = CjmLocks::with_capacity(capacity);
                if let Some(stats) = seams.stats {
                    p = p.with_stats(stats);
                }
                if let Some(sink) = seams.trace_sink {
                    p = p.with_trace_sink(sink);
                }
                if let Some(injector) = seams.fault_injector {
                    p = p.with_fault_injector(injector);
                }
                if let Some(schedule) = seams.schedule {
                    p = p.with_schedule(schedule);
                }
                if seams.orphan_recovery {
                    p = p.with_orphan_recovery();
                }
                Arc::new(p)
            }
            BackendChoice::Fissile => {
                let mut p = FissileLocks::with_capacity(capacity);
                if let Some(stats) = seams.stats {
                    p = p.with_stats(stats);
                }
                if let Some(sink) = seams.trace_sink {
                    p = p.with_trace_sink(sink);
                }
                if let Some(injector) = seams.fault_injector {
                    p = p.with_fault_injector(injector);
                }
                if let Some(schedule) = seams.schedule {
                    p = p.with_schedule(schedule);
                }
                if seams.orphan_recovery {
                    p = p.with_orphan_recovery();
                }
                Arc::new(p)
            }
            BackendChoice::Hapax => {
                let mut p = HapaxLocks::with_capacity(capacity);
                if let Some(stats) = seams.stats {
                    p = p.with_stats(stats);
                }
                if let Some(sink) = seams.trace_sink {
                    p = p.with_trace_sink(sink);
                }
                if let Some(injector) = seams.fault_injector {
                    p = p.with_fault_injector(injector);
                }
                if let Some(schedule) = seams.schedule {
                    p = p.with_schedule(schedule);
                }
                if seams.orphan_recovery {
                    p = p.with_orphan_recovery();
                }
                Arc::new(p)
            }
            BackendChoice::Adaptive => {
                let mut p = AdaptiveLocks::with_capacity(capacity);
                if let Some(stats) = seams.stats {
                    p = p.with_stats(stats);
                }
                if let Some(sink) = seams.trace_sink {
                    p = p.with_trace_sink(sink);
                }
                if let Some(injector) = seams.fault_injector {
                    p = p.with_fault_injector(injector);
                }
                if let Some(schedule) = seams.schedule {
                    p = p.with_schedule(schedule);
                }
                if seams.orphan_recovery {
                    p = p.with_orphan_recovery();
                }
                Arc::new(p)
            }
        }
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for choice in BackendChoice::ALL {
            assert_eq!(BackendChoice::from_name(choice.name()), Some(choice));
        }
        assert_eq!(BackendChoice::from_name("CJM"), Some(BackendChoice::Cjm));
        assert_eq!(BackendChoice::from_name("nope"), None);
    }

    #[test]
    fn built_backends_lock_and_report_capability() {
        for choice in BackendChoice::ALL {
            let locks = choice.build(4);
            assert_eq!(locks.deflation_capable(), choice.deflation_capable());
            let r = locks.registry().register().unwrap();
            let t = r.token();
            let obj = locks.heap().alloc().unwrap();
            locks.lock(obj, t).unwrap();
            assert!(locks.holds_lock(obj, t));
            assert_eq!(locks.owner_of(obj), Some(t.index()));
            locks.unlock(obj, t).unwrap();
            assert_eq!(locks.owner_of(obj), None, "{choice}");
        }
    }

    #[test]
    fn seams_thread_through_instrumented_backends() {
        let stats = Arc::new(LockStats::new());
        let seams = BackendSeams {
            stats: Some(Arc::clone(&stats)),
            orphan_recovery: true,
            ..BackendSeams::default()
        };
        let locks = BackendChoice::Cjm.build_with(4, seams);
        let r = locks.registry().register().unwrap();
        let t = r.token();
        let obj = locks.heap().alloc().unwrap();
        locks.lock(obj, t).unwrap();
        locks.unlock(obj, t).unwrap();
        assert_eq!(stats.snapshot().scenario_counts[0], 1);
    }

    #[test]
    fn capability_matrix() {
        for choice in BackendChoice::ALL {
            assert!(choice.fault_injectable(), "{choice}");
            assert!(choice.orphan_recoverable(), "{choice}");
            if choice != BackendChoice::Tasuki {
                assert!(choice.schedulable(), "{choice}");
                assert!(choice.bounded_monitor_population(), "{choice}");
            }
        }
        assert!(!BackendChoice::Tasuki.bounded_monitor_population());
        assert!(!BackendChoice::Tasuki.schedulable());
        for queueing in [
            BackendChoice::Fissile,
            BackendChoice::Hapax,
            BackendChoice::Adaptive,
        ] {
            assert!(
                !queueing.deflation_capable(),
                "{queueing}: queue backends keep one-way inflation"
            );
        }
    }

    #[test]
    fn tasuki_honors_fault_and_orphan_seams() {
        use thinlock_runtime::fault::{FaultAction, InjectionPoint};

        #[derive(Debug, Default)]
        struct Counting(std::sync::atomic::AtomicUsize);
        impl FaultInjector for Counting {
            fn decide(&self, _point: InjectionPoint) -> FaultAction {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                FaultAction::Proceed
            }
        }

        let injector = Arc::new(Counting::default());
        let seams = BackendSeams {
            fault_injector: Some(Arc::clone(&injector) as Arc<dyn FaultInjector>),
            orphan_recovery: true,
            ..BackendSeams::default()
        };
        let locks = BackendChoice::Tasuki.build_with(4, seams);
        let r = locks.registry().register().unwrap();
        let t = r.token();
        let obj = locks.heap().alloc().unwrap();
        locks.lock(obj, t).unwrap();
        locks.unlock(obj, t).unwrap();
        assert!(
            injector.0.load(std::sync::atomic::Ordering::Relaxed) >= 2,
            "tasuki must consult the injector on lock and unlock"
        );
    }
}
