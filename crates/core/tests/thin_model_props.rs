//! Property tests of the thin-lock protocol against a trivial reference
//! model: arbitrary single-threaded sequences of lock/unlock/wait-ish
//! operations must produce exactly the outcomes the model predicts, and
//! the lock word must decode to the model's state after every step.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

use thinlock::ThinLocks;
use thinlock_runtime::error::SyncError;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::lockword::LockState;
use thinlock_runtime::protocol::SyncProtocol;

/// One step of the generated workload.
#[derive(Debug, Clone, Copy)]
enum Step {
    Lock(u8),
    Unlock(u8),
    Notify(u8),
    HoldsQuery(u8),
}

fn arb_step(objects: u8) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..objects).prop_map(Step::Lock),
        3 => (0..objects).prop_map(Step::Unlock),
        1 => (0..objects).prop_map(Step::Notify),
        1 => (0..objects).prop_map(Step::HoldsQuery),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Single-threaded model equivalence. The model is a per-object depth
    /// counter plus an "inflated" flag; the protocol must agree on every
    /// success, every error, and every decoded lock-word state.
    #[test]
    fn protocol_matches_reference_model(
        steps in proptest::collection::vec(arb_step(4), 1..120)
    ) {
        let locks = ThinLocks::with_capacity(4);
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let objs: Vec<ObjRef> = (0..4).map(|_| locks.heap().alloc().unwrap()).collect();
        let hashes: Vec<u8> = objs
            .iter()
            .map(|&o| locks.lock_word(o).header_bits())
            .collect();

        let mut depth: HashMap<usize, u32> = HashMap::new();
        let mut inflated: HashMap<usize, bool> = HashMap::new();

        for step in steps {
            match step {
                Step::Lock(i) => {
                    let i = usize::from(i);
                    let r = locks.lock(objs[i], t);
                    prop_assert!(r.is_ok());
                    let d = depth.entry(i).or_insert(0);
                    *d += 1;
                    // The 257th acquisition (count overflow) inflates.
                    if *d > 256 {
                        inflated.insert(i, true);
                    }
                }
                Step::Unlock(i) => {
                    let i = usize::from(i);
                    let d = depth.entry(i).or_insert(0);
                    let r = locks.unlock(objs[i], t);
                    if *d == 0 {
                        // Not held: the error depends on inflation state
                        // only in its flavour; both mean "illegal monitor
                        // state" in Java.
                        prop_assert!(matches!(
                            r,
                            Err(SyncError::NotLocked) | Err(SyncError::NotOwner)
                        ));
                    } else {
                        prop_assert!(r.is_ok());
                        *d -= 1;
                    }
                }
                Step::Notify(i) => {
                    let i = usize::from(i);
                    let d = *depth.get(&i).unwrap_or(&0);
                    let r = locks.notify(objs[i], t);
                    if d == 0 {
                        prop_assert!(r.is_err());
                    } else {
                        prop_assert!(r.is_ok());
                        inflated.insert(i, true);
                    }
                }
                Step::HoldsQuery(i) => {
                    let i = usize::from(i);
                    let d = *depth.get(&i).unwrap_or(&0);
                    prop_assert_eq!(locks.holds_lock(objs[i], t), d > 0);
                }
            }

            // After every step, each object's lock word must decode to the
            // model's state.
            for (i, &obj) in objs.iter().enumerate() {
                let d = *depth.get(&i).unwrap_or(&0);
                let infl = *inflated.get(&i).unwrap_or(&false);
                let word = locks.lock_word(obj);
                prop_assert_eq!(word.header_bits(), hashes[i], "header disturbed");
                match (infl, d) {
                    (false, 0) => prop_assert_eq!(word.state(), LockState::Unlocked),
                    (false, d) => match word.state() {
                        LockState::Thin { count, .. } => {
                            prop_assert_eq!(u32::from(count) + 1, d);
                        }
                        other => prop_assert!(false, "expected thin, got {:?}", other),
                    },
                    (true, _) => prop_assert!(word.is_fat(), "inflation is permanent"),
                }
            }
        }

        // Drain all held locks; everything must release cleanly.
        for (i, &obj) in objs.iter().enumerate() {
            let d = *depth.get(&i).unwrap_or(&0);
            for _ in 0..d {
                prop_assert!(locks.unlock(obj, t).is_ok());
            }
            prop_assert!(!locks.holds_lock(obj, t));
        }
    }

    /// The guard API never leaks a lock, whatever the nesting pattern.
    #[test]
    fn guards_balance_arbitrary_nesting(depths in proptest::collection::vec(1u8..6, 1..12)) {
        use thinlock_runtime::protocol::SyncProtocolExt;
        let locks = Arc::new(ThinLocks::with_capacity(4));
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let obj = locks.heap().alloc().unwrap();
        for d in depths {
            let mut guards = Vec::new();
            for _ in 0..d {
                guards.push(locks.enter(obj, t).unwrap());
            }
            prop_assert!(locks.holds_lock(obj, t));
            drop(guards);
            prop_assert!(!locks.holds_lock(obj, t));
        }
    }
}
