//! Randomized tests of the thin-lock protocol against a trivial
//! reference model: arbitrary single-threaded sequences of
//! lock/unlock/wait-ish operations must produce exactly the outcomes
//! the model predicts, and the lock word must decode to the model's
//! state after every step.

use std::collections::HashMap;
use std::sync::Arc;

use thinlock::ThinLocks;
use thinlock_runtime::error::SyncError;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::lockword::LockState;
use thinlock_runtime::prng::Prng;
use thinlock_runtime::protocol::SyncProtocol;

const CASES: usize = 96;
const OBJECTS: u8 = 4;

/// One step of the generated workload.
#[derive(Debug, Clone, Copy)]
enum Step {
    Lock(u8),
    Unlock(u8),
    Notify(u8),
    HoldsQuery(u8),
}

/// Weighted draw matching the old strategy: lock 3 : unlock 3 : notify 1
/// : holds-query 1.
fn gen_step(rng: &mut Prng) -> Step {
    let obj = rng.range_u32(0, u32::from(OBJECTS)) as u8;
    match rng.range_u32(0, 8) {
        0..=2 => Step::Lock(obj),
        3..=5 => Step::Unlock(obj),
        6 => Step::Notify(obj),
        _ => Step::HoldsQuery(obj),
    }
}

/// Single-threaded model equivalence. The model is a per-object depth
/// counter plus an "inflated" flag; the protocol must agree on every
/// success, every error, and every decoded lock-word state.
#[test]
fn protocol_matches_reference_model() {
    let mut rng = Prng::seed_from_u64(0x717d_0001);
    for _ in 0..CASES {
        let steps: Vec<Step> = (0..rng.range_usize(1, 120))
            .map(|_| gen_step(&mut rng))
            .collect();

        let locks = ThinLocks::with_capacity(4);
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let objs: Vec<ObjRef> = (0..4).map(|_| locks.heap().alloc().unwrap()).collect();
        let hashes: Vec<u8> = objs
            .iter()
            .map(|&o| locks.lock_word(o).header_bits())
            .collect();

        let mut depth: HashMap<usize, u32> = HashMap::new();
        let mut inflated: HashMap<usize, bool> = HashMap::new();

        for step in steps {
            match step {
                Step::Lock(i) => {
                    let i = usize::from(i);
                    let r = locks.lock(objs[i], t);
                    assert!(r.is_ok());
                    let d = depth.entry(i).or_insert(0);
                    *d += 1;
                    // The 257th acquisition (count overflow) inflates.
                    if *d > 256 {
                        inflated.insert(i, true);
                    }
                }
                Step::Unlock(i) => {
                    let i = usize::from(i);
                    let d = depth.entry(i).or_insert(0);
                    let r = locks.unlock(objs[i], t);
                    if *d == 0 {
                        // Not held: the error depends on inflation state
                        // only in its flavour; both mean "illegal monitor
                        // state" in Java.
                        assert!(matches!(
                            r,
                            Err(SyncError::NotLocked) | Err(SyncError::NotOwner)
                        ));
                    } else {
                        assert!(r.is_ok());
                        *d -= 1;
                    }
                }
                Step::Notify(i) => {
                    let i = usize::from(i);
                    let d = *depth.get(&i).unwrap_or(&0);
                    let r = locks.notify(objs[i], t);
                    if d == 0 {
                        assert!(r.is_err());
                    } else {
                        assert!(r.is_ok());
                        inflated.insert(i, true);
                    }
                }
                Step::HoldsQuery(i) => {
                    let i = usize::from(i);
                    let d = *depth.get(&i).unwrap_or(&0);
                    assert_eq!(locks.holds_lock(objs[i], t), d > 0);
                }
            }

            // After every step, each object's lock word must decode to the
            // model's state.
            for (i, &obj) in objs.iter().enumerate() {
                let d = *depth.get(&i).unwrap_or(&0);
                let infl = *inflated.get(&i).unwrap_or(&false);
                let word = locks.lock_word(obj);
                assert_eq!(word.header_bits(), hashes[i], "header disturbed");
                match (infl, d) {
                    (false, 0) => assert_eq!(word.state(), LockState::Unlocked),
                    (false, d) => match word.state() {
                        LockState::Thin { count, .. } => {
                            assert_eq!(u32::from(count) + 1, d);
                        }
                        other => panic!("expected thin, got {other:?}"),
                    },
                    (true, _) => assert!(word.is_fat(), "inflation is permanent"),
                }
            }
        }

        // Drain all held locks; everything must release cleanly.
        for (i, &obj) in objs.iter().enumerate() {
            let d = *depth.get(&i).unwrap_or(&0);
            for _ in 0..d {
                assert!(locks.unlock(obj, t).is_ok());
            }
            assert!(!locks.holds_lock(obj, t));
        }
    }
}

/// The guard API never leaks a lock, whatever the nesting pattern.
#[test]
fn guards_balance_arbitrary_nesting() {
    use thinlock_runtime::protocol::SyncProtocolExt;
    let mut rng = Prng::seed_from_u64(0x717d_0002);
    for _ in 0..CASES {
        let depths: Vec<u8> = (0..rng.range_usize(1, 12))
            .map(|_| rng.range_u32(1, 6) as u8)
            .collect();
        let locks = Arc::new(ThinLocks::with_capacity(4));
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let obj = locks.heap().alloc().unwrap();
        for d in depths {
            let mut guards = Vec::new();
            for _ in 0..d {
                guards.push(locks.enter(obj, t).unwrap());
            }
            assert!(locks.holds_lock(obj, t));
            drop(guards);
            assert!(!locks.holds_lock(obj, t));
        }
    }
}
