//! Randomized tests of the deflating (Tasuki-style) variant against the
//! single-threaded reference model — like `thin_model_props`, but with
//! the deflating state machine: the fat state is *not* permanent; it
//! collapses back to thin on a fully-released quiet unlock.

use std::collections::HashMap;

use thinlock::TasukiLocks;
use thinlock_runtime::error::SyncError;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::lockword::LockState;
use thinlock_runtime::prng::Prng;
use thinlock_runtime::protocol::SyncProtocol;

const CASES: usize = 96;
const OBJECTS: u8 = 3;

#[derive(Debug, Clone, Copy)]
enum Step {
    Lock(u8),
    Unlock(u8),
    Notify(u8),
}

/// Weighted draw matching the old strategy: lock 3 : unlock 3 : notify 1.
fn gen_step(rng: &mut Prng) -> Step {
    let obj = rng.range_u32(0, u32::from(OBJECTS)) as u8;
    match rng.range_u32(0, 7) {
        0..=2 => Step::Lock(obj),
        3..=5 => Step::Unlock(obj),
        _ => Step::Notify(obj),
    }
}

/// Single-threaded model equivalence with deflation: the word is fat
/// exactly while a wait/notify-inflated monitor is still held; once
/// fully released it must be thin again (no waiters can exist
/// single-threaded).
#[test]
fn deflating_protocol_matches_model() {
    let mut rng = Prng::seed_from_u64(0x7a5_0001);
    for _ in 0..CASES {
        let steps: Vec<Step> = (0..rng.range_usize(1, 120))
            .map(|_| gen_step(&mut rng))
            .collect();

        let locks = TasukiLocks::with_capacity(3);
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let objs: Vec<ObjRef> = (0..3).map(|_| locks.heap().alloc().unwrap()).collect();
        let hashes: Vec<u8> = objs
            .iter()
            .map(|&o| locks.lock_word(o).header_bits())
            .collect();

        let mut depth: HashMap<usize, u32> = HashMap::new();
        let mut fat_now: HashMap<usize, bool> = HashMap::new();

        for step in steps {
            match step {
                Step::Lock(i) => {
                    let i = usize::from(i);
                    assert!(locks.lock(objs[i], t).is_ok());
                    let d = depth.entry(i).or_insert(0);
                    *d += 1;
                    if *d > 256 {
                        fat_now.insert(i, true);
                    }
                }
                Step::Unlock(i) => {
                    let i = usize::from(i);
                    let d = depth.entry(i).or_insert(0);
                    let r = locks.unlock(objs[i], t);
                    if *d == 0 {
                        assert!(matches!(
                            r,
                            Err(SyncError::NotLocked) | Err(SyncError::NotOwner)
                        ));
                    } else {
                        assert!(r.is_ok());
                        *d -= 1;
                        if *d == 0 {
                            // Quiet final unlock always deflates.
                            fat_now.insert(i, false);
                        }
                    }
                }
                Step::Notify(i) => {
                    let i = usize::from(i);
                    let d = *depth.get(&i).unwrap_or(&0);
                    let r = locks.notify(objs[i], t);
                    if d == 0 {
                        assert!(r.is_err());
                    } else {
                        assert!(r.is_ok());
                        fat_now.insert(i, true);
                    }
                }
            }

            for (i, &obj) in objs.iter().enumerate() {
                let d = *depth.get(&i).unwrap_or(&0);
                let fat = *fat_now.get(&i).unwrap_or(&false);
                let word = locks.lock_word(obj);
                assert_eq!(word.header_bits(), hashes[i], "header disturbed");
                match (fat, d) {
                    (true, _) => assert!(word.is_fat(), "expected fat, got {word}"),
                    (false, 0) => {
                        assert_eq!(word.state(), LockState::Unlocked)
                    }
                    (false, d) => match word.state() {
                        LockState::Thin { count, .. } => {
                            assert_eq!(u32::from(count) + 1, d);
                        }
                        other => panic!("expected thin, got {other:?}"),
                    },
                }
            }
        }

        // Drain: everything releases and deflates.
        for (i, &obj) in objs.iter().enumerate() {
            let d = *depth.get(&i).unwrap_or(&0);
            for _ in 0..d {
                assert!(locks.unlock(obj, t).is_ok());
            }
            assert!(!locks.holds_lock(obj, t));
            assert!(locks.lock_word(obj).is_unlocked(), "deflated at rest");
        }
        assert_eq!(
            locks.inflation_count(),
            locks.deflation_count(),
            "every inflation eventually deflated"
        );
    }
}
