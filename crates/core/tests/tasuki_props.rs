//! Property tests of the deflating (Tasuki-style) variant against the
//! single-threaded reference model — like `thin_model_props`, but with
//! the deflating state machine: the fat state is *not* permanent; it
//! collapses back to thin on a fully-released quiet unlock.

use proptest::prelude::*;
use std::collections::HashMap;

use thinlock::TasukiLocks;
use thinlock_runtime::error::SyncError;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::lockword::LockState;
use thinlock_runtime::protocol::SyncProtocol;

#[derive(Debug, Clone, Copy)]
enum Step {
    Lock(u8),
    Unlock(u8),
    Notify(u8),
}

fn arb_step(objects: u8) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..objects).prop_map(Step::Lock),
        3 => (0..objects).prop_map(Step::Unlock),
        1 => (0..objects).prop_map(Step::Notify),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Single-threaded model equivalence with deflation: the word is fat
    /// exactly while a wait/notify-inflated monitor is still held; once
    /// fully released it must be thin again (no waiters can exist
    /// single-threaded).
    #[test]
    fn deflating_protocol_matches_model(
        steps in proptest::collection::vec(arb_step(3), 1..120)
    ) {
        let locks = TasukiLocks::with_capacity(3);
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let objs: Vec<ObjRef> = (0..3).map(|_| locks.heap().alloc().unwrap()).collect();
        let hashes: Vec<u8> = objs
            .iter()
            .map(|&o| locks.lock_word(o).header_bits())
            .collect();

        let mut depth: HashMap<usize, u32> = HashMap::new();
        let mut fat_now: HashMap<usize, bool> = HashMap::new();

        for step in steps {
            match step {
                Step::Lock(i) => {
                    let i = usize::from(i);
                    prop_assert!(locks.lock(objs[i], t).is_ok());
                    let d = depth.entry(i).or_insert(0);
                    *d += 1;
                    if *d > 256 {
                        fat_now.insert(i, true);
                    }
                }
                Step::Unlock(i) => {
                    let i = usize::from(i);
                    let d = depth.entry(i).or_insert(0);
                    let r = locks.unlock(objs[i], t);
                    if *d == 0 {
                        prop_assert!(matches!(
                            r,
                            Err(SyncError::NotLocked) | Err(SyncError::NotOwner)
                        ));
                    } else {
                        prop_assert!(r.is_ok());
                        *d -= 1;
                        if *d == 0 {
                            // Quiet final unlock always deflates.
                            fat_now.insert(i, false);
                        }
                    }
                }
                Step::Notify(i) => {
                    let i = usize::from(i);
                    let d = *depth.get(&i).unwrap_or(&0);
                    let r = locks.notify(objs[i], t);
                    if d == 0 {
                        prop_assert!(r.is_err());
                    } else {
                        prop_assert!(r.is_ok());
                        fat_now.insert(i, true);
                    }
                }
            }

            for (i, &obj) in objs.iter().enumerate() {
                let d = *depth.get(&i).unwrap_or(&0);
                let fat = *fat_now.get(&i).unwrap_or(&false);
                let word = locks.lock_word(obj);
                prop_assert_eq!(word.header_bits(), hashes[i], "header disturbed");
                match (fat, d) {
                    (true, _) => prop_assert!(word.is_fat(), "expected fat, got {}", word),
                    (false, 0) => {
                        prop_assert_eq!(word.state(), LockState::Unlocked)
                    }
                    (false, d) => match word.state() {
                        LockState::Thin { count, .. } => {
                            prop_assert_eq!(u32::from(count) + 1, d);
                        }
                        other => prop_assert!(false, "expected thin, got {:?}", other),
                    },
                }
            }
        }

        // Drain: everything releases and deflates.
        for (i, &obj) in objs.iter().enumerate() {
            let d = *depth.get(&i).unwrap_or(&0);
            for _ in 0..d {
                prop_assert!(locks.unlock(obj, t).is_ok());
            }
            prop_assert!(!locks.holds_lock(obj, t));
            prop_assert!(locks.lock_word(obj).is_unlocked(), "deflated at rest");
        }
        prop_assert_eq!(
            locks.inflation_count(),
            locks.deflation_count(),
            "every inflation eventually deflated"
        );
    }
}
