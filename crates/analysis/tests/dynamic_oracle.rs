//! Dynamic oracle for the static analyses.
//!
//! Two end-to-end claims, each checked against a real `ThinLocks` run:
//!
//! 1. **Elision soundness** — every monitor operation the escape pass
//!    marks elidable is on an object the runtime never observes
//!    contended: a recording protocol wrapper logs which threads lock
//!    which objects, and no elided op's object may ever be locked by a
//!    second thread.
//! 2. **Pre-inflation effectiveness** — applying the nest-depth pass's
//!    hints through `Vm::apply_pre_inflation_hints` eliminates
//!    count-overflow inflation entirely (replaced by one up-front
//!    hint inflation).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use thinlock::ThinLocks;
use thinlock_analysis::analyze_program;
use thinlock_analysis::escape::EscapeContext;
use thinlock_analysis::lockstack::Sym;
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ThreadRegistry, ThreadToken};
use thinlock_runtime::stats::LockStats;
use thinlock_runtime::SyncResult;
use thinlock_vm::programs::{self, MicroBench};
use thinlock_vm::transform::elide_local_sync;
use thinlock_vm::value::Value;
use thinlock_vm::Vm;

/// Wraps a protocol and records, per object, every thread that locks it.
struct Recorder<'a> {
    inner: &'a ThinLocks,
    lockers: Mutex<BTreeMap<ObjRef, BTreeSet<u32>>>,
    lock_calls: AtomicUsize,
}

impl<'a> Recorder<'a> {
    fn new(inner: &'a ThinLocks) -> Self {
        Recorder {
            inner,
            lockers: Mutex::new(BTreeMap::new()),
            lock_calls: AtomicUsize::new(0),
        }
    }

    fn distinct_lockers(&self, obj: ObjRef) -> usize {
        self.lockers
            .lock()
            .unwrap()
            .get(&obj)
            .map_or(0, BTreeSet::len)
    }
}

impl SyncProtocol for Recorder<'_> {
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.lock_calls.fetch_add(1, Ordering::Relaxed);
        self.lockers
            .lock()
            .unwrap()
            .entry(obj)
            .or_default()
            .insert(t.shifted());
        self.inner.lock(obj, t)
    }
    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.inner.unlock(obj, t)
    }
    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        self.inner.wait(obj, t, timeout)
    }
    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.inner.notify(obj, t)
    }
    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        self.inner.notify_all(obj, t)
    }
    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.inner.holds_lock(obj, t)
    }
    fn heap(&self) -> &Heap {
        self.inner.heap()
    }
    fn registry(&self) -> &ThreadRegistry {
        self.inner.registry()
    }
    fn name(&self) -> &'static str {
        "Recorder"
    }
}

fn locks_with_pool(pool_size: u32) -> (ThinLocks, Vec<ObjRef>) {
    locks_with_pool_fields(pool_size, 16)
}

fn locks_with_pool_fields(pool_size: u32, fields: usize) -> (ThinLocks, Vec<ObjRef>) {
    let heap = Arc::new(Heap::with_capacity_and_fields(
        pool_size as usize + 1,
        fields,
    ));
    let locks = ThinLocks::new(heap, ThreadRegistry::new());
    let pool: Vec<ObjRef> = (0..pool_size)
        .map(|_| locks.heap().alloc().unwrap())
        .collect();
    (locks, pool)
}

/// Runs `main(iters)` on `threads` threads sharing one pool, like the
/// benchmark harness, through the recorder.
fn run_recorded(
    program: &thinlock_vm::program::Program,
    pool_size: u32,
    fields: usize,
    threads: u32,
    iters: i32,
) {
    let (locks, pool) = locks_with_pool_fields(pool_size, fields);
    let recorder = Recorder::new(&locks);
    let vm = Vm::new(&recorder, program, pool.clone()).unwrap();
    // All threads register before any runs, so a finished thread's
    // registry index is never recycled into a colliding token.
    let barrier = std::sync::Barrier::new(threads as usize);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let reg = recorder.registry().register().unwrap();
                barrier.wait();
                vm.run("main", reg.token(), &[Value::Int(iters)]).unwrap();
            });
        }
    });
    // Every object any elided op may name must never have been locked by
    // a second thread. `local_pool` covers exactly those objects: a
    // `Pool(k)` op names pool[k] ∈ local_pool, and `Arg`/`Unknown` ops
    // are only elided when every pool object is local.
    let ctx = EscapeContext::threads(threads);
    let report = analyze_program(program, &ctx);
    for &(mid, pc) in &report.escape.elidable_ops {
        let facts = report
            .methods
            .iter()
            .find(|m| m.method_id == mid)
            .expect("facts for elided method");
        let site = facts
            .monitor_ops
            .iter()
            .find(|m| m.pc == pc)
            .expect("elided pc is a monitor op");
        let candidates: Vec<ObjRef> = match site.sym {
            Sym::Pool(k) => vec![pool[k as usize]],
            Sym::Arg(_) | Sym::Unknown => pool.clone(),
        };
        for obj in candidates {
            assert!(
                recorder.distinct_lockers(obj) <= 1,
                "elided op ({mid}, {pc}) on {obj:?} was locked by {} threads",
                recorder.distinct_lockers(obj),
            );
        }
    }
}

#[test]
fn elided_ops_are_never_contended_single_threaded() {
    for bench in [
        MicroBench::Sync,
        MicroBench::NestedSync,
        MicroBench::MultiSync(8),
        MicroBench::CallSync,
        MicroBench::NestedCallSync,
        MicroBench::MixedSync,
    ] {
        run_recorded(&bench.program(), bench.pool_size(), 16, 1, 50);
    }
    // JavaLex builds a vector of `iters` elements into pool[0]'s fields.
    let lib = thinlock_vm::library::javalex_like();
    run_recorded(&lib, lib.pool_size(), 48, 1, 40);
}

#[test]
fn threaded_context_elides_nothing_and_oracle_confirms_contention() {
    // With 4 threads sharing the pool, escape marks nothing elidable —
    // and the oracle shows why: the pool object really is locked by
    // multiple threads.
    let bench = MicroBench::Threads(4);
    let program = bench.program();
    let ctx = EscapeContext::threads(4);
    let report = analyze_program(&program, &ctx);
    assert!(report.escape.elidable_ops.is_empty());

    let (locks, pool) = locks_with_pool(bench.pool_size());
    let recorder = Recorder::new(&locks);
    let vm = Vm::new(&recorder, &program, pool.clone()).unwrap();
    let barrier = std::sync::Barrier::new(4);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let reg = recorder.registry().register().unwrap();
                barrier.wait();
                vm.run("main", reg.token(), &[Value::Int(200)]).unwrap();
            });
        }
    });
    assert!(recorder.distinct_lockers(pool[0]) > 1);
}

#[test]
fn elided_program_computes_same_result_with_zero_lock_traffic() {
    for bench in [
        MicroBench::Sync,
        MicroBench::MultiSync(4),
        MicroBench::CallSync,
        MicroBench::MixedSync,
    ] {
        let program = bench.program();
        let report = analyze_program(&program, &EscapeContext::single_threaded());
        let (elided, stats) = elide_local_sync(&program, &report.escape.elision_plan());
        // CallSync's locking is all through the synchronized flag; the
        // loop benchmarks lock with explicit monitor ops.
        assert!(
            stats.ops_elided + stats.methods_desynchronized > 0,
            "{bench}"
        );
        assert_eq!(stats.entries_ignored, 0, "{bench}");

        let iters = 64;
        let (locks, pool) = locks_with_pool(bench.pool_size());
        let reg = locks.registry().register().unwrap();
        let original = Vm::new(&locks, &program, pool.clone()).unwrap();
        let want = original
            .run("main", reg.token(), &[Value::Int(iters)])
            .unwrap();

        let (locks2, pool2) = locks_with_pool(bench.pool_size());
        let recorder = Recorder::new(&locks2);
        let reg2 = recorder.registry().register().unwrap();
        let vm = Vm::new(&recorder, &elided, pool2.clone()).unwrap();
        let got = vm.run("main", reg2.token(), &[Value::Int(iters)]).unwrap();

        assert_eq!(want, got, "{bench}");
        assert_eq!(
            recorder.lock_calls.load(Ordering::Relaxed),
            0,
            "{bench}: fully elided program must never reach the protocol"
        );
        for &obj in &pool2 {
            assert!(locks2.lock_word(obj).is_unlocked(), "{bench}");
        }
        assert_eq!(locks2.inflated_count(), 0, "{bench}");
    }
}

#[test]
fn pre_inflation_hints_eliminate_overflow_inflation() {
    // 300 recursive interpreter frames need more stack than the default
    // test thread provides in debug builds.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(pre_inflation_hints_eliminate_overflow_inflation_impl)
        .unwrap()
        .join()
        .unwrap();
}

fn pre_inflation_hints_eliminate_overflow_inflation_impl() {
    let program = programs::deep_nest();
    let report = analyze_program(&program, &EscapeContext::single_threaded());
    assert_eq!(report.nest.hints, vec![0]);

    let depth = 300; // > 256 simultaneous holds: thin count overflows

    // Without hints: one count-overflow inflation mid-critical-section.
    let (locks, pool) = {
        let heap = Arc::new(Heap::with_capacity_and_fields(2, 1));
        let locks =
            ThinLocks::new(heap, ThreadRegistry::new()).with_stats(Arc::new(LockStats::new()));
        let pool = vec![locks.heap().alloc().unwrap()];
        (locks, pool)
    };
    let reg = locks.registry().register().unwrap();
    let vm = Vm::new(&locks, &program, pool).unwrap();
    vm.run("main", reg.token(), &[Value::Int(depth)]).unwrap();
    let cold = locks.stats().unwrap().snapshot();
    assert_eq!(
        cold.inflations[1], 1,
        "count overflow without hints: {cold:?}"
    );
    assert_eq!(cold.inflations[3], 0);

    // With hints: the overflow never happens; one up-front hint inflation.
    let (locks, pool) = {
        let heap = Arc::new(Heap::with_capacity_and_fields(2, 1));
        let locks =
            ThinLocks::new(heap, ThreadRegistry::new()).with_stats(Arc::new(LockStats::new()));
        let pool = vec![locks.heap().alloc().unwrap()];
        (locks, pool)
    };
    let reg = locks.registry().register().unwrap();
    let vm = Vm::new(&locks, &program, pool).unwrap();
    let applied = vm.apply_pre_inflation_hints(&report.nest.hints);
    assert_eq!(applied, 1);
    vm.run("main", reg.token(), &[Value::Int(depth)]).unwrap();
    let warm = locks.stats().unwrap().snapshot();
    assert_eq!(
        warm.inflations[1], 0,
        "hints must prevent overflow: {warm:?}"
    );
    assert_eq!(warm.inflations[3], 1);
    assert_eq!(locks.inflated_count(), 1);
}

#[test]
fn deadlock_pair_runs_clean_single_threaded_but_is_flagged() {
    // The seeded deadlock program is a *potential* deadlock: one thread
    // executes it fine (so the oracle can run it), yet the static cycle
    // stands as a warning for any two-thread interleaving.
    let program = programs::deadlock_pair();
    let report = analyze_program(&program, &EscapeContext::threads(2));
    assert_eq!(report.lock_order.cycles, vec![vec![0, 1]]);

    let (locks, pool) = locks_with_pool(2);
    let reg = locks.registry().register().unwrap();
    let vm = Vm::new(&locks, &program, pool).unwrap();
    let out = vm.run("main", reg.token(), &[Value::Int(7)]).unwrap();
    assert_eq!(out.and_then(Value::as_int), Some(7));
}
