//! Symbolic lock-stack dataflow.
//!
//! Upgrades the verifier's boolean monitor counter (`Frame::monitors` in
//! `thinlock_vm::verify`) to a *stack of symbolic lock identities*: at
//! every program point we know not just how many monitors are held but
//! which pool constant or incoming argument each one came from. That is
//! the substrate for all downstream passes — lock-order edges need to
//! know *what* is held while acquiring, escape analysis needs to know
//! what each `monitorenter` names, and nest-depth bounds need the
//! multiplicity of each identity in the held set.
//!
//! Unlike the verifier, this pass does not abort on the first violation:
//! it records instruction-precise diagnostics (orphan `monitorexit`,
//! non-LIFO release, imbalance at a join, monitors held at return) and
//! keeps going, so one malformed method still yields facts for the rest.
//!
//! Besides monitor operations, the pass records every field access
//! (`GetField`/`PutField` and the dynamic forms) with its symbolic
//! object, resolved [`FieldId`], and the held-set around it. Integer
//! constants are tracked through the operand stack, so
//! `GetFieldDyn`/`PutFieldDyn` with a provably constant index resolve to
//! the same precision as the indexed forms; only a genuinely dynamic
//! index degrades to [`FieldId::Unknown`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use thinlock_vm::bytecode::Op;
use thinlock_vm::program::{Method, Program};

/// Symbolic identity of a lockable reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// Object-pool constant `pool[i]` (from `AConst(i)`).
    Pool(u32),
    /// The method's `i`-th incoming argument, unmodified.
    Arg(u8),
    /// Statically unresolvable (e.g. `ALoadPool` with a dynamic index,
    /// or two different identities meeting at a join).
    Unknown,
}

impl Sym {
    /// Least upper bound: equal symbols survive a join, others collapse.
    fn join(self, other: Sym) -> Sym {
        if self == other {
            self
        } else {
            Sym::Unknown
        }
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Sym::Pool(i) => write!(f, "pool[{i}]"),
            Sym::Arg(i) => write!(f, "arg{i}"),
            Sym::Unknown => f.write_str("?"),
        }
    }
}

/// Statically resolved identity of an accessed field.
///
/// `GetField(i)`/`PutField(i)` always resolve; the dynamic forms resolve
/// exactly when the index operand is a provable integer constant, which
/// gives `GetFieldDyn`/`PutFieldDyn` the same precision as the indexed
/// forms whenever the index is statically known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FieldId {
    /// A statically known field index.
    Const(u16),
    /// A dynamic index the dataflow could not resolve to a constant.
    Unknown,
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FieldId::Const(i) => write!(f, "f{i}"),
            FieldId::Unknown => f.write_str("f?"),
        }
    }
}

/// Abstract value for one stack slot or local.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Argument `i`, kind not yet constrained by use.
    ArgAny(u8),
    /// An integer.
    Int,
    /// A known integer constant (from `IConst`), tracked so the dynamic
    /// field ops can resolve their index operand.
    Const(i32),
    /// A reference with a symbolic identity.
    Ref(Sym),
    /// Irreconcilable or untracked.
    Top,
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (a, b) if a == b => a,
            (ArgAny(_) | Const(_), Int) | (Int, ArgAny(_) | Const(_)) => Int,
            (ArgAny(_), Const(_)) | (Const(_), ArgAny(_)) | (Const(_), Const(_)) => Int,
            (ArgAny(i), Ref(s)) | (Ref(s), ArgAny(i)) => Ref(Sym::Arg(i).join(s)),
            (Ref(a), Ref(b)) => Ref(a.join(b)),
            _ => Top,
        }
    }

    /// The symbolic lock identity if this value were used as a reference.
    fn as_sym(self) -> Sym {
        match self {
            AbsVal::ArgAny(i) => Sym::Arg(i),
            AbsVal::Ref(s) => s,
            _ => Sym::Unknown,
        }
    }

    /// The field index this value resolves to when used as a dynamic
    /// field-index operand.
    fn as_field_id(self) -> FieldId {
        match self {
            AbsVal::Const(k) => u16::try_from(k).map_or(FieldId::Unknown, FieldId::Const),
            _ => FieldId::Unknown,
        }
    }
}

/// One instruction-precise finding from the lock-stack pass.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockDiag {
    /// Program counter of the offending instruction (or join point).
    pub pc: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LockDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc {}: {}", self.pc, self.message)
    }
}

/// A `monitorenter` site with the symbolic held-set at acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcquireSite {
    /// Program counter of the `monitorenter` (0 for the synthetic
    /// receiver acquisition of a synchronized method).
    pub pc: usize,
    /// What is being acquired.
    pub sym: Sym,
    /// Symbols already held when this acquisition happens, innermost
    /// last; includes the synchronized receiver where applicable.
    pub held: Vec<Sym>,
}

/// A `monitorenter` or `monitorexit` site with its resolved operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorSite {
    /// Program counter of the instruction.
    pub pc: usize,
    /// `true` for `monitorenter`, `false` for `monitorexit`.
    pub is_enter: bool,
    /// Symbolic identity of the locked object.
    pub sym: Sym,
}

/// A `wait`/`notify` site with its resolved operand and held-set.
///
/// These are the substrate of the contention pass's `WaitHeavy` shape:
/// an object that is statically waited/notified on is predicted to park
/// threads on its monitor, so pre-inflation is profitable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondSite {
    /// Program counter of the instruction.
    pub pc: usize,
    /// `true` for `wait`, `false` for `notify`.
    pub is_wait: bool,
    /// Symbolic identity of the monitor being waited/notified on.
    pub sym: Sym,
    /// Symbols held at the site, innermost last; includes the
    /// synchronized receiver where applicable.
    pub held: Vec<Sym>,
}

/// A field access (`GetField`/`PutField` or their dynamic forms) with
/// the symbolic object, resolved field, and the locks held around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldAccessSite {
    /// Program counter of the access.
    pub pc: usize,
    /// Symbolic identity of the accessed object.
    pub obj: Sym,
    /// The accessed field, if statically resolvable.
    pub field: FieldId,
    /// True for `PutField`/`PutFieldDyn`.
    pub is_write: bool,
    /// Symbols held at the access, innermost last; includes the
    /// synchronized receiver where applicable.
    pub held: Vec<Sym>,
}

/// An `Invoke` site with symbolic arguments and the held-set around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeSite {
    /// Program counter of the `invoke`.
    pub pc: usize,
    /// Method id of the callee.
    pub callee: u16,
    /// Symbolic identity of each argument (receiver first); `Unknown`
    /// for non-reference arguments.
    pub args: Vec<Sym>,
    /// Symbols held across the call, innermost last.
    pub held: Vec<Sym>,
}

/// Everything the lock-stack pass learned about one method.
#[derive(Debug, Clone)]
pub struct MethodLockFacts {
    /// Method id within the program.
    pub method_id: u16,
    /// Method name.
    pub name: String,
    /// Whether the method is declared synchronized.
    pub synchronized: bool,
    /// Instruction-precise lock-discipline findings (empty = clean).
    pub diagnostics: Vec<LockDiag>,
    /// All acquisition sites, including the synthetic receiver
    /// acquisition of a synchronized method (reported at pc 0).
    pub acquires: Vec<AcquireSite>,
    /// Every `monitorenter`/`monitorexit` in the body with its operand.
    pub monitor_ops: Vec<MonitorSite>,
    /// Every `wait`/`notify` in the body with its operand and held-set.
    pub cond_ops: Vec<CondSite>,
    /// Every `Invoke` with symbolic arguments and held-set.
    pub invokes: Vec<InvokeSite>,
    /// Every field access with its symbolic object, resolved field, and
    /// held-set — the substrate of the guards (lockset) pass.
    pub field_accesses: Vec<FieldAccessSite>,
    /// Maximum symbolic lock-stack depth (body locks only; add one for
    /// a synchronized method's receiver).
    pub max_lock_stack: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    stack: Vec<AbsVal>,
    locals: Vec<Option<AbsVal>>,
    /// Innermost-last stack of held lock identities (body locks only).
    lock_stack: Vec<Sym>,
}

impl Frame {
    /// Merge `other` into `self`; returns the merged frame if anything
    /// changed, `None` if `self` already covers `other`. A lock-stack
    /// depth mismatch is reported through `diag` and poisons the join
    /// (no propagation), mirroring the verifier's hard error.
    fn merge(&self, other: &Frame) -> Result<Option<Frame>, String> {
        if self.stack.len() != other.stack.len() {
            return Err(format!(
                "operand stack depth mismatch at join: {} vs {}",
                self.stack.len(),
                other.stack.len()
            ));
        }
        if self.lock_stack.len() != other.lock_stack.len() {
            return Err(format!(
                "lock-stack depth mismatch at join: {} monitors held on one path, {} on another",
                self.lock_stack.len(),
                other.lock_stack.len()
            ));
        }
        let mut changed = false;
        let mut stack = Vec::with_capacity(self.stack.len());
        for (&a, &b) in self.stack.iter().zip(&other.stack) {
            let j = a.join(b);
            changed |= j != a;
            stack.push(j);
        }
        let mut locals = Vec::with_capacity(self.locals.len());
        for (&a, &b) in self.locals.iter().zip(&other.locals) {
            let j = match (a, b) {
                (Some(x), Some(y)) => Some(x.join(y)),
                _ => None,
            };
            changed |= j != a;
            locals.push(j);
        }
        let mut lock_stack = Vec::with_capacity(self.lock_stack.len());
        for (&a, &b) in self.lock_stack.iter().zip(&other.lock_stack) {
            let j = a.join(b);
            changed |= j != a;
            lock_stack.push(j);
        }
        Ok(changed.then_some(Frame {
            stack,
            locals,
            lock_stack,
        }))
    }
}

/// Runs the symbolic lock-stack dataflow over one method.
///
/// The method is expected to have passed the base verifier with
/// `structured_locking` *off* (types and stack depths are sound); this
/// pass layers lock-discipline checking on top and never panics on
/// discipline violations — it records them in
/// [`MethodLockFacts::diagnostics`] instead.
pub fn analyze_method(program: &Program, method_id: u16, method: &Method) -> MethodLockFacts {
    let code = method.code();
    let synchronized = method.flags().synchronized;
    let base_held: Vec<Sym> = if synchronized {
        vec![Sym::Arg(0)]
    } else {
        Vec::new()
    };

    let mut facts = MethodLockFacts {
        method_id,
        name: method.name().to_string(),
        synchronized,
        diagnostics: Vec::new(),
        acquires: Vec::new(),
        monitor_ops: Vec::new(),
        cond_ops: Vec::new(),
        invokes: Vec::new(),
        field_accesses: Vec::new(),
        max_lock_stack: 0,
    };
    if synchronized {
        // The interpreter acquires the receiver before the body runs.
        facts.acquires.push(AcquireSite {
            pc: 0,
            sym: Sym::Arg(0),
            held: Vec::new(),
        });
    }
    if code.is_empty() {
        facts.diagnostics.push(LockDiag {
            pc: 0,
            message: "empty method body".into(),
        });
        return facts;
    }

    let mut entry_locals: Vec<Option<AbsVal>> = vec![None; usize::from(method.max_locals())];
    for (i, slot) in entry_locals
        .iter_mut()
        .take(usize::from(method.arg_count()))
        .enumerate()
    {
        *slot = Some(AbsVal::ArgAny(i as u8));
    }

    // Phase 1: fixpoint over per-pc entry frames. Joins that cannot
    // reconcile (depth mismatches) are diagnosed once and the edge is
    // dropped, which keeps the fixpoint terminating even for code that
    // leaks a monitor around a loop.
    let mut states: Vec<Option<Frame>> = vec![None; code.len()];
    states[0] = Some(Frame {
        stack: Vec::new(),
        locals: entry_locals,
        lock_stack: Vec::new(),
    });
    let mut join_diags: BTreeSet<(usize, String)> = BTreeSet::new();
    let mut worklist: VecDeque<usize> = VecDeque::from([0]);
    while let Some(pc) = worklist.pop_front() {
        let frame = states[pc].clone().expect("worklist entries have states");
        let Some(op) = code.get(pc).copied() else {
            join_diags.insert((pc, "control flow leaves the method".into()));
            continue;
        };
        let Some((next, successors, falls_through)) = transfer(program, &frame, op) else {
            // Stack underflow / malformed op: the base verifier reports
            // this path; stop following it here.
            join_diags.insert((pc, format!("{op}: malformed operand stack")));
            continue;
        };

        let mut propagate = |target: usize,
                             frame: &Frame,
                             states: &mut Vec<Option<Frame>>,
                             worklist: &mut VecDeque<usize>| {
            if target >= code.len() {
                join_diags.insert((pc, format!("control flow target {target} out of range")));
                return;
            }
            match &states[target] {
                None => {
                    states[target] = Some(frame.clone());
                    worklist.push_back(target);
                }
                Some(existing) => match existing.merge(frame) {
                    Ok(Some(merged)) => {
                        states[target] = Some(merged);
                        worklist.push_back(target);
                    }
                    Ok(None) => {}
                    Err(msg) => {
                        join_diags.insert((target, msg));
                    }
                },
            }
        };

        if let Some(h) = method.handler_for(pc) {
            // The handler sees the frame as it was at instruction entry,
            // with the stack reduced to the thrown exception.
            let entry = states[pc].clone().expect("current state exists");
            let handler_frame = Frame {
                stack: vec![AbsVal::Ref(Sym::Unknown)],
                locals: entry.locals,
                lock_stack: entry.lock_stack,
            };
            propagate(h.target, &handler_frame, &mut states, &mut worklist);
        }
        for succ in successors {
            propagate(succ, &next, &mut states, &mut worklist);
        }
        if falls_through {
            propagate(pc + 1, &next, &mut states, &mut worklist);
        }
    }

    // Phase 2: one deterministic pass over the fixpoint states to emit
    // events and instruction-level diagnostics exactly once per pc.
    let mut op_diags: BTreeSet<(usize, String)> = BTreeSet::new();
    for (pc, state) in states.iter().enumerate() {
        let Some(frame) = state else { continue }; // unreachable pc
        let op = code[pc];
        facts.max_lock_stack = facts.max_lock_stack.max(frame.lock_stack.len());
        let held_with_base = |lock_stack: &[Sym]| -> Vec<Sym> {
            let mut h = base_held.clone();
            h.extend_from_slice(lock_stack);
            h
        };
        match op {
            Op::MonitorEnter => {
                let sym = frame.stack.last().map_or(Sym::Unknown, |v| v.as_sym());
                facts.monitor_ops.push(MonitorSite {
                    pc,
                    is_enter: true,
                    sym,
                });
                facts.acquires.push(AcquireSite {
                    pc,
                    sym,
                    held: held_with_base(&frame.lock_stack),
                });
                facts.max_lock_stack = facts.max_lock_stack.max(frame.lock_stack.len() + 1);
            }
            Op::MonitorExit => {
                let sym = frame.stack.last().map_or(Sym::Unknown, |v| v.as_sym());
                facts.monitor_ops.push(MonitorSite {
                    pc,
                    is_enter: false,
                    sym,
                });
                match frame.lock_stack.last() {
                    None => {
                        op_diags.insert((
                            pc,
                            format!("monitorexit on {sym} without matching monitorenter"),
                        ));
                    }
                    Some(&top) => {
                        if top != sym && top != Sym::Unknown && sym != Sym::Unknown {
                            op_diags.insert((
                                pc,
                                format!(
                                    "non-LIFO monitorexit: releases {sym} while the \
                                     innermost held lock is {top}"
                                ),
                            ));
                        }
                    }
                }
            }
            Op::Wait | Op::Notify => {
                let sym = frame.stack.last().map_or(Sym::Unknown, |v| v.as_sym());
                let held = held_with_base(&frame.lock_stack);
                if sym != Sym::Unknown && !held.iter().any(|&h| h == sym || h == Sym::Unknown) {
                    op_diags.insert((
                        pc,
                        format!("{} on {sym} without holding its monitor", op.mnemonic()),
                    ));
                }
                facts.cond_ops.push(CondSite {
                    pc,
                    is_wait: matches!(op, Op::Wait),
                    sym,
                    held,
                });
            }
            Op::GetField(_) | Op::PutField(_) | Op::GetFieldDyn | Op::PutFieldDyn => {
                // Peek the operand `back` slots from the stack top.
                let peek = |back: usize| {
                    frame
                        .stack
                        .len()
                        .checked_sub(back)
                        .and_then(|k| frame.stack.get(k))
                        .copied()
                };
                let (obj, field, is_write) = match op {
                    Op::GetField(i) => (peek(1), FieldId::Const(i), false),
                    Op::PutField(i) => (peek(2), FieldId::Const(i), true),
                    Op::GetFieldDyn => (
                        peek(2),
                        peek(1).map_or(FieldId::Unknown, AbsVal::as_field_id),
                        false,
                    ),
                    _ => (
                        peek(3),
                        peek(2).map_or(FieldId::Unknown, AbsVal::as_field_id),
                        true,
                    ),
                };
                facts.field_accesses.push(FieldAccessSite {
                    pc,
                    obj: obj.map_or(Sym::Unknown, AbsVal::as_sym),
                    field,
                    is_write,
                    held: held_with_base(&frame.lock_stack),
                });
            }
            Op::Invoke(id) => {
                if let Some(callee) = program.method(id) {
                    let argc = usize::from(callee.arg_count());
                    let args: Vec<Sym> = if frame.stack.len() >= argc {
                        frame.stack[frame.stack.len() - argc..]
                            .iter()
                            .map(|v| v.as_sym())
                            .collect()
                    } else {
                        vec![Sym::Unknown; argc]
                    };
                    facts.invokes.push(InvokeSite {
                        pc,
                        callee: id,
                        args,
                        held: held_with_base(&frame.lock_stack),
                    });
                }
            }
            Op::Return | Op::IReturn if !frame.lock_stack.is_empty() => {
                let held: Vec<String> = frame.lock_stack.iter().map(|s| s.to_string()).collect();
                op_diags.insert((
                    pc,
                    format!(
                        "{} while holding {} monitor(s): [{}]",
                        op.mnemonic(),
                        frame.lock_stack.len(),
                        held.join(", ")
                    ),
                ));
            }
            _ => {}
        }
    }

    facts.diagnostics = join_diags
        .into_iter()
        .chain(op_diags)
        .map(|(pc, message)| LockDiag { pc, message })
        .collect();
    facts.diagnostics.sort();
    facts
}

/// Applies `op` to `frame`, returning the successor frame, explicit
/// branch targets, and whether the instruction falls through. Returns
/// `None` on operand-stack underflow (malformed code the base verifier
/// rejects).
#[allow(clippy::too_many_lines)]
fn transfer(program: &Program, frame: &Frame, op: Op) -> Option<(Frame, Vec<usize>, bool)> {
    let mut f = frame.clone();
    let mut successors: Vec<usize> = Vec::with_capacity(1);
    let mut falls_through = true;
    macro_rules! pop {
        () => {
            f.stack.pop()?
        };
    }
    macro_rules! local {
        ($slot:expr) => {{
            let s = usize::from($slot);
            if s >= f.locals.len() {
                return None;
            }
            s
        }};
    }
    match op {
        Op::IConst(v) => f.stack.push(AbsVal::Const(v)),
        Op::ILoad(s) => {
            let s = local!(s);
            f.locals[s] = Some(AbsVal::Int);
            f.stack.push(AbsVal::Int);
        }
        Op::IStore(s) => {
            pop!();
            let s = local!(s);
            f.locals[s] = Some(AbsVal::Int);
        }
        Op::IInc(s, _) => {
            let s = local!(s);
            f.locals[s] = Some(AbsVal::Int);
        }
        Op::IAdd
        | Op::ISub
        | Op::IMul
        | Op::IRem
        | Op::IAnd
        | Op::IOr
        | Op::IXor
        | Op::IShl
        | Op::IShr => {
            pop!();
            pop!();
            f.stack.push(AbsVal::Int);
        }
        Op::INeg => {
            pop!();
            f.stack.push(AbsVal::Int);
        }
        Op::ALoad(s) => {
            let s = local!(s);
            let v = match f.locals[s] {
                Some(v @ (AbsVal::ArgAny(_) | AbsVal::Ref(_))) => AbsVal::Ref(v.as_sym()),
                _ => AbsVal::Ref(Sym::Unknown),
            };
            f.locals[s] = Some(v);
            f.stack.push(v);
        }
        Op::AStore(s) => {
            let v = pop!();
            let s = local!(s);
            f.locals[s] = Some(AbsVal::Ref(v.as_sym()));
        }
        Op::AConst(i) => f.stack.push(AbsVal::Ref(Sym::Pool(i))),
        Op::ALoadPool => {
            pop!();
            f.stack.push(AbsVal::Ref(Sym::Unknown));
        }
        Op::GetField(_) => {
            pop!();
            f.stack.push(AbsVal::Int);
        }
        Op::PutField(_) => {
            pop!();
            pop!();
        }
        Op::GetFieldDyn => {
            pop!();
            pop!();
            f.stack.push(AbsVal::Int);
        }
        Op::PutFieldDyn => {
            pop!();
            pop!();
            pop!();
        }
        Op::Dup => {
            let v = pop!();
            f.stack.push(v);
            f.stack.push(v);
        }
        Op::Pop => {
            pop!();
        }
        Op::Goto(t) => {
            successors.push(t);
            falls_through = false;
        }
        Op::IfICmpLt(t) | Op::IfICmpGe(t) | Op::IfICmpEq(t) => {
            pop!();
            pop!();
            successors.push(t);
        }
        Op::IfEq(t) => {
            pop!();
            successors.push(t);
        }
        Op::MonitorEnter => {
            let v = pop!();
            f.lock_stack.push(v.as_sym());
        }
        Op::MonitorExit => {
            pop!();
            // Pop the lock stack even when empty or mismatched so one
            // orphan exit yields one diagnostic, not a cascade.
            f.lock_stack.pop();
        }
        Op::Wait | Op::Notify => {
            // Consume the monitor operand; the held-set is unchanged
            // (wait releases and re-acquires atomically from the
            // bytecode's point of view).
            pop!();
        }
        Op::Invoke(id) => {
            let callee = program.method(id)?;
            let argc = usize::from(callee.arg_count());
            if f.stack.len() < argc {
                return None;
            }
            f.stack.truncate(f.stack.len() - argc);
            if callee.flags().returns_value {
                f.stack.push(AbsVal::Int);
            }
        }
        Op::Throw => {
            pop!();
            falls_through = false;
        }
        Op::Return | Op::IReturn => {
            if matches!(op, Op::IReturn) {
                pop!();
            }
            falls_through = false;
        }
        Op::Nop => {}
    }
    Some((f, successors, falls_through))
}

/// Runs the lock-stack pass over every method of a program.
pub fn analyze_program(program: &Program) -> Vec<MethodLockFacts> {
    program
        .methods()
        .iter()
        .enumerate()
        .map(|(id, m)| analyze_method(program, id as u16, m))
        .collect()
}

/// Counts the multiplicity of each symbol in a held-set.
pub fn held_multiplicity(held: &[Sym]) -> BTreeMap<Sym, u32> {
    let mut m = BTreeMap::new();
    for &s in held {
        *m.entry(s).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinlock_vm::program::MethodFlags;
    use thinlock_vm::programs::MicroBench;

    fn one_method(pool: u32, flags: MethodFlags, args: u8, locals: u8, code: Vec<Op>) -> Program {
        let mut p = Program::new(pool);
        p.add_method(Method::new("m", args, locals, flags, code));
        p
    }

    #[test]
    fn tracks_pool_identity_through_enter_exit() {
        let p = MicroBench::Sync.program();
        let facts = analyze_program(&p);
        let main = &facts[0];
        assert!(main.diagnostics.is_empty(), "{:?}", main.diagnostics);
        let enters: Vec<_> = main.monitor_ops.iter().filter(|m| m.is_enter).collect();
        assert!(!enters.is_empty());
        assert!(enters.iter().all(|m| m.sym == Sym::Pool(0)));
        assert_eq!(main.max_lock_stack, 1);
    }

    #[test]
    fn nested_holds_reported_in_order() {
        let p = MicroBench::MixedSync.program();
        let facts = analyze_program(&p);
        let main = &facts[0];
        assert!(main.diagnostics.is_empty(), "{:?}", main.diagnostics);
        assert_eq!(main.max_lock_stack, 3);
        // The innermost acquire holds the two outer locks.
        let deepest = main
            .acquires
            .iter()
            .max_by_key(|a| a.held.len())
            .expect("has acquires");
        assert_eq!(deepest.held.len(), 2);
    }

    #[test]
    fn orphan_exit_is_diagnosed_not_fatal() {
        let p = one_method(
            1,
            MethodFlags::default(),
            0,
            0,
            vec![Op::AConst(0), Op::MonitorExit, Op::Return],
        );
        let facts = analyze_program(&p);
        let d = &facts[0].diagnostics;
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].pc, 1);
        assert!(
            d[0].message.contains("without matching monitorenter"),
            "{}",
            d[0]
        );
    }

    #[test]
    fn non_lifo_release_is_diagnosed() {
        let code = vec![
            Op::AConst(0),
            Op::MonitorEnter,
            Op::AConst(1),
            Op::MonitorEnter,
            Op::AConst(0),
            Op::MonitorExit, // releases pool[0] while pool[1] is innermost
            Op::AConst(1),
            Op::MonitorExit,
            Op::Return,
        ];
        let p = one_method(2, MethodFlags::default(), 0, 0, code);
        let facts = analyze_program(&p);
        let d = &facts[0].diagnostics;
        assert!(
            d.iter()
                .any(|d| d.pc == 5 && d.message.contains("non-LIFO")),
            "{d:?}"
        );
    }

    #[test]
    fn return_while_holding_is_diagnosed() {
        let code = vec![Op::AConst(0), Op::MonitorEnter, Op::Return];
        let p = one_method(1, MethodFlags::default(), 0, 0, code);
        let facts = analyze_program(&p);
        let d = &facts[0].diagnostics;
        assert!(
            d.iter()
                .any(|d| d.pc == 2 && d.message.contains("while holding")),
            "{d:?}"
        );
    }

    #[test]
    fn synchronized_method_gets_synthetic_receiver_acquire() {
        let p = MicroBench::CallSync.program();
        let facts = analyze_program(&p);
        let bump = facts
            .iter()
            .find(|f| f.synchronized)
            .expect("CallSync has a synchronized callee");
        assert_eq!(bump.acquires[0].sym, Sym::Arg(0));
        assert!(bump.acquires[0].held.is_empty());
    }

    #[test]
    fn invoke_records_symbolic_receiver() {
        let p = MicroBench::CallSync.program();
        let facts = analyze_program(&p);
        let main = &facts[0];
        let call = main.invokes.first().expect("main invokes bump");
        assert_eq!(call.args.first().copied(), Some(Sym::Pool(0)));
    }

    #[test]
    fn dynamic_pool_load_is_unknown() {
        let code = vec![
            Op::IConst(1),
            Op::ALoadPool,
            Op::MonitorEnter,
            Op::IConst(1),
            Op::ALoadPool,
            Op::MonitorExit,
            Op::Return,
        ];
        let p = one_method(4, MethodFlags::default(), 0, 0, code);
        let facts = analyze_program(&p);
        assert!(
            facts[0].diagnostics.is_empty(),
            "{:?}",
            facts[0].diagnostics
        );
        assert!(facts[0].monitor_ops.iter().all(|m| m.sym == Sym::Unknown));
    }

    #[test]
    fn exception_path_release_is_tracked_symbolically() {
        use thinlock_vm::program::Handler;
        let code = vec![
            Op::AConst(0),    // 0
            Op::MonitorEnter, // 1
            Op::AConst(0),    // 2: protected
            Op::Throw,        // 3: protected
            Op::AStore(0),    // 4: handler target
            Op::AConst(0),    // 5
            Op::MonitorExit,  // 6
            Op::Return,       // 7
        ];
        let mut p = Program::new(1);
        p.add_method(
            Method::new("m", 0, 1, MethodFlags::default(), code).with_handler(Handler {
                start: 2,
                end: 4,
                target: 4,
            }),
        );
        let facts = analyze_program(&p);
        assert!(
            facts[0].diagnostics.is_empty(),
            "{:?}",
            facts[0].diagnostics
        );
        // The handler-path exit releases the same identity it acquired.
        let exit = facts[0]
            .monitor_ops
            .iter()
            .find(|m| !m.is_enter)
            .expect("has an exit");
        assert_eq!(exit.sym, Sym::Pool(0));
    }

    #[test]
    fn exception_path_leak_is_diagnosed_at_the_return() {
        use thinlock_vm::program::Handler;
        let code = vec![
            Op::AConst(0),    // 0
            Op::MonitorEnter, // 1
            Op::AConst(0),    // 2: protected
            Op::Throw,        // 3: protected
            Op::AStore(0),    // 4: handler target, lock still held
            Op::Return,       // 5
        ];
        let mut p = Program::new(1);
        p.add_method(
            Method::new("m", 0, 1, MethodFlags::default(), code).with_handler(Handler {
                start: 2,
                end: 4,
                target: 4,
            }),
        );
        let facts = analyze_program(&p);
        assert!(
            facts[0].diagnostics.iter().any(|d| d.pc == 5
                && d.message.contains("while holding")
                && d.message.contains("pool[0]")),
            "{:?}",
            facts[0].diagnostics
        );
    }

    #[test]
    fn imbalanced_loop_diagnosed_and_terminates() {
        // Acquires once per iteration without releasing: the join at the
        // loop head can never balance. One diagnostic, no hang.
        let code = vec![
            Op::AConst(0),    // 0
            Op::MonitorEnter, // 1
            Op::ILoad(0),     // 2
            Op::IfEq(0),      // 3: loop back with one more lock held
            Op::AConst(0),    // 4
            Op::MonitorExit,  // 5
            Op::Return,       // 6
        ];
        let p = one_method(1, MethodFlags::default(), 1, 1, code);
        let facts = analyze_program(&p);
        assert!(
            facts[0]
                .diagnostics
                .iter()
                .any(|d| d.message.contains("lock-stack depth mismatch")),
            "{:?}",
            facts[0].diagnostics
        );
    }

    #[test]
    fn indexed_field_accesses_record_object_field_and_held_set() {
        // synchronized(pool[0]) { pool[0].f2 = pool[0].f2 + 1 }
        let code = vec![
            Op::AConst(0),    // 0
            Op::MonitorEnter, // 1
            Op::AConst(0),    // 2: receiver for the put
            Op::AConst(0),    // 3
            Op::GetField(2),  // 4
            Op::IConst(1),    // 5
            Op::IAdd,         // 6
            Op::PutField(2),  // 7
            Op::AConst(0),    // 8
            Op::MonitorExit,  // 9
            Op::Return,       // 10
        ];
        let p = one_method(1, MethodFlags::default(), 0, 0, code);
        let facts = analyze_program(&p);
        let accesses = &facts[0].field_accesses;
        assert_eq!(accesses.len(), 2, "{accesses:?}");
        let get = &accesses[0];
        assert_eq!(
            (get.pc, get.obj, get.field, get.is_write),
            (4, Sym::Pool(0), FieldId::Const(2), false)
        );
        assert_eq!(get.held, vec![Sym::Pool(0)]);
        let put = &accesses[1];
        assert_eq!(
            (put.pc, put.obj, put.field, put.is_write),
            (7, Sym::Pool(0), FieldId::Const(2), true)
        );
        assert_eq!(put.held, vec![Sym::Pool(0)]);
    }

    #[test]
    fn dynamic_field_ops_with_constant_index_resolve_exactly() {
        // pool[0].f[3] = pool[0].f[3] + 1 via the dynamic forms, index
        // pushed as IConst — must match the indexed forms' precision.
        let code = vec![
            Op::AConst(0),   // 0: receiver for the put
            Op::IConst(3),   // 1: put index
            Op::AConst(0),   // 2
            Op::IConst(3),   // 3: get index
            Op::GetFieldDyn, // 4
            Op::IConst(1),   // 5
            Op::IAdd,        // 6
            Op::PutFieldDyn, // 7
            Op::Return,      // 8
        ];
        let p = one_method(1, MethodFlags::default(), 0, 0, code);
        let facts = analyze_program(&p);
        assert!(
            facts[0].diagnostics.is_empty(),
            "{:?}",
            facts[0].diagnostics
        );
        let accesses = &facts[0].field_accesses;
        assert_eq!(accesses.len(), 2, "{accesses:?}");
        assert_eq!(
            (accesses[0].obj, accesses[0].field, accesses[0].is_write),
            (Sym::Pool(0), FieldId::Const(3), false)
        );
        assert_eq!(
            (accesses[1].obj, accesses[1].field, accesses[1].is_write),
            (Sym::Pool(0), FieldId::Const(3), true)
        );
    }

    #[test]
    fn dynamic_field_ops_with_computed_index_degrade_to_unknown() {
        // Index comes from a local (joined to Int): the object identity
        // survives but the field index does not.
        let code = vec![
            Op::AConst(0),   // 0
            Op::ILoad(0),    // 1: dynamic index
            Op::GetFieldDyn, // 2
            Op::Pop,         // 3
            Op::Return,      // 4
        ];
        let p = one_method(1, MethodFlags::default(), 1, 1, code);
        let facts = analyze_program(&p);
        let accesses = &facts[0].field_accesses;
        assert_eq!(accesses.len(), 1);
        assert_eq!(accesses[0].obj, Sym::Pool(0));
        assert_eq!(accesses[0].field, FieldId::Unknown);
    }

    #[test]
    fn synchronized_method_field_access_includes_receiver_in_held_set() {
        // The CallSync bump method accesses arg0.f0 under the synthetic
        // receiver lock.
        let p = MicroBench::CallSync.program();
        let facts = analyze_program(&p);
        let bump = facts.iter().find(|f| f.synchronized).expect("bump");
        assert_eq!(bump.field_accesses.len(), 2);
        for a in &bump.field_accesses {
            assert_eq!(a.obj, Sym::Arg(0));
            assert_eq!(a.field, FieldId::Const(0));
            assert_eq!(a.held, vec![Sym::Arg(0)], "receiver lock is held");
        }
    }

    #[test]
    fn constant_joins_collapse_to_int_not_top() {
        // Two paths push different constants; the join is Int, so a
        // following dynamic access degrades gracefully to FieldId::Unknown
        // (not a malformed-stack diagnostic).
        let code = vec![
            Op::ILoad(0),  // 0
            Op::IfEq(4),   // 1
            Op::IConst(1), // 2
            Op::Goto(5),   // 3
            Op::IConst(2), // 4
            Op::AConst(0), // 5: join point: [Int]
            Op::Pop,       // 6
            Op::Pop,       // 7
            Op::Return,    // 8
        ];
        let p = one_method(1, MethodFlags::default(), 1, 1, code);
        let facts = analyze_program(&p);
        assert!(
            facts[0].diagnostics.is_empty(),
            "{:?}",
            facts[0].diagnostics
        );
    }

    #[test]
    fn held_multiplicity_counts() {
        let held = [Sym::Pool(0), Sym::Pool(1), Sym::Pool(0)];
        let m = held_multiplicity(&held);
        assert_eq!(m[&Sym::Pool(0)], 2);
        assert_eq!(m[&Sym::Pool(1)], 1);
    }
}
