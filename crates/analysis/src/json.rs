//! Machine-readable export of an [`AnalysisReport`]: the full report
//! tree serialized through the dependency-free JSON writer from
//! `thinlock-obs`, so CI and downstream tooling can consume
//! `lockcheck --json` without scraping the text output.
//!
//! The schema mirrors the report structs one-to-one; symbolic values
//! ([`Sym`](crate::lockstack::Sym), [`FieldId`](crate::lockstack::FieldId),
//! [`Bound`](crate::nestdepth::Bound)) use their `Display` forms, which
//! are stable one-token strings.

use thinlock_obs::{JsonValue, JsonWriter};

use crate::escape::SharedPool;
use crate::lockstack::MethodLockFacts;
use crate::AnalysisReport;

/// Version of the per-program JSON document produced by
/// [`write_report`].
///
/// * **v1** (implicit — documents without a `schema_version` field):
///   sections `lock_order`, `escape`, `nest`, `guards`; method facts
///   without `cond_ops`.
/// * **v2**: adds the explicit `schema_version` field, the
///   `contention` section (per-site shapes plus the derived `plan`),
///   and per-method `cond_ops` (`wait`/`notify` sites).
///
/// Every v1 field is preserved unchanged, so v1 consumers keep working
/// on v2 documents; [`schema_version`] recovers the version when
/// reading either.
pub const SCHEMA_VERSION: u64 = 2;

/// The schema version of a parsed report document: the explicit
/// `schema_version` field, or 1 for documents that predate it.
pub fn schema_version(value: &JsonValue) -> u64 {
    value
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .unwrap_or(1)
}

/// Serializes one named program's report as a JSON object into `w`.
/// The caller brackets it inside an array or named field.
pub fn write_report(w: &mut JsonWriter, name: &str, thread_count: u32, report: &AnalysisReport) {
    w.begin_object();
    w.field_u64("schema_version", SCHEMA_VERSION);
    w.field_str("program", name);
    w.field_u64("threads", u64::from(thread_count));
    w.field_bool("clean", report.is_clean());

    w.begin_named_array("verify_errors");
    for e in &report.verify_errors {
        w.elem_str(e);
    }
    w.end_array();

    w.begin_named_array("methods");
    for m in &report.methods {
        write_method(w, m);
    }
    w.end_array();

    w.begin_named_object("lock_order");
    w.begin_named_array("edges");
    for e in &report.lock_order.edges {
        w.begin_object();
        w.field_u64("from", u64::from(e.from));
        w.field_u64("to", u64::from(e.to));
        w.field_str("witness", &e.witness);
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("cycles");
    for cycle in &report.lock_order.cycles {
        w.begin_array();
        for &pool in cycle {
            w.elem_u64(u64::from(pool));
        }
        w.end_array();
    }
    w.end_array();
    w.field_u64(
        "unresolved_edges",
        report.lock_order.unresolved_edges as u64,
    );
    w.end_object();

    w.begin_named_object("escape");
    w.begin_named_object("context");
    w.field_u64(
        "thread_count",
        u64::from(report.escape.context.thread_count),
    );
    match &report.escape.context.shared {
        SharedPool::None => w.field_str("shared", "none"),
        SharedPool::All => w.field_str("shared", "all"),
        SharedPool::Some(set) => {
            w.begin_named_array("shared");
            for &pool in set {
                w.elem_u64(u64::from(pool));
            }
            w.end_array();
        }
    }
    w.end_object();
    w.begin_named_array("local_pool");
    for &pool in &report.escape.local_pool {
        w.elem_u64(u64::from(pool));
    }
    w.end_array();
    w.begin_named_array("escaping_pool");
    for &pool in &report.escape.escaping_pool {
        w.elem_u64(u64::from(pool));
    }
    w.end_array();
    w.begin_named_array("elidable_ops");
    for &(method, pc) in &report.escape.elidable_ops {
        w.begin_object();
        w.field_u64("method", u64::from(method));
        w.field_u64("pc", pc as u64);
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("desync_methods");
    for &m in &report.escape.desync_methods {
        w.elem_u64(u64::from(m));
    }
    w.end_array();
    w.field_u64("retained_ops", report.escape.retained_ops as u64);
    w.end_object();

    w.begin_named_object("nest");
    w.begin_named_array("bounds");
    for (&pool, bound) in &report.nest.bounds {
        w.begin_object();
        w.field_u64("pool", u64::from(pool));
        w.field_str("bound", &bound.to_string());
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("hints");
    for &pool in &report.nest.hints {
        w.elem_u64(u64::from(pool));
    }
    w.end_array();
    w.field_str("dynamic_depth", &report.nest.dynamic_depth.to_string());
    w.end_object();

    w.begin_named_object("guards");
    w.begin_named_array("roles");
    for role in &report.guards.roles {
        w.begin_object();
        w.field_str("name", &role.name);
        w.field_u64("method", u64::from(role.method));
        w.field_u64("threads", u64::from(role.threads));
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("facts");
    for fact in &report.guards.facts {
        w.begin_object();
        w.field_u64("pool", u64::from(fact.pool));
        w.field_u64("field", u64::from(fact.field));
        w.begin_named_array("locks");
        for &lock in &fact.locks {
            w.elem_u64(u64::from(lock));
        }
        w.end_array();
        w.field_u64("reads", fact.reads as u64);
        w.field_u64("writes", fact.writes as u64);
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("races");
    for race in &report.guards.races {
        w.begin_object();
        w.field_u64("pool", u64::from(race.pool));
        w.field_u64("field", u64::from(race.field));
        w.field_u64("threads", u64::from(race.threads));
        w.field_u64("reads", race.reads as u64);
        w.field_u64("writes", race.writes as u64);
        w.end_object();
    }
    w.end_array();
    w.field_u64(
        "unresolved_accesses",
        report.guards.unresolved_accesses as u64,
    );
    w.end_object();

    w.begin_named_object("contention");
    w.begin_named_array("sites");
    for site in &report.contention.sites {
        w.begin_object();
        w.field_u64("pool", u64::from(site.pool));
        w.field_str("shape", site.shape.as_str());
        w.field_u64("threads", u64::from(site.threads));
        w.field_u64("weight", site.weight);
        w.field_u64("waits", site.waits);
        w.field_u64("notifies", site.notifies);
        w.field_str("reason", &site.reason);
        w.end_object();
    }
    w.end_array();
    w.field_u64("unknown_weight", report.contention.unknown_weight);
    w.begin_named_array("plan");
    for entry in &report.contention.plan.entries {
        w.begin_object();
        w.field_u64("pool", u64::from(entry.pool));
        w.field_bool("elide", entry.elide);
        w.field_bool("pre_inflate", entry.pre_inflate);
        w.field_bool("pin_fifo", entry.pin_fifo);
        w.field_str("backend_hint", entry.backend_hint.as_str());
        w.end_object();
    }
    w.end_array();
    w.end_object();

    w.end_object();
}

fn write_method(w: &mut JsonWriter, m: &MethodLockFacts) {
    w.begin_object();
    w.field_u64("method_id", u64::from(m.method_id));
    w.field_str("name", &m.name);
    w.field_bool("synchronized", m.synchronized);
    w.field_u64("max_lock_stack", m.max_lock_stack as u64);
    w.begin_named_array("diagnostics");
    for d in &m.diagnostics {
        w.begin_object();
        w.field_u64("pc", d.pc as u64);
        w.field_str("message", &d.message);
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("acquires");
    for a in &m.acquires {
        w.begin_object();
        w.field_u64("pc", a.pc as u64);
        w.field_str("sym", &a.sym.to_string());
        w.begin_named_array("held");
        for h in &a.held {
            w.elem_str(&h.to_string());
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("monitor_ops");
    for op in &m.monitor_ops {
        w.begin_object();
        w.field_u64("pc", op.pc as u64);
        w.field_bool("is_enter", op.is_enter);
        w.field_str("sym", &op.sym.to_string());
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("cond_ops");
    for c in &m.cond_ops {
        w.begin_object();
        w.field_u64("pc", c.pc as u64);
        w.field_bool("is_wait", c.is_wait);
        w.field_str("sym", &c.sym.to_string());
        w.begin_named_array("held");
        for h in &c.held {
            w.elem_str(&h.to_string());
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("invokes");
    for inv in &m.invokes {
        w.begin_object();
        w.field_u64("pc", inv.pc as u64);
        w.field_u64("callee", u64::from(inv.callee));
        w.begin_named_array("args");
        for a in &inv.args {
            w.elem_str(&a.to_string());
        }
        w.end_array();
        w.begin_named_array("held");
        for h in &inv.held {
            w.elem_str(&h.to_string());
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("field_accesses");
    for fa in &m.field_accesses {
        w.begin_object();
        w.field_u64("pc", fa.pc as u64);
        w.field_str("obj", &fa.obj.to_string());
        w.field_str("field", &fa.field.to_string());
        w.field_bool("is_write", fa.is_write);
        w.begin_named_array("held");
        for h in &fa.held {
            w.elem_str(&h.to_string());
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_program;
    use crate::escape::EscapeContext;
    use thinlock_vm::programs::MicroBench;

    #[test]
    fn exported_report_parses_and_carries_the_tree() {
        let bench = MicroBench::NestedCallSync;
        let ctx = EscapeContext::threads(bench.thread_count());
        let report = analyze_program(&bench.program(), &ctx);
        let mut w = JsonWriter::new();
        write_report(&mut w, "sync-local", ctx.thread_count, &report);
        let json = w.finish();
        let value = thinlock_obs::parse(&json).expect("valid json");
        assert_eq!(
            value.get("program").and_then(|v| v.as_str()),
            Some("sync-local")
        );
        let methods = value
            .get("methods")
            .and_then(|v| v.as_array())
            .expect("methods array");
        assert_eq!(methods.len(), report.methods.len());
        for key in ["lock_order", "escape", "nest", "guards", "contention"] {
            assert!(value.get(key).is_some(), "missing section {key}");
        }
        assert_eq!(schema_version(&value), SCHEMA_VERSION);
        let contention = value.get("contention").unwrap();
        let sites = contention
            .get("sites")
            .and_then(|v| v.as_array())
            .expect("sites array");
        assert_eq!(sites.len(), report.contention.sites.len());
        let plan = contention
            .get("plan")
            .and_then(|v| v.as_array())
            .expect("plan array");
        assert_eq!(plan.len(), sites.len());
        for entry in plan {
            assert!(entry.get("backend_hint").and_then(|v| v.as_str()).is_some());
        }
    }

    #[test]
    fn v1_documents_without_schema_version_still_parse() {
        // A pre-v2 document: no `schema_version`, no `contention`
        // section, no per-method `cond_ops`. Consumers must read it
        // with the v1 default rather than rejecting it.
        let v1 = r#"{
            "program": "legacy",
            "threads": 2,
            "clean": true,
            "verify_errors": [],
            "methods": [{
                "method_id": 0,
                "name": "main",
                "synchronized": false,
                "max_lock_stack": 1,
                "diagnostics": [],
                "acquires": [{"pc": 1, "sym": "pool[0]", "held": []}],
                "monitor_ops": [],
                "invokes": [],
                "field_accesses": []
            }],
            "lock_order": {"edges": [], "cycles": [], "unresolved_edges": 0},
            "nest": {"bounds": [], "hints": [], "dynamic_depth": "1"}
        }"#;
        let value = thinlock_obs::parse(v1).expect("v1 parses");
        assert_eq!(schema_version(&value), 1);
        assert!(value.get("contention").is_none());
        let method = &value.get("methods").and_then(|v| v.as_array()).unwrap()[0];
        assert!(method.get("cond_ops").is_none(), "v1 has no cond_ops");
        assert_eq!(
            method.get("name").and_then(|v| v.as_str()),
            Some("main"),
            "v1 fields remain readable"
        );
    }
}
