//! Aggregation of all `lockcheck` passes into one program report.

use std::fmt;

use thinlock_vm::program::Program;
use thinlock_vm::verify::{verify_method, VerifyOptions};

use crate::contention::{self, ContentionReport};
use crate::escape::{self, EscapeContext, EscapeReport};
use crate::guards::{self, EntryRole, GuardsReport};
use crate::lockorder::{self, LockOrderReport};
use crate::lockstack::{self, MethodLockFacts};
use crate::nestdepth::{self, NestDepthReport};

/// The combined result of running `lockcheck` over one program.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Base-verifier failures (types/stack), one message per method that
    /// failed; such methods still get lock-stack facts on a best-effort
    /// basis.
    pub verify_errors: Vec<String>,
    /// Per-method symbolic lock-stack facts and diagnostics.
    pub methods: Vec<MethodLockFacts>,
    /// The program-wide lock-order graph and any deadlock cycles.
    pub lock_order: LockOrderReport,
    /// Escape analysis and elidable sync operations.
    pub escape: EscapeReport,
    /// Nest-depth bounds and pre-inflation hints.
    pub nest: NestDepthReport,
    /// Guarded-by inference and lockset race candidates.
    pub guards: GuardsReport,
    /// Contention-shape classification and the derived startup plan.
    pub contention: ContentionReport,
}

impl AnalysisReport {
    /// Total instruction-precise lock-discipline diagnostics.
    pub fn diagnostic_count(&self) -> usize {
        self.methods.iter().map(|m| m.diagnostics.len()).sum()
    }

    /// True when no pass found anything suspicious (elision, hints, and
    /// guarded-by facts are findings, not problems).
    pub fn is_clean(&self) -> bool {
        self.verify_errors.is_empty()
            && self.diagnostic_count() == 0
            && self.lock_order.is_acyclic()
            && self.guards.is_race_free()
    }
}

/// Runs all passes over `program` under the given harness context, with
/// the guards pass grounded at the default entry role (`main`, or method
/// 0, run on `ctx.thread_count` threads).
pub fn analyze_program(program: &Program, ctx: &EscapeContext) -> AnalysisReport {
    analyze_program_with_roles(program, ctx, &guards::default_roles(program, ctx))
}

/// Like [`analyze_program`], but grounds the guards pass at explicit
/// concurrent entry roles (one per worker kind, as the harness runs them).
///
/// The base verifier runs first with `structured_locking` off: its job
/// here is only to guarantee operand-stack sanity so the symbolic pass
/// is meaningful; lock discipline is this crate's richer reimplementation.
pub fn analyze_program_with_roles(
    program: &Program,
    ctx: &EscapeContext,
    roles: &[EntryRole],
) -> AnalysisReport {
    let base = VerifyOptions {
        structured_locking: false,
        ..VerifyOptions::default()
    };
    let mut verify_errors = Vec::new();
    for method in program.methods() {
        if let Err(e) = verify_method(program, method, base) {
            verify_errors.push(e.to_string());
        }
    }
    let methods = lockstack::analyze_program(program);
    let lock_order = lockorder::build(&methods);
    let escape = escape::analyze(program, &methods, ctx);
    let nest = nestdepth::analyze(&methods);
    let guards = guards::analyze(program, &methods, roles, ctx);
    let contention = contention::analyze(program, &methods, roles, &escape, &nest);
    AnalysisReport {
        verify_errors,
        methods,
        lock_order,
        escape,
        nest,
        guards,
        contention,
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.verify_errors {
            writeln!(f, "  verify error: {e}")?;
        }
        for m in &self.methods {
            let sync = if m.synchronized { " synchronized" } else { "" };
            writeln!(
                f,
                "  method {}{} — {} monitor op(s), max nest {}",
                m.name,
                sync,
                m.monitor_ops.len(),
                m.max_lock_stack + usize::from(m.synchronized),
            )?;
            for d in &m.diagnostics {
                writeln!(f, "    DIAG {d}")?;
            }
        }
        if !self.lock_order.edges.is_empty() {
            writeln!(f, "  lock order:")?;
            for e in &self.lock_order.edges {
                writeln!(f, "    {e}")?;
            }
        }
        for cycle in &self.lock_order.cycles {
            let names: Vec<String> = cycle.iter().map(|i| format!("pool[{i}]")).collect();
            writeln!(f, "    DEADLOCK CYCLE: {}", names.join(" <-> "))?;
        }
        if self.lock_order.unresolved_edges > 0 {
            writeln!(
                f,
                "    ({} unresolved edge(s) excluded from cycle check)",
                self.lock_order.unresolved_edges
            )?;
        }
        writeln!(
            f,
            "  escape ({} thread(s)): {} elidable op(s), {} retained, {} method(s) desyncable",
            self.escape.context.thread_count,
            self.escape.elidable_ops.len(),
            self.escape.retained_ops,
            self.escape.desync_methods.len(),
        )?;
        for (i, b) in &self.nest.bounds {
            writeln!(f, "  nest depth pool[{i}]: {b}")?;
        }
        for i in &self.nest.hints {
            writeln!(
                f,
                "    PRE-INFLATE pool[{i}] (may exceed thin count capacity)"
            )?;
        }
        if !self.guards.facts.is_empty() || !self.guards.races.is_empty() {
            let roles: Vec<String> = self
                .guards
                .roles
                .iter()
                .map(|r| format!("{}x{}", r.name, r.threads))
                .collect();
            writeln!(f, "  guards (roles: {}):", roles.join(", "))?;
            for fact in &self.guards.facts {
                writeln!(f, "    @GuardedBy {fact}")?;
            }
            for race in &self.guards.races {
                writeln!(f, "    RACE {race}")?;
            }
        }
        if self.guards.unresolved_accesses > 0 {
            writeln!(
                f,
                "    ({} unresolved field access(es) excluded from lockset inference)",
                self.guards.unresolved_accesses
            )?;
        }
        for line in self.contention.to_string().lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinlock_vm::programs::{self, MicroBench};

    #[test]
    fn clean_program_reports_clean() {
        let r = analyze_program(
            &MicroBench::MixedSync.program(),
            &EscapeContext::single_threaded(),
        );
        assert!(r.is_clean(), "{r}");
        assert!(!r.escape.elidable_ops.is_empty());
    }

    #[test]
    fn deadlock_pair_is_not_clean() {
        let r = analyze_program(&programs::deadlock_pair(), &EscapeContext::threads(2));
        assert!(!r.is_clean());
        assert_eq!(r.lock_order.cycles.len(), 1);
    }

    #[test]
    fn unbalanced_program_reports_diagnostics() {
        let r = analyze_program(
            &programs::unbalanced_exit(),
            &EscapeContext::single_threaded(),
        );
        assert!(r.diagnostic_count() > 0);
        assert!(r.verify_errors.is_empty(), "{:?}", r.verify_errors);
    }

    #[test]
    fn display_mentions_cycle_and_hints() {
        let d = analyze_program(&programs::deadlock_pair(), &EscapeContext::threads(2));
        assert!(d.to_string().contains("DEADLOCK CYCLE"));
        let n = analyze_program(&programs::deep_nest(), &EscapeContext::single_threaded());
        assert!(n.to_string().contains("PRE-INFLATE"), "{n}");
    }
}
