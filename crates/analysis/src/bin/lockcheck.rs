//! `lockcheck` — runs the static lock-discipline passes over the
//! built-in program library and prints per-method findings.
//!
//! Flags:
//!
//! * `--races` — additionally runs the guards (lockset) pass over the
//!   seeded concurrent program library with each program's real
//!   thread-role contract, printing inferred `@GuardedBy` facts and
//!   race candidates next to the ground-truth label.
//! * `--deny-races` — implies `--races`; exits non-zero if any race
//!   verdict disagrees with ground truth (a clean program flagged, a
//!   racy program missed) or a sequential-library program has race
//!   candidates. CI wires this into `scripts/check.sh`.

use std::process::ExitCode;

use thinlock_analysis::escape::EscapeContext;
use thinlock_analysis::guards::EntryRole;
use thinlock_analysis::{analyze_program, analyze_program_with_roles, AnalysisReport};
use thinlock_vm::library;
use thinlock_vm::program::Program;
use thinlock_vm::programs::{self, MicroBench};

struct Totals {
    programs: usize,
    methods: usize,
    diagnostics: usize,
    cycles: usize,
    elidable: usize,
    hints: usize,
    guarded_facts: usize,
    race_candidates: usize,
    race_mismatches: usize,
}

fn check(name: &str, program: &Program, ctx: &EscapeContext, totals: &mut Totals) {
    let report: AnalysisReport = analyze_program(program, ctx);
    let verdict = if report.is_clean() {
        "clean"
    } else {
        "FINDINGS"
    };
    println!("== {name} ({} thread(s)) — {verdict}", ctx.thread_count);
    print!("{report}");
    println!();
    totals.programs += 1;
    totals.methods += report.methods.len();
    totals.diagnostics += report.diagnostic_count() + report.verify_errors.len();
    totals.cycles += report.lock_order.cycles.len();
    totals.elidable += report.escape.elidable_ops.len();
    totals.hints += report.nest.hints.len();
    // Sequential-library programs must never have lockset race
    // candidates; any hit is a detector regression.
    totals.race_mismatches += report.guards.races.len();
    totals.race_candidates += report.guards.races.len();
}

/// The `--races` section: the guards pass over the concurrent library,
/// each program analyzed under its own thread-role contract and compared
/// with its ground-truth race label.
fn check_races(totals: &mut Totals) {
    println!("== races: guards pass over the concurrent program library");
    for entry in programs::concurrent_library() {
        let ctx = EscapeContext::threads(entry.total_threads());
        let roles: Vec<EntryRole> = entry
            .roles
            .iter()
            .map(|r| EntryRole {
                name: r.method.to_string(),
                method: entry.program.method_id(r.method).unwrap_or(0),
                threads: r.threads,
            })
            .collect();
        let report = analyze_program_with_roles(&entry.program, &ctx, &roles);
        let found_racy = !report.guards.is_race_free();
        let agrees = found_racy == entry.racy;
        let label = if entry.racy { "racy" } else { "clean" };
        let verdict = match (found_racy, agrees) {
            (true, true) => "RACE (expected)",
            (false, true) => "race-free",
            (true, false) => "FALSE POSITIVE",
            (false, false) => "MISSED RACE",
        };
        println!(
            "  {} [{label}, {} thread(s)] — {verdict}",
            entry.name,
            entry.total_threads()
        );
        for fact in &report.guards.facts {
            println!("    @GuardedBy {fact}");
        }
        for race in &report.guards.races {
            println!("    RACE {race}");
        }
        totals.guarded_facts += report.guards.facts.len();
        totals.race_candidates += report.guards.races.len();
        if !agrees {
            totals.race_mismatches += 1;
        }
        // The expected racy fields must all be among the candidates.
        for &(pool, field) in &entry.racy_fields {
            if !report
                .guards
                .races
                .iter()
                .any(|r| (r.pool, r.field) == (pool, field))
            {
                println!("    MISSING expected race on pool[{pool}].f{field}");
                totals.race_mismatches += 1;
            }
        }
    }
    println!();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny_races = args.iter().any(|a| a == "--deny-races");
    let races = deny_races || args.iter().any(|a| a == "--races");
    if let Some(unknown) = args
        .iter()
        .find(|a| *a != "--races" && *a != "--deny-races")
    {
        eprintln!("lockcheck: unknown flag {unknown} (expected --races or --deny-races)");
        return ExitCode::from(2);
    }

    let mut totals = Totals {
        programs: 0,
        methods: 0,
        diagnostics: 0,
        cycles: 0,
        elidable: 0,
        hints: 0,
        guarded_facts: 0,
        race_candidates: 0,
        race_mismatches: 0,
    };

    println!("lockcheck: static lock-discipline analysis\n");

    for bench in MicroBench::table2()
        .into_iter()
        .chain([MicroBench::MixedSync])
    {
        let ctx = EscapeContext::threads(bench.thread_count());
        check(&bench.to_string(), &bench.program(), &ctx, &mut totals);
    }

    check(
        "JavaLex-like",
        &library::javalex_like(),
        &EscapeContext::single_threaded(),
        &mut totals,
    );

    // Seeded defect programs: these must produce findings.
    check(
        "seeded: deadlock_pair",
        &programs::deadlock_pair(),
        &EscapeContext::threads(2),
        &mut totals,
    );
    check(
        "seeded: deep_nest",
        &programs::deep_nest(),
        &EscapeContext::single_threaded(),
        &mut totals,
    );
    check(
        "seeded: unbalanced_exit",
        &programs::unbalanced_exit(),
        &EscapeContext::single_threaded(),
        &mut totals,
    );
    check(
        "seeded: non_lifo_pair",
        &programs::non_lifo_pair(),
        &EscapeContext::single_threaded(),
        &mut totals,
    );

    if races {
        check_races(&mut totals);
    }

    println!(
        "summary: {} program(s), {} method(s); {} diagnostic(s), \
         {} deadlock cycle(s), {} elidable sync op(s), {} pre-inflation hint(s)",
        totals.programs,
        totals.methods,
        totals.diagnostics,
        totals.cycles,
        totals.elidable,
        totals.hints,
    );
    if races {
        println!(
            "races: {} @GuardedBy fact(s), {} race candidate(s), {} mismatch(es) vs ground truth",
            totals.guarded_facts, totals.race_candidates, totals.race_mismatches,
        );
    }
    if deny_races && totals.race_mismatches > 0 {
        eprintln!(
            "lockcheck: --deny-races: {} race verdict(s) disagree with ground truth",
            totals.race_mismatches
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
