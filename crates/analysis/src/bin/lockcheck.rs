//! `lockcheck` — runs the static lock-discipline passes over the
//! built-in program library and prints per-method findings.
//!
//! Flags:
//!
//! * `--races` — additionally runs the guards (lockset) pass over the
//!   seeded concurrent program library with each program's real
//!   thread-role contract, printing inferred `@GuardedBy` facts and
//!   race candidates next to the ground-truth label.
//! * `--deny-races` — implies `--races`; exits non-zero if any race
//!   verdict disagrees with ground truth (a clean program flagged, a
//!   racy program missed) or a sequential-library program has race
//!   candidates. CI wires this into `scripts/check.sh`.
//! * `--plan` — additionally runs the contention-shape pass over the
//!   concurrent library, executes each program under the lock tracer,
//!   and cross-checks the static `SyncPlan` against the dynamic
//!   `ContentionProfile` per allocation site: every site must agree, or
//!   diverge only toward the conservative side (static protection on a
//!   site the run left cold). Static shapes are also checked against
//!   each program's labeled `expected_shapes` ground truth.
//! * `--deny-disagreement` — implies `--plan`; exits non-zero on any
//!   non-conservative static↔dynamic disagreement, expected-shape
//!   mismatch, or dynamic run failure. CI wires this into
//!   `scripts/check.sh`.
//! * `--json` — emits a single machine-readable JSON document instead
//!   of the text report: the full `AnalysisReport` tree per program
//!   (see `thinlock_analysis::json`), the races cross-check when
//!   `--races` is also set, the plan agreement table when `--plan` is
//!   also set, and the summary totals. Exit-code behaviour (including
//!   `--deny-races` and `--deny-disagreement`) is unchanged.

use std::process::ExitCode;
use std::sync::Arc;

use thinlock_analysis::contention::{classify_agreement, Agreement};
use thinlock_analysis::escape::EscapeContext;
use thinlock_analysis::guards::EntryRole;
use thinlock_analysis::json::write_report;
use thinlock_analysis::{analyze_program, analyze_program_with_roles, AnalysisReport};
use thinlock_obs::{ContentionProfile, JsonWriter, LockTracer, TracerConfig};
use thinlock_runtime::events::TraceSink;
use thinlock_trace::vmreplay::run_concurrent_program;
use thinlock_vm::library;
use thinlock_vm::program::Program;
use thinlock_vm::programs::{self, ConcurrentProgram, MicroBench};

/// Iterations per role thread for the `--plan` dynamic runs: enough to
/// make hot sites visibly contended without slowing CI.
const PLAN_ITERS: u32 = 300;
/// Fixed schedule-perturbation seed so agreement verdicts are stable.
const PLAN_SEED: u64 = 0x51ee_d10c;

#[derive(Default)]
struct Totals {
    programs: usize,
    methods: usize,
    diagnostics: usize,
    cycles: usize,
    elidable: usize,
    hints: usize,
    guarded_facts: usize,
    race_candidates: usize,
    race_mismatches: usize,
    plan_sites: usize,
    plan_conservative: usize,
    plan_disagreements: usize,
    plan_shape_mismatches: usize,
    plan_run_errors: usize,
}

/// One analyzed program from the sequential catalog.
struct ProgramRun {
    name: String,
    threads: u32,
    report: AnalysisReport,
}

/// One concurrent-library program cross-checked against ground truth.
struct RaceRun {
    entry: ConcurrentProgram,
    report: AnalysisReport,
    agrees: bool,
    /// Expected racy fields absent from the candidate list.
    missing: Vec<(u32, u16)>,
}

/// One allocation site cross-checked static plan vs dynamic profile.
struct PlanSite {
    pool: u32,
    /// Static contention shape (stable lowercase name).
    shape: String,
    elide: bool,
    pre_inflate: bool,
    pin_fifo: bool,
    backend_hint: String,
    /// Ground-truth label from `ConcurrentProgram::expected_shapes`,
    /// when the program carries one for this pool index.
    expected: Option<&'static str>,
    /// Dynamic contended acquisitions (thin-spin + fat-queued).
    contended: u64,
    /// Dynamic `wait` operations observed on the site.
    waits: u64,
    agreement: Agreement,
}

/// One concurrent-library program run under the `--plan` agreement gate.
struct PlanRun {
    entry: ConcurrentProgram,
    sites: Vec<PlanSite>,
    /// Why the dynamic run produced no profile, if it failed.
    run_error: Option<String>,
}

/// The sequential analysis catalog: every micro-benchmark, the scanner
/// macro-benchmark, and the seeded defect programs.
fn catalog() -> Vec<(String, EscapeContext, Program)> {
    let mut entries: Vec<(String, EscapeContext, Program)> = Vec::new();
    for bench in MicroBench::table2()
        .into_iter()
        .chain([MicroBench::MixedSync])
    {
        let ctx = EscapeContext::threads(bench.thread_count());
        entries.push((bench.to_string(), ctx, bench.program()));
    }
    entries.push((
        "JavaLex-like".to_string(),
        EscapeContext::single_threaded(),
        library::javalex_like(),
    ));
    // Seeded defect programs: these must produce findings.
    entries.push((
        "seeded: deadlock_pair".to_string(),
        EscapeContext::threads(2),
        programs::deadlock_pair(),
    ));
    entries.push((
        "seeded: deep_nest".to_string(),
        EscapeContext::single_threaded(),
        programs::deep_nest(),
    ));
    entries.push((
        "seeded: unbalanced_exit".to_string(),
        EscapeContext::single_threaded(),
        programs::unbalanced_exit(),
    ));
    entries.push((
        "seeded: non_lifo_pair".to_string(),
        EscapeContext::single_threaded(),
        programs::non_lifo_pair(),
    ));
    entries
}

fn analyze_catalog(totals: &mut Totals) -> Vec<ProgramRun> {
    catalog()
        .into_iter()
        .map(|(name, ctx, program)| {
            let report = analyze_program(&program, &ctx);
            totals.programs += 1;
            totals.methods += report.methods.len();
            totals.diagnostics += report.diagnostic_count() + report.verify_errors.len();
            totals.cycles += report.lock_order.cycles.len();
            totals.elidable += report.escape.elidable_ops.len();
            totals.hints += report.nest.hints.len();
            // Sequential-library programs must never have lockset race
            // candidates; any hit is a detector regression.
            totals.race_mismatches += report.guards.races.len();
            totals.race_candidates += report.guards.races.len();
            ProgramRun {
                name,
                threads: ctx.thread_count,
                report,
            }
        })
        .collect()
}

/// The `--races` section: the guards pass over the concurrent library,
/// each program analyzed under its own thread-role contract and compared
/// with its ground-truth race label.
fn analyze_races(totals: &mut Totals) -> Vec<RaceRun> {
    programs::concurrent_library()
        .into_iter()
        .map(|entry| {
            let ctx = EscapeContext::threads(entry.total_threads());
            let roles: Vec<EntryRole> = entry
                .roles
                .iter()
                .map(|r| EntryRole {
                    name: r.method.to_string(),
                    method: entry.program.method_id(r.method).unwrap_or(0),
                    threads: r.threads,
                })
                .collect();
            let report = analyze_program_with_roles(&entry.program, &ctx, &roles);
            let agrees = report.guards.is_race_free() != entry.racy;
            // The expected racy fields must all be among the candidates.
            let missing: Vec<(u32, u16)> = entry
                .racy_fields
                .iter()
                .copied()
                .filter(|&(pool, field)| {
                    !report
                        .guards
                        .races
                        .iter()
                        .any(|r| (r.pool, r.field) == (pool, field))
                })
                .collect();
            totals.guarded_facts += report.guards.facts.len();
            totals.race_candidates += report.guards.races.len();
            if !agrees {
                totals.race_mismatches += 1;
            }
            totals.race_mismatches += missing.len();
            RaceRun {
                entry,
                report,
                agrees,
                missing,
            }
        })
        .collect()
}

/// The `--plan` section: static `SyncPlan` inference per concurrent
/// program, a traced dynamic run of the same program, and a per-site
/// agreement verdict between the two.
fn analyze_plans(totals: &mut Totals) -> Vec<PlanRun> {
    programs::concurrent_library()
        .into_iter()
        .map(|entry| {
            let ctx = EscapeContext::threads(entry.total_threads());
            let roles: Vec<EntryRole> = entry
                .roles
                .iter()
                .map(|r| EntryRole {
                    name: r.method.to_string(),
                    method: entry.program.method_id(r.method).unwrap_or(0),
                    threads: r.threads,
                })
                .collect();
            let report = analyze_program_with_roles(&entry.program, &ctx, &roles);

            let tracer = Arc::new(LockTracer::new(TracerConfig::default()));
            let sink: Arc<dyn TraceSink> = tracer.clone();
            let run_error = run_concurrent_program(&entry, PLAN_ITERS, PLAN_SEED, Some(sink)).err();
            let profile = ContentionProfile::build(&tracer.snapshot());

            let sites: Vec<PlanSite> = report
                .contention
                .sites
                .iter()
                .map(|site| {
                    // The replay pool is allocated in order, so a profile
                    // object's heap index is its pool index.
                    let (contended, waits) = profile
                        .objects
                        .iter()
                        .find(|o| o.obj.index() == site.pool as usize)
                        .map(|o| (o.acquire_contended_thin + o.acquire_fat_contended, o.waits))
                        .unwrap_or((0, 0));
                    let plan = report
                        .contention
                        .plan
                        .entry(site.pool)
                        .copied()
                        .unwrap_or_else(|| thinlock_vm::plan::PlanEntry::neutral(site.pool));
                    let agreement = classify_agreement(Some(&plan), contended, waits);
                    let expected = entry
                        .expected_shapes
                        .iter()
                        .find(|&&(pool, _)| pool == site.pool)
                        .map(|&(_, label)| label);
                    totals.plan_sites += 1;
                    match agreement {
                        Agreement::Agree => {}
                        Agreement::Conservative => totals.plan_conservative += 1,
                        Agreement::Disagree => totals.plan_disagreements += 1,
                    }
                    if expected.is_some_and(|label| label != site.shape.as_str()) {
                        totals.plan_shape_mismatches += 1;
                    }
                    PlanSite {
                        pool: site.pool,
                        shape: site.shape.as_str().to_string(),
                        elide: plan.elide,
                        pre_inflate: plan.pre_inflate,
                        pin_fifo: plan.pin_fifo,
                        backend_hint: plan.backend_hint.as_str().to_string(),
                        expected,
                        contended,
                        waits,
                        agreement,
                    }
                })
                .collect();
            if run_error.is_some() {
                totals.plan_run_errors += 1;
            }
            PlanRun {
                entry,
                sites,
                run_error,
            }
        })
        .collect()
}

fn print_text(
    runs: &[ProgramRun],
    races: Option<&[RaceRun]>,
    plans: Option<&[PlanRun]>,
    totals: &Totals,
) {
    println!("lockcheck: static lock-discipline analysis\n");
    for run in runs {
        let verdict = if run.report.is_clean() {
            "clean"
        } else {
            "FINDINGS"
        };
        println!("== {} ({} thread(s)) — {verdict}", run.name, run.threads);
        print!("{}", run.report);
        println!();
    }
    if let Some(races) = races {
        println!("== races: guards pass over the concurrent program library");
        for run in races {
            let label = if run.entry.racy { "racy" } else { "clean" };
            let verdict = match (!run.report.guards.is_race_free(), run.agrees) {
                (true, true) => "RACE (expected)",
                (false, true) => "race-free",
                (true, false) => "FALSE POSITIVE",
                (false, false) => "MISSED RACE",
            };
            println!(
                "  {} [{label}, {} thread(s)] — {verdict}",
                run.entry.name,
                run.entry.total_threads()
            );
            for fact in &run.report.guards.facts {
                println!("    @GuardedBy {fact}");
            }
            for race in &run.report.guards.races {
                println!("    RACE {race}");
            }
            for &(pool, field) in &run.missing {
                println!("    MISSING expected race on pool[{pool}].f{field}");
            }
        }
        println!();
    }
    if let Some(plans) = plans {
        println!("== plan: static SyncPlan vs dynamic contention profile");
        for run in plans {
            println!(
                "  {} [{} thread(s), iters={PLAN_ITERS}, seed={PLAN_SEED:#x}]",
                run.entry.name,
                run.entry.total_threads()
            );
            if let Some(err) = &run.run_error {
                println!("    RUN ERROR: {err}");
            }
            for site in &run.sites {
                let verdict = match site.agreement {
                    Agreement::Agree => "agree",
                    Agreement::Conservative => "conservative (allowed)",
                    Agreement::Disagree => "DISAGREE",
                };
                let mut flags = Vec::new();
                if site.elide {
                    flags.push("elide");
                }
                if site.pre_inflate {
                    flags.push("pre-inflate");
                }
                if site.pin_fifo {
                    flags.push("pin-fifo");
                }
                let flags = if flags.is_empty() {
                    "-".to_string()
                } else {
                    flags.join(",")
                };
                println!(
                    "    pool[{}] static={} hint={} flags={} dynamic: contended={} waits={} — {verdict}",
                    site.pool, site.shape, site.backend_hint, flags, site.contended, site.waits,
                );
                if let Some(expected) = site.expected {
                    if expected != site.shape {
                        println!("      SHAPE MISMATCH: labeled ground truth is {expected}");
                    }
                }
            }
        }
        println!();
    }
    println!(
        "summary: {} program(s), {} method(s); {} diagnostic(s), \
         {} deadlock cycle(s), {} elidable sync op(s), {} pre-inflation hint(s)",
        totals.programs,
        totals.methods,
        totals.diagnostics,
        totals.cycles,
        totals.elidable,
        totals.hints,
    );
    if races.is_some() {
        println!(
            "races: {} @GuardedBy fact(s), {} race candidate(s), {} mismatch(es) vs ground truth",
            totals.guarded_facts, totals.race_candidates, totals.race_mismatches,
        );
    }
    if plans.is_some() {
        println!(
            "plan: {} site(s), {} conservative divergence(s), {} disagreement(s), \
             {} shape mismatch(es), {} run error(s)",
            totals.plan_sites,
            totals.plan_conservative,
            totals.plan_disagreements,
            totals.plan_shape_mismatches,
            totals.plan_run_errors,
        );
    }
}

fn print_json(
    runs: &[ProgramRun],
    races: Option<&[RaceRun]>,
    plans: Option<&[PlanRun]>,
    totals: &Totals,
) {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("tool", "lockcheck");
    w.begin_named_array("programs");
    for run in runs {
        write_report(&mut w, &run.name, run.threads, &run.report);
    }
    w.end_array();
    if let Some(races) = races {
        w.begin_named_array("races");
        for run in races {
            w.begin_object();
            w.field_str("program", run.entry.name);
            w.field_u64("threads", u64::from(run.entry.total_threads()));
            w.field_bool("expected_racy", run.entry.racy);
            w.field_bool("found_racy", !run.report.guards.is_race_free());
            w.field_bool("agrees", run.agrees);
            w.begin_named_array("facts");
            for fact in &run.report.guards.facts {
                w.elem_str(&fact.to_string());
            }
            w.end_array();
            w.begin_named_array("race_candidates");
            for race in &run.report.guards.races {
                w.elem_str(&race.to_string());
            }
            w.end_array();
            w.begin_named_array("missing_expected");
            for &(pool, field) in &run.missing {
                w.begin_object();
                w.field_u64("pool", u64::from(pool));
                w.field_u64("field", u64::from(field));
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
    }
    if let Some(plans) = plans {
        w.begin_named_array("plan");
        for run in plans {
            w.begin_object();
            w.field_str("program", run.entry.name);
            w.field_u64("threads", u64::from(run.entry.total_threads()));
            w.field_u64("iters", u64::from(PLAN_ITERS));
            w.field_u64("seed", PLAN_SEED);
            if let Some(err) = &run.run_error {
                w.field_str("run_error", err);
            }
            w.begin_named_array("sites");
            for site in &run.sites {
                w.begin_object();
                w.field_u64("pool", u64::from(site.pool));
                w.field_str("static_shape", &site.shape);
                w.field_bool("elide", site.elide);
                w.field_bool("pre_inflate", site.pre_inflate);
                w.field_bool("pin_fifo", site.pin_fifo);
                w.field_str("backend_hint", &site.backend_hint);
                if let Some(expected) = site.expected {
                    w.field_str("expected_shape", expected);
                }
                w.field_u64("dynamic_contended", site.contended);
                w.field_u64("dynamic_waits", site.waits);
                w.field_str("agreement", site.agreement.as_str());
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
    }
    w.begin_named_object("summary");
    w.field_u64("programs", totals.programs as u64);
    w.field_u64("methods", totals.methods as u64);
    w.field_u64("diagnostics", totals.diagnostics as u64);
    w.field_u64("deadlock_cycles", totals.cycles as u64);
    w.field_u64("elidable_sync_ops", totals.elidable as u64);
    w.field_u64("pre_inflation_hints", totals.hints as u64);
    w.field_u64("guarded_facts", totals.guarded_facts as u64);
    w.field_u64("race_candidates", totals.race_candidates as u64);
    w.field_u64("race_mismatches", totals.race_mismatches as u64);
    w.field_u64("plan_sites", totals.plan_sites as u64);
    w.field_u64("plan_conservative", totals.plan_conservative as u64);
    w.field_u64("plan_disagreements", totals.plan_disagreements as u64);
    w.field_u64("plan_shape_mismatches", totals.plan_shape_mismatches as u64);
    w.field_u64("plan_run_errors", totals.plan_run_errors as u64);
    w.end_object();
    w.end_object();
    println!("{}", w.finish());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny_races = args.iter().any(|a| a == "--deny-races");
    let races = deny_races || args.iter().any(|a| a == "--races");
    let deny_disagreement = args.iter().any(|a| a == "--deny-disagreement");
    let plan = deny_disagreement || args.iter().any(|a| a == "--plan");
    let json = args.iter().any(|a| a == "--json");
    const KNOWN: [&str; 5] = [
        "--races",
        "--deny-races",
        "--plan",
        "--deny-disagreement",
        "--json",
    ];
    if let Some(unknown) = args.iter().find(|a| !KNOWN.contains(&a.as_str())) {
        eprintln!(
            "lockcheck: unknown flag {unknown} (expected {})",
            KNOWN.join(", ")
        );
        return ExitCode::from(2);
    }

    let mut totals = Totals::default();
    let runs = analyze_catalog(&mut totals);
    let race_runs = races.then(|| analyze_races(&mut totals));
    let plan_runs = plan.then(|| analyze_plans(&mut totals));

    if json {
        print_json(&runs, race_runs.as_deref(), plan_runs.as_deref(), &totals);
    } else {
        print_text(&runs, race_runs.as_deref(), plan_runs.as_deref(), &totals);
    }

    if deny_races && totals.race_mismatches > 0 {
        eprintln!(
            "lockcheck: --deny-races: {} race verdict(s) disagree with ground truth",
            totals.race_mismatches
        );
        return ExitCode::FAILURE;
    }
    let plan_failures =
        totals.plan_disagreements + totals.plan_shape_mismatches + totals.plan_run_errors;
    if deny_disagreement && plan_failures > 0 {
        eprintln!(
            "lockcheck: --deny-disagreement: {} disagreement(s), {} shape mismatch(es), \
             {} run error(s) between static plan and dynamic profile",
            totals.plan_disagreements, totals.plan_shape_mismatches, totals.plan_run_errors,
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
