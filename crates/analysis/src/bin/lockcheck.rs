//! `lockcheck` — runs all four static lock-discipline passes over the
//! built-in program library and prints per-method findings.

use thinlock_analysis::escape::EscapeContext;
use thinlock_analysis::{analyze_program, AnalysisReport};
use thinlock_vm::library;
use thinlock_vm::program::Program;
use thinlock_vm::programs::{self, MicroBench};

struct Totals {
    programs: usize,
    methods: usize,
    diagnostics: usize,
    cycles: usize,
    elidable: usize,
    hints: usize,
}

fn check(name: &str, program: &Program, ctx: &EscapeContext, totals: &mut Totals) {
    let report: AnalysisReport = analyze_program(program, ctx);
    let verdict = if report.is_clean() {
        "clean"
    } else {
        "FINDINGS"
    };
    println!("== {name} ({} thread(s)) — {verdict}", ctx.thread_count);
    print!("{report}");
    println!();
    totals.programs += 1;
    totals.methods += report.methods.len();
    totals.diagnostics += report.diagnostic_count() + report.verify_errors.len();
    totals.cycles += report.lock_order.cycles.len();
    totals.elidable += report.escape.elidable_ops.len();
    totals.hints += report.nest.hints.len();
}

fn main() {
    let mut totals = Totals {
        programs: 0,
        methods: 0,
        diagnostics: 0,
        cycles: 0,
        elidable: 0,
        hints: 0,
    };

    println!("lockcheck: static lock-discipline analysis\n");

    for bench in MicroBench::table2()
        .into_iter()
        .chain([MicroBench::MixedSync])
    {
        let ctx = EscapeContext::threads(bench.thread_count());
        check(&bench.to_string(), &bench.program(), &ctx, &mut totals);
    }

    check(
        "JavaLex-like",
        &library::javalex_like(),
        &EscapeContext::single_threaded(),
        &mut totals,
    );

    // Seeded defect programs: these must produce findings.
    check(
        "seeded: deadlock_pair",
        &programs::deadlock_pair(),
        &EscapeContext::threads(2),
        &mut totals,
    );
    check(
        "seeded: deep_nest",
        &programs::deep_nest(),
        &EscapeContext::single_threaded(),
        &mut totals,
    );
    check(
        "seeded: unbalanced_exit",
        &programs::unbalanced_exit(),
        &EscapeContext::single_threaded(),
        &mut totals,
    );
    check(
        "seeded: non_lifo_pair",
        &programs::non_lifo_pair(),
        &EscapeContext::single_threaded(),
        &mut totals,
    );

    println!(
        "summary: {} program(s), {} method(s); {} diagnostic(s), \
         {} deadlock cycle(s), {} elidable sync op(s), {} pre-inflation hint(s)",
        totals.programs,
        totals.methods,
        totals.diagnostics,
        totals.cycles,
        totals.elidable,
        totals.hints,
    );
}
