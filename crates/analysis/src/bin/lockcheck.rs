//! `lockcheck` — runs the static lock-discipline passes over the
//! built-in program library and prints per-method findings.
//!
//! Flags:
//!
//! * `--races` — additionally runs the guards (lockset) pass over the
//!   seeded concurrent program library with each program's real
//!   thread-role contract, printing inferred `@GuardedBy` facts and
//!   race candidates next to the ground-truth label.
//! * `--deny-races` — implies `--races`; exits non-zero if any race
//!   verdict disagrees with ground truth (a clean program flagged, a
//!   racy program missed) or a sequential-library program has race
//!   candidates. CI wires this into `scripts/check.sh`.
//! * `--json` — emits a single machine-readable JSON document instead
//!   of the text report: the full `AnalysisReport` tree per program
//!   (see `thinlock_analysis::json`), the races cross-check when
//!   `--races` is also set, and the summary totals. Exit-code behaviour
//!   (including `--deny-races`) is unchanged.

use std::process::ExitCode;

use thinlock_analysis::escape::EscapeContext;
use thinlock_analysis::guards::EntryRole;
use thinlock_analysis::json::write_report;
use thinlock_analysis::{analyze_program, analyze_program_with_roles, AnalysisReport};
use thinlock_obs::JsonWriter;
use thinlock_vm::library;
use thinlock_vm::program::Program;
use thinlock_vm::programs::{self, ConcurrentProgram, MicroBench};

#[derive(Default)]
struct Totals {
    programs: usize,
    methods: usize,
    diagnostics: usize,
    cycles: usize,
    elidable: usize,
    hints: usize,
    guarded_facts: usize,
    race_candidates: usize,
    race_mismatches: usize,
}

/// One analyzed program from the sequential catalog.
struct ProgramRun {
    name: String,
    threads: u32,
    report: AnalysisReport,
}

/// One concurrent-library program cross-checked against ground truth.
struct RaceRun {
    entry: ConcurrentProgram,
    report: AnalysisReport,
    agrees: bool,
    /// Expected racy fields absent from the candidate list.
    missing: Vec<(u32, u16)>,
}

/// The sequential analysis catalog: every micro-benchmark, the scanner
/// macro-benchmark, and the seeded defect programs.
fn catalog() -> Vec<(String, EscapeContext, Program)> {
    let mut entries: Vec<(String, EscapeContext, Program)> = Vec::new();
    for bench in MicroBench::table2()
        .into_iter()
        .chain([MicroBench::MixedSync])
    {
        let ctx = EscapeContext::threads(bench.thread_count());
        entries.push((bench.to_string(), ctx, bench.program()));
    }
    entries.push((
        "JavaLex-like".to_string(),
        EscapeContext::single_threaded(),
        library::javalex_like(),
    ));
    // Seeded defect programs: these must produce findings.
    entries.push((
        "seeded: deadlock_pair".to_string(),
        EscapeContext::threads(2),
        programs::deadlock_pair(),
    ));
    entries.push((
        "seeded: deep_nest".to_string(),
        EscapeContext::single_threaded(),
        programs::deep_nest(),
    ));
    entries.push((
        "seeded: unbalanced_exit".to_string(),
        EscapeContext::single_threaded(),
        programs::unbalanced_exit(),
    ));
    entries.push((
        "seeded: non_lifo_pair".to_string(),
        EscapeContext::single_threaded(),
        programs::non_lifo_pair(),
    ));
    entries
}

fn analyze_catalog(totals: &mut Totals) -> Vec<ProgramRun> {
    catalog()
        .into_iter()
        .map(|(name, ctx, program)| {
            let report = analyze_program(&program, &ctx);
            totals.programs += 1;
            totals.methods += report.methods.len();
            totals.diagnostics += report.diagnostic_count() + report.verify_errors.len();
            totals.cycles += report.lock_order.cycles.len();
            totals.elidable += report.escape.elidable_ops.len();
            totals.hints += report.nest.hints.len();
            // Sequential-library programs must never have lockset race
            // candidates; any hit is a detector regression.
            totals.race_mismatches += report.guards.races.len();
            totals.race_candidates += report.guards.races.len();
            ProgramRun {
                name,
                threads: ctx.thread_count,
                report,
            }
        })
        .collect()
}

/// The `--races` section: the guards pass over the concurrent library,
/// each program analyzed under its own thread-role contract and compared
/// with its ground-truth race label.
fn analyze_races(totals: &mut Totals) -> Vec<RaceRun> {
    programs::concurrent_library()
        .into_iter()
        .map(|entry| {
            let ctx = EscapeContext::threads(entry.total_threads());
            let roles: Vec<EntryRole> = entry
                .roles
                .iter()
                .map(|r| EntryRole {
                    name: r.method.to_string(),
                    method: entry.program.method_id(r.method).unwrap_or(0),
                    threads: r.threads,
                })
                .collect();
            let report = analyze_program_with_roles(&entry.program, &ctx, &roles);
            let agrees = report.guards.is_race_free() != entry.racy;
            // The expected racy fields must all be among the candidates.
            let missing: Vec<(u32, u16)> = entry
                .racy_fields
                .iter()
                .copied()
                .filter(|&(pool, field)| {
                    !report
                        .guards
                        .races
                        .iter()
                        .any(|r| (r.pool, r.field) == (pool, field))
                })
                .collect();
            totals.guarded_facts += report.guards.facts.len();
            totals.race_candidates += report.guards.races.len();
            if !agrees {
                totals.race_mismatches += 1;
            }
            totals.race_mismatches += missing.len();
            RaceRun {
                entry,
                report,
                agrees,
                missing,
            }
        })
        .collect()
}

fn print_text(runs: &[ProgramRun], races: Option<&[RaceRun]>, totals: &Totals) {
    println!("lockcheck: static lock-discipline analysis\n");
    for run in runs {
        let verdict = if run.report.is_clean() {
            "clean"
        } else {
            "FINDINGS"
        };
        println!("== {} ({} thread(s)) — {verdict}", run.name, run.threads);
        print!("{}", run.report);
        println!();
    }
    if let Some(races) = races {
        println!("== races: guards pass over the concurrent program library");
        for run in races {
            let label = if run.entry.racy { "racy" } else { "clean" };
            let verdict = match (!run.report.guards.is_race_free(), run.agrees) {
                (true, true) => "RACE (expected)",
                (false, true) => "race-free",
                (true, false) => "FALSE POSITIVE",
                (false, false) => "MISSED RACE",
            };
            println!(
                "  {} [{label}, {} thread(s)] — {verdict}",
                run.entry.name,
                run.entry.total_threads()
            );
            for fact in &run.report.guards.facts {
                println!("    @GuardedBy {fact}");
            }
            for race in &run.report.guards.races {
                println!("    RACE {race}");
            }
            for &(pool, field) in &run.missing {
                println!("    MISSING expected race on pool[{pool}].f{field}");
            }
        }
        println!();
    }
    println!(
        "summary: {} program(s), {} method(s); {} diagnostic(s), \
         {} deadlock cycle(s), {} elidable sync op(s), {} pre-inflation hint(s)",
        totals.programs,
        totals.methods,
        totals.diagnostics,
        totals.cycles,
        totals.elidable,
        totals.hints,
    );
    if races.is_some() {
        println!(
            "races: {} @GuardedBy fact(s), {} race candidate(s), {} mismatch(es) vs ground truth",
            totals.guarded_facts, totals.race_candidates, totals.race_mismatches,
        );
    }
}

fn print_json(runs: &[ProgramRun], races: Option<&[RaceRun]>, totals: &Totals) {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("tool", "lockcheck");
    w.begin_named_array("programs");
    for run in runs {
        write_report(&mut w, &run.name, run.threads, &run.report);
    }
    w.end_array();
    if let Some(races) = races {
        w.begin_named_array("races");
        for run in races {
            w.begin_object();
            w.field_str("program", run.entry.name);
            w.field_u64("threads", u64::from(run.entry.total_threads()));
            w.field_bool("expected_racy", run.entry.racy);
            w.field_bool("found_racy", !run.report.guards.is_race_free());
            w.field_bool("agrees", run.agrees);
            w.begin_named_array("facts");
            for fact in &run.report.guards.facts {
                w.elem_str(&fact.to_string());
            }
            w.end_array();
            w.begin_named_array("race_candidates");
            for race in &run.report.guards.races {
                w.elem_str(&race.to_string());
            }
            w.end_array();
            w.begin_named_array("missing_expected");
            for &(pool, field) in &run.missing {
                w.begin_object();
                w.field_u64("pool", u64::from(pool));
                w.field_u64("field", u64::from(field));
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
    }
    w.begin_named_object("summary");
    w.field_u64("programs", totals.programs as u64);
    w.field_u64("methods", totals.methods as u64);
    w.field_u64("diagnostics", totals.diagnostics as u64);
    w.field_u64("deadlock_cycles", totals.cycles as u64);
    w.field_u64("elidable_sync_ops", totals.elidable as u64);
    w.field_u64("pre_inflation_hints", totals.hints as u64);
    w.field_u64("guarded_facts", totals.guarded_facts as u64);
    w.field_u64("race_candidates", totals.race_candidates as u64);
    w.field_u64("race_mismatches", totals.race_mismatches as u64);
    w.end_object();
    w.end_object();
    println!("{}", w.finish());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny_races = args.iter().any(|a| a == "--deny-races");
    let races = deny_races || args.iter().any(|a| a == "--races");
    let json = args.iter().any(|a| a == "--json");
    if let Some(unknown) = args
        .iter()
        .find(|a| *a != "--races" && *a != "--deny-races" && *a != "--json")
    {
        eprintln!("lockcheck: unknown flag {unknown} (expected --races, --deny-races, or --json)");
        return ExitCode::from(2);
    }

    let mut totals = Totals::default();
    let runs = analyze_catalog(&mut totals);
    let race_runs = races.then(|| analyze_races(&mut totals));

    if json {
        print_json(&runs, race_runs.as_deref(), &totals);
    } else {
        print_text(&runs, race_runs.as_deref(), &totals);
    }

    if deny_races && totals.race_mismatches > 0 {
        eprintln!(
            "lockcheck: --deny-races: {} race verdict(s) disagree with ground truth",
            totals.race_mismatches
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
