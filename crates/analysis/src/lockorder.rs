//! Lock-order graph construction and deadlock-cycle detection.
//!
//! Every acquisition site from the [`crate::lockstack`] pass contributes
//! *held-while-acquiring* edges `h → a` for each symbol `h` held when `a`
//! is taken. Edges are propagated interprocedurally through `Invoke`: a
//! callee's summary (what it may acquire, and its internal edges) is
//! substituted into the caller's namespace by mapping the callee's
//! `Arg(i)` symbols to the caller's symbolic arguments at the call site.
//! The fixpoint grounds argument-parameterized edges to concrete pool
//! objects wherever a call chain determines them.
//!
//! The program-wide graph is the union of all *grounded* (pool-to-pool)
//! edges; a cycle in that graph means two threads interleaving those
//! code paths can deadlock. Self-edges (re-entrant nesting of one lock)
//! are legal for Java monitors and excluded. Edges with a statically
//! unresolvable endpoint are counted separately as a coverage caveat
//! rather than wired into the cycle check, which would otherwise flag
//! every dynamic (`ALoadPool`) program.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::lockstack::{MethodLockFacts, Sym};

/// One held-while-acquiring edge between two pool objects.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderEdge {
    /// Pool index held.
    pub from: u32,
    /// Pool index acquired while `from` is held.
    pub to: u32,
    /// Name of a method witnessing the edge.
    pub witness: String,
}

impl fmt::Display for OrderEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pool[{}] -> pool[{}] (in {})",
            self.from, self.to, self.witness
        )
    }
}

/// The program-wide lock-order analysis result.
#[derive(Debug, Clone, Default)]
pub struct LockOrderReport {
    /// All grounded pool-to-pool edges, deduplicated, self-edges kept
    /// (they are legal re-entrancy, listed for completeness).
    pub edges: Vec<OrderEdge>,
    /// Cycles among distinct pool objects: each entry is the set of pool
    /// indices in one strongly connected component of size ≥ 2. A
    /// non-empty list means a potential deadlock.
    pub cycles: Vec<Vec<u32>>,
    /// Number of held-while-acquiring facts with a statically
    /// unresolvable endpoint, excluded from the cycle check.
    pub unresolved_edges: usize,
}

impl LockOrderReport {
    /// True when no deadlock cycle was found.
    pub fn is_acyclic(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// Per-method interprocedural summary, in the method's own namespace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Summary {
    /// Symbols this method (or anything it calls) may acquire.
    acquires: BTreeSet<Sym>,
    /// Held-while-acquiring edges, including substituted callee edges.
    edges: BTreeSet<(Sym, Sym)>,
}

fn substitute(sym: Sym, args: &[Sym]) -> Sym {
    match sym {
        Sym::Arg(i) => args.get(usize::from(i)).copied().unwrap_or(Sym::Unknown),
        other => other,
    }
}

/// Builds the lock-order graph from per-method lock facts.
pub fn build(facts: &[MethodLockFacts]) -> LockOrderReport {
    let by_id: BTreeMap<u16, &MethodLockFacts> = facts.iter().map(|f| (f.method_id, f)).collect();
    let mut summaries: BTreeMap<u16, Summary> = facts
        .iter()
        .map(|f| (f.method_id, Summary::default()))
        .collect();

    // Monotone fixpoint: summaries only grow, and the symbol universe per
    // method (pool constants, argument indices, Unknown) is finite.
    loop {
        let mut changed = false;
        for f in facts {
            let mut s = summaries[&f.method_id].clone();
            for a in &f.acquires {
                s.acquires.insert(a.sym);
                for &h in &a.held {
                    s.edges.insert((h, a.sym));
                }
            }
            for call in &f.invokes {
                let Some(callee) = summaries.get(&call.callee) else {
                    continue;
                };
                let callee = callee.clone();
                for &a in &callee.acquires {
                    let ga = substitute(a, &call.args);
                    s.acquires.insert(ga);
                    // Everything held at the call site orders before
                    // everything the callee may acquire.
                    for &h in &call.held {
                        s.edges.insert((h, ga));
                    }
                }
                for &(x, y) in &callee.edges {
                    s.edges
                        .insert((substitute(x, &call.args), substitute(y, &call.args)));
                }
            }
            if s != summaries[&f.method_id] {
                summaries.insert(f.method_id, s);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Union the grounded edges; attribute each to the first method whose
    // summary contains it.
    let mut grounded: BTreeMap<(u32, u32), String> = BTreeMap::new();
    let mut unresolved = 0usize;
    for f in facts {
        for &(x, y) in &summaries[&f.method_id].edges {
            match (x, y) {
                (Sym::Pool(a), Sym::Pool(b)) => {
                    grounded
                        .entry((a, b))
                        .or_insert_with(|| by_id[&f.method_id].name.clone());
                }
                _ => unresolved += 1,
            }
        }
    }

    let edges: Vec<OrderEdge> = grounded
        .iter()
        .map(|(&(from, to), witness)| OrderEdge {
            from,
            to,
            witness: witness.clone(),
        })
        .collect();

    LockOrderReport {
        cycles: find_cycles(grounded.keys().copied()),
        edges,
        unresolved_edges: unresolved,
    }
}

/// Tarjan SCC over the pool-index graph; returns components of size ≥ 2
/// (self-edges alone are re-entrant nesting, not deadlock).
fn find_cycles(edge_iter: impl Iterator<Item = (u32, u32)>) -> Vec<Vec<u32>> {
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (a, b) in edge_iter {
        if a != b {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default();
        }
    }
    let nodes: Vec<u32> = adj.keys().copied().collect();
    let index_of: BTreeMap<u32, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    // Iterative Tarjan to keep deep graphs off the call stack.
    const UNVISITED: usize = usize::MAX;
    let n = nodes.len();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<u32>> = Vec::new();

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        // (node, next child position)
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, child)) = call.last() {
            if child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs = &adj[&nodes[v]];
            if child < succs.len() {
                call.last_mut().expect("non-empty").1 += 1;
                let w = index_of[&succs[child]];
                if index[w] == UNVISITED {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack non-empty");
                        on_stack[w] = false;
                        comp.push(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() >= 2 {
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs.sort();
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstack;
    use thinlock_vm::programs::{self, MicroBench};

    #[test]
    fn seeded_deadlock_pair_is_flagged() {
        let p = programs::deadlock_pair();
        let facts = lockstack::analyze_program(&p);
        let report = build(&facts);
        assert!(!report.is_acyclic(), "expected a cycle: {report:?}");
        assert_eq!(report.cycles, vec![vec![0, 1]]);
    }

    #[test]
    fn nested_sync_on_one_lock_is_acyclic() {
        let p = MicroBench::NestedSync.program();
        let facts = lockstack::analyze_program(&p);
        let report = build(&facts);
        assert!(report.is_acyclic(), "{report:?}");
    }

    #[test]
    fn mixed_sync_reentrant_nesting_is_acyclic() {
        // MixedSync nests pool[0] inside itself: a self-edge, which is
        // legal re-entrancy, never a deadlock.
        let p = MicroBench::MixedSync.program();
        let facts = lockstack::analyze_program(&p);
        let report = build(&facts);
        assert!(report.is_acyclic(), "{report:?}");
        assert!(report.edges.iter().any(|e| (e.from, e.to) == (0, 0)));
    }

    #[test]
    fn consistent_two_lock_order_is_acyclic() {
        // Same nesting order as one arm of the deadlock pair, alone:
        // a 0 -> 1 edge and no cycle.
        use thinlock_vm::program::{Method, MethodFlags, Program};
        use thinlock_vm::Op;
        let mut p = Program::new(2);
        p.add_method(Method::new(
            "main",
            0,
            0,
            MethodFlags::default(),
            vec![
                Op::AConst(0),
                Op::MonitorEnter,
                Op::AConst(1),
                Op::MonitorEnter,
                Op::AConst(1),
                Op::MonitorExit,
                Op::AConst(0),
                Op::MonitorExit,
                Op::Return,
            ],
        ));
        let facts = lockstack::analyze_program(&p);
        let report = build(&facts);
        assert!(report.is_acyclic(), "{report:?}");
        assert!(report.edges.iter().any(|e| (e.from, e.to) == (0, 1)));
    }

    #[test]
    fn synchronized_callee_grounds_receiver_edge() {
        // main holds pool[1] while invoking a synchronized callee with
        // receiver pool[0]: that is a grounded 1 -> 0 edge.
        use thinlock_vm::program::{Method, MethodFlags, Program};
        use thinlock_vm::Op;
        let mut p = Program::new(2);
        p.add_method(Method::new(
            "main",
            0,
            0,
            MethodFlags::default(),
            vec![
                Op::AConst(1),
                Op::MonitorEnter,
                Op::AConst(0),
                Op::Invoke(1),
                Op::AConst(1),
                Op::MonitorExit,
                Op::Return,
            ],
        ));
        p.add_method(Method::new(
            "locked",
            1,
            1,
            MethodFlags {
                synchronized: true,
                returns_value: false,
            },
            vec![Op::Return],
        ));
        let facts = lockstack::analyze_program(&p);
        let report = build(&facts);
        assert!(
            report.edges.iter().any(|e| (e.from, e.to) == (1, 0)),
            "{report:?}"
        );
        assert!(report.is_acyclic());
    }
}
