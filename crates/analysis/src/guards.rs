//! Guarded-by inference and lockset race detection (the `guards` pass).
//!
//! An Eraser/RacerD-style lockset dataflow over the symbolic facts of
//! [`crate::lockstack`]: every field access carries the set of locks
//! provably held around it, access sets are propagated
//! interprocedurally through `Invoke` (callee facts substituted into
//! the caller's namespace, with the call-site held-set unioned in), and
//! the per-field *candidate lockset* is the intersection of the
//! grounded locksets of every access reachable from a concurrent entry
//! point:
//!
//! * a non-empty intersection is an inferred `@GuardedBy(lock)` fact —
//!   the discipline the program actually follows;
//! * an empty intersection on a field that is written and reachable
//!   from more than one thread-role is a *race candidate*.
//!
//! The static verdict is deliberately comparable with the dynamic
//! Eraser sanitizer in `thinlock-obs`: both compute the same
//! lockset-intersection invariant, one over all paths before running,
//! one over the observed event stream. DESIGN.md §13 states the
//! agreement contract; the `race_detection` integration tests enforce
//! it over the seeded concurrent program library.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use thinlock_vm::program::Program;

use crate::escape::EscapeContext;
use crate::lockstack::{FieldId, MethodLockFacts, Sym};

/// One concurrent entry point: `threads` worker threads each run the
/// entry method, the way the benchmark harness runs `main` on every
/// worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryRole {
    /// Human-readable role name ("worker", "reader", ...).
    pub name: String,
    /// Method id of the role's entry point.
    pub method: u16,
    /// How many threads run this role concurrently.
    pub threads: u32,
}

/// An inferred `@GuardedBy` fact: every reachable access of
/// `pool[pool].field` holds all of `locks`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardedByFact {
    /// Pool index of the object owning the field.
    pub pool: u32,
    /// Field index within the object.
    pub field: u16,
    /// Pool indices of the locks held around *every* access, sorted.
    pub locks: Vec<u32>,
    /// Distinct read sites (across all roles, post-substitution).
    pub reads: usize,
    /// Distinct write sites.
    pub writes: usize,
}

impl fmt::Display for GuardedByFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let locks: Vec<String> = self.locks.iter().map(|l| format!("pool[{l}]")).collect();
        write!(
            f,
            "pool[{}].f{} guarded by {{{}}} ({} read site(s), {} write site(s))",
            self.pool,
            self.field,
            locks.join(", "),
            self.reads,
            self.writes
        )
    }
}

/// A field whose candidate lockset went empty while being written and
/// reachable from more than one thread-role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceCandidate {
    /// Pool index of the object owning the field.
    pub pool: u32,
    /// Field index within the object.
    pub field: u16,
    /// Total worker threads across all roles accessing the field.
    pub threads: u32,
    /// Distinct read sites.
    pub reads: usize,
    /// Distinct write sites.
    pub writes: usize,
}

impl fmt::Display for RaceCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pool[{}].f{}: empty lockset across {} thread(s) \
             ({} read site(s), {} write site(s))",
            self.pool, self.field, self.threads, self.reads, self.writes
        )
    }
}

/// Result of the guards pass over one program.
#[derive(Debug, Clone, Default)]
pub struct GuardsReport {
    /// The entry roles the analysis ran under, for display.
    pub roles: Vec<EntryRole>,
    /// Inferred `@GuardedBy` facts, sorted by (pool, field).
    pub facts: Vec<GuardedByFact>,
    /// Fields flagged as race candidates, sorted by (pool, field).
    pub races: Vec<RaceCandidate>,
    /// Reachable accesses whose object or field could not be grounded
    /// statically — excluded from the per-field intersection, a
    /// coverage caveat like `LockOrderReport::unresolved_edges`.
    pub unresolved_accesses: usize,
}

impl GuardsReport {
    /// True when no field is a race candidate.
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }
}

/// One reachable field access in some method's namespace.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Access {
    obj: Sym,
    field: FieldId,
    write: bool,
    /// Locks held at the access (a set: multiplicity is irrelevant to
    /// mutual exclusion).
    locks: BTreeSet<Sym>,
}

fn substitute(sym: Sym, args: &[Sym]) -> Sym {
    match sym {
        Sym::Arg(i) => args.get(usize::from(i)).copied().unwrap_or(Sym::Unknown),
        other => other,
    }
}

/// Computes, per method, every field access reachable from it (its own
/// plus its callees', substituted), via the same monotone summary
/// fixpoint as the lock-order pass.
fn summarize(facts: &[MethodLockFacts]) -> BTreeMap<u16, BTreeSet<Access>> {
    let mut summaries: BTreeMap<u16, BTreeSet<Access>> = facts
        .iter()
        .map(|f| (f.method_id, BTreeSet::new()))
        .collect();
    loop {
        let mut changed = false;
        for f in facts {
            let mut s = summaries[&f.method_id].clone();
            for a in &f.field_accesses {
                s.insert(Access {
                    obj: a.obj,
                    field: a.field,
                    write: a.is_write,
                    locks: a.held.iter().copied().collect(),
                });
            }
            for call in &f.invokes {
                let Some(callee) = summaries.get(&call.callee) else {
                    continue;
                };
                for a in callee.clone() {
                    let mut locks: BTreeSet<Sym> =
                        a.locks.iter().map(|&l| substitute(l, &call.args)).collect();
                    locks.extend(call.held.iter().copied());
                    s.insert(Access {
                        obj: substitute(a.obj, &call.args),
                        field: a.field,
                        write: a.write,
                        locks,
                    });
                }
            }
            if s != summaries[&f.method_id] {
                summaries.insert(f.method_id, s);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

/// Per-(pool, field) aggregation across roles.
#[derive(Debug, Clone)]
struct FieldState {
    /// Candidate lockset: `None` = still the full universe (no access
    /// folded yet), `Some(set)` = intersection so far, grounded locks
    /// only.
    candidate: Option<BTreeSet<u32>>,
    reads: usize,
    writes: usize,
    threads: u32,
    roles_seen: BTreeSet<usize>,
}

/// Runs the guards pass: lockset intersection per field across every
/// access reachable from the given concurrent entry roles.
pub fn analyze(
    program: &Program,
    facts: &[MethodLockFacts],
    roles: &[EntryRole],
    ctx: &EscapeContext,
) -> GuardsReport {
    let summaries = summarize(facts);
    let mut fields: BTreeMap<(u32, u16), FieldState> = BTreeMap::new();
    let mut unresolved = 0usize;

    for (role_idx, role) in roles.iter().enumerate() {
        let Some(summary) = summaries.get(&role.method) else {
            continue;
        };
        for a in summary {
            // Ground the access: entry-method arguments are harness
            // integers (the iteration count), so any symbol that is
            // still an `Arg` or `Unknown` at the root is unresolvable.
            let (Sym::Pool(pool), FieldId::Const(field)) = (a.obj, a.field) else {
                unresolved += 1;
                continue;
            };
            let grounded: BTreeSet<u32> = a
                .locks
                .iter()
                .filter_map(|l| match l {
                    Sym::Pool(i) => Some(*i),
                    Sym::Arg(_) | Sym::Unknown => None,
                })
                .collect();
            let state = fields.entry((pool, field)).or_insert(FieldState {
                candidate: None,
                reads: 0,
                writes: 0,
                threads: 0,
                roles_seen: BTreeSet::new(),
            });
            if a.write {
                state.writes += 1;
            } else {
                state.reads += 1;
            }
            if state.roles_seen.insert(role_idx) {
                state.threads += role.threads.max(1);
            }
            state.candidate = Some(match state.candidate.take() {
                None => grounded,
                Some(c) => c.intersection(&grounded).copied().collect(),
            });
        }
    }

    let mut report = GuardsReport {
        roles: roles.to_vec(),
        facts: Vec::new(),
        races: Vec::new(),
        unresolved_accesses: unresolved,
    };
    for ((pool, field), state) in &fields {
        let candidate = state.candidate.clone().unwrap_or_default();
        if !candidate.is_empty() {
            report.facts.push(GuardedByFact {
                pool: *pool,
                field: *field,
                locks: candidate.into_iter().collect(),
                reads: state.reads,
                writes: state.writes,
            });
        } else if state.writes > 0 && state.threads > 1 && ctx.pool_is_shared(*pool) {
            report.races.push(RaceCandidate {
                pool: *pool,
                field: *field,
                threads: state.threads,
                reads: state.reads,
                writes: state.writes,
            });
        }
    }
    let _ = program; // reserved: the pass only needs the lockstack facts
    report
}

/// The default single-role view used by [`crate::analyze_program`]: the
/// harness runs `main` (or method 0) on `ctx.thread_count` threads.
pub fn default_roles(program: &Program, ctx: &EscapeContext) -> Vec<EntryRole> {
    let method = program.method_id("main").unwrap_or(0);
    vec![EntryRole {
        name: "main".to_string(),
        method,
        threads: ctx.thread_count,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstack;
    use thinlock_vm::program::{Method, MethodFlags, Program};
    use thinlock_vm::Op;

    fn guarded_increment(locked: bool) -> Vec<Op> {
        let mut code = Vec::new();
        if locked {
            code.extend([Op::AConst(0), Op::MonitorEnter]);
        }
        code.extend([
            Op::AConst(0),
            Op::AConst(0),
            Op::GetField(0),
            Op::IConst(1),
            Op::IAdd,
            Op::PutField(0),
        ]);
        if locked {
            code.extend([Op::AConst(0), Op::MonitorExit]);
        }
        code.push(Op::Return);
        code
    }

    fn one_method_program(code: Vec<Op>) -> Program {
        let mut p = Program::new(1);
        p.add_method(Method::new("main", 0, 0, MethodFlags::default(), code));
        p
    }

    fn run(program: &Program, threads: u32) -> GuardsReport {
        let facts = lockstack::analyze_program(program);
        let ctx = EscapeContext::threads(threads);
        analyze(program, &facts, &default_roles(program, &ctx), &ctx)
    }

    #[test]
    fn guarded_field_yields_fact_not_race() {
        let p = one_method_program(guarded_increment(true));
        let r = run(&p, 4);
        assert!(r.is_race_free(), "{:?}", r.races);
        assert_eq!(r.facts.len(), 1);
        assert_eq!(r.facts[0].locks, vec![0]);
        assert_eq!((r.facts[0].pool, r.facts[0].field), (0, 0));
        assert_eq!((r.facts[0].reads, r.facts[0].writes), (1, 1));
    }

    #[test]
    fn unguarded_shared_write_is_a_race_candidate() {
        let p = one_method_program(guarded_increment(false));
        let r = run(&p, 2);
        assert!(!r.is_race_free());
        assert_eq!((r.races[0].pool, r.races[0].field), (0, 0));
        assert_eq!(r.races[0].threads, 2);
    }

    #[test]
    fn single_thread_or_unshared_pool_never_races() {
        let p = one_method_program(guarded_increment(false));
        assert!(run(&p, 1).is_race_free(), "one thread cannot race");
        let facts = lockstack::analyze_program(&p);
        // Two threads, but the pool object is not shared by the harness.
        let ctx = EscapeContext::with_shared(2, std::iter::empty());
        let r = analyze(&p, &facts, &default_roles(&p, &ctx), &ctx);
        assert!(r.is_race_free(), "unshared object cannot race");
    }

    #[test]
    fn callee_accesses_inherit_call_site_locks() {
        // main: synchronized(pool[0]) { bump(pool[0]) }; bump writes
        // arg0.f0 with no lock of its own — guarded via the caller.
        let mut p = Program::new(1);
        p.add_method(Method::new(
            "main",
            0,
            0,
            MethodFlags::default(),
            vec![
                Op::AConst(0),
                Op::MonitorEnter,
                Op::AConst(0),
                Op::Invoke(1),
                Op::AConst(0),
                Op::MonitorExit,
                Op::Return,
            ],
        ));
        p.add_method(Method::new(
            "bump",
            1,
            1,
            MethodFlags::default(),
            vec![
                Op::ALoad(0),
                Op::ALoad(0),
                Op::GetField(0),
                Op::IConst(1),
                Op::IAdd,
                Op::PutField(0),
                Op::Return,
            ],
        ));
        let r = run(&p, 4);
        assert!(r.is_race_free(), "{:?}", r.races);
        assert_eq!(r.facts.len(), 1);
        assert_eq!(r.facts[0].locks, vec![0]);
    }

    #[test]
    fn partial_guard_across_roles_is_flagged() {
        // Role A writes under the lock, role B writes bare: the
        // intersection is empty even though one role is disciplined.
        let mut p = Program::new(1);
        p.add_method(Method::new(
            "locked",
            0,
            0,
            MethodFlags::default(),
            guarded_increment(true),
        ));
        p.add_method(Method::new(
            "bare",
            0,
            0,
            MethodFlags::default(),
            guarded_increment(false),
        ));
        let facts = lockstack::analyze_program(&p);
        let ctx = EscapeContext::threads(3);
        let roles = vec![
            EntryRole {
                name: "locked".into(),
                method: 0,
                threads: 1,
            },
            EntryRole {
                name: "bare".into(),
                method: 1,
                threads: 2,
            },
        ];
        let r = analyze(&p, &facts, &roles, &ctx);
        assert!(!r.is_race_free());
        assert_eq!(r.races[0].threads, 3);
        assert!(r.facts.is_empty());
    }

    #[test]
    fn unresolvable_access_is_counted_not_guessed() {
        // Field read through a dynamic pool load: the object symbol is
        // Unknown at the root, so the access is a coverage caveat.
        let code = vec![
            Op::IConst(0),
            Op::ALoadPool,
            Op::GetField(0),
            Op::Pop,
            Op::Return,
        ];
        let p = one_method_program(code);
        let r = run(&p, 2);
        assert_eq!(r.unresolved_accesses, 1);
        assert!(r.facts.is_empty() && r.races.is_empty());
    }
}
