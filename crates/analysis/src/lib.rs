//! `lockcheck`: static lock-discipline analysis for the thin-locks VM.
//!
//! Four passes layered on the abstract-interpretation verifier of
//! `thinlock_vm::verify`, each exploiting a premise of the paper (locking
//! is shallow, uncontended, and mostly thread-local) to prove facts about
//! a program's `MonitorEnter`/`MonitorExit` behaviour *before* it runs:
//!
//! * [`lockstack`] — a symbolic lock-stack dataflow that upgrades the
//!   verifier's boolean monitor-balance counter to track *which*
//!   pool-constant or argument each held lock came from at every program
//!   point, with instruction-precise diagnostics for unbalanced or
//!   mismatched monitor operations.
//! * [`lockorder`] — a lock-order graph built from held-while-acquiring
//!   edges across all methods (interprocedurally, through `Invoke`), with
//!   cycle detection that flags potential deadlocks.
//! * [`escape`] — a conservative thread-escape analysis marking sync
//!   operations on provably thread-local objects elidable; its result
//!   feeds `thinlock_vm::transform::elide_local_sync`.
//! * [`nestdepth`] — a static nest-depth bound per pool object; nesting
//!   that can exceed the paper's 255 thin-lock count (Section 2.3.3)
//!   yields *pre-inflation hints* the interpreter applies via
//!   `ThinLocks::pre_inflate`, so overflow inflation never happens in the
//!   middle of a critical section.
//! * [`guards`] — an Eraser/RacerD-style lockset pass: per-field
//!   intersection of the locks provably held across every reachable
//!   access infers `@GuardedBy` facts, and a field written with an empty
//!   lockset while reachable from more than one thread-role is flagged
//!   as a race candidate. Cross-checked at runtime by the dynamic Eraser
//!   sanitizer in `thinlock_obs`.
//! * [`contention`] — interprocedural contention-shape inference: loop
//!   weights times thread roles classify every pool site (thread-local,
//!   uncontended, hot-mutex, wait-heavy, churn) and emit a startup
//!   `SyncPlan` (elision, pre-inflation, FIFO pinning, backend hints)
//!   the VM applies via `Vm::apply_sync_plan`. `lockcheck --plan`
//!   cross-checks the static plan against the dynamic
//!   `ContentionProfile` of the same program, site by site.
//!
//! [`report`] assembles the per-method findings of all passes, and the
//! `lockcheck` binary prints them for the built-in program library —
//! either as human-readable text or, via `--json`, as a machine-readable
//! document produced by [`json`].

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod contention;
pub mod escape;
pub mod guards;
pub mod json;
pub mod lockorder;
pub mod lockstack;
pub mod nestdepth;
pub mod report;

pub use report::{analyze_program, analyze_program_with_roles, AnalysisReport};
