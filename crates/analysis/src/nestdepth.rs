//! Static nest-depth bounds and pre-inflation hints.
//!
//! The thin-lock word stores the recursive lock count in 8 bits (count
//! field = holds − 1, so up to [`THIN_NEST_CAPACITY`] simultaneous holds
//! stay thin); one more acquisition forces an inflation *in the middle
//! of a critical section* — the paper's count-overflow path. This pass
//! computes, per pool object, an upper bound on how deeply any single
//! thread can nest that lock, interprocedurally: per-method bounds in
//! the method's own symbol namespace, substituted into callers at
//! `Invoke` sites and iterated to a saturating fixpoint. Recursion while
//! holding a lock never stabilizes and is reported as
//! [`Bound::Unbounded`].
//!
//! Any object whose bound exceeds the thin capacity yields a
//! *pre-inflation hint*: the interpreter inflates it once, up front
//! (`ThinLocks::pre_inflate`), trading one cheap early inflation for a
//! guaranteed-absent expensive mid-critical-section one.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use thinlock_runtime::lockword::MAX_THIN_COUNT;

use crate::lockstack::{held_multiplicity, MethodLockFacts, Sym};

/// Maximum simultaneous holds of one lock that stay thin: the 8-bit
/// count field stores `holds - 1`, so capacity is `MAX_THIN_COUNT + 1`.
pub const THIN_NEST_CAPACITY: u32 = MAX_THIN_COUNT + 1;

/// Saturation ceiling for finite bounds; anything that climbs past this
/// (or fails to stabilize) is reported as unbounded.
const CAP: u32 = 4096;

/// Static upper bound on nesting depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bound {
    /// At most this many simultaneous holds by one thread.
    Finite(u32),
    /// No static bound (recursion while holding, or saturated).
    Unbounded,
}

impl Default for Bound {
    fn default() -> Self {
        Bound::Finite(0)
    }
}

impl Bound {
    /// Whether this bound can overflow the thin-lock count field.
    pub fn exceeds_thin_capacity(self) -> bool {
        match self {
            Bound::Finite(n) => n > THIN_NEST_CAPACITY,
            Bound::Unbounded => true,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "{n}"),
            Bound::Unbounded => f.write_str("unbounded"),
        }
    }
}

/// The nest-depth analysis result.
#[derive(Debug, Clone, Default)]
pub struct NestDepthReport {
    /// Per-pool-object bound, for every object some method can lock.
    pub bounds: BTreeMap<u32, Bound>,
    /// Pool indices whose bound exceeds [`THIN_NEST_CAPACITY`]: these
    /// should be pre-inflated before the program runs.
    pub hints: Vec<u32>,
    /// Maximum depth contributed by statically unresolvable lock
    /// operands — a coverage caveat, not attributed to any pool index.
    pub dynamic_depth: Bound,
}

/// Value lattice for the fixpoint: 0..=CAP, then Unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Depth {
    Finite(u32),
    Unbounded,
}

impl Depth {
    fn add(self, n: u32) -> Depth {
        match self {
            Depth::Finite(v) if v.saturating_add(n) <= CAP => Depth::Finite(v + n),
            _ => Depth::Unbounded,
        }
    }
    fn max(self, other: Depth) -> Depth {
        match (self, other) {
            (Depth::Finite(a), Depth::Finite(b)) => Depth::Finite(a.max(b)),
            _ => Depth::Unbounded,
        }
    }
    fn to_bound(self) -> Bound {
        match self {
            Depth::Finite(n) => Bound::Finite(n),
            Depth::Unbounded => Bound::Unbounded,
        }
    }
}

fn substitute(sym: Sym, args: &[Sym]) -> Sym {
    match sym {
        Sym::Arg(i) => args.get(usize::from(i)).copied().unwrap_or(Sym::Unknown),
        other => other,
    }
}

/// Computes per-pool nest-depth bounds from lock-stack facts.
///
/// `D(m, s)` is the maximum number of simultaneous holds of symbol `s`
/// (in `m`'s namespace) during any execution of `m`. Peaks occur at
/// acquisition sites (`mult(held ∪ {sym})`) and across calls
/// (`mult(held) + Σ D(callee, s')` over callee symbols grounding to
/// `s`). The fixpoint is monotone over a finite lattice; if it has not
/// stabilized after a sweep budget that covers any acyclic call graph,
/// the still-rising entries are recursive and become unbounded.
pub fn analyze(facts: &[MethodLockFacts]) -> NestDepthReport {
    let mut depths: BTreeMap<(u16, Sym), Depth> = BTreeMap::new();
    let sweep_budget = facts.len() * 2 + 8;
    let mut stabilized = true;
    for sweep in 0..=sweep_budget {
        let mut changed = false;
        for f in facts {
            // Candidate depths per symbol for this method, this sweep.
            let mut cand: BTreeMap<Sym, Depth> = BTreeMap::new();
            for a in &f.acquires {
                let mut held = a.held.clone();
                held.push(a.sym);
                for (sym, mult) in held_multiplicity(&held) {
                    let d = cand.entry(sym).or_insert(Depth::Finite(0));
                    *d = d.max(Depth::Finite(mult));
                }
            }
            for call in &f.invokes {
                let base = held_multiplicity(&call.held);
                // Sum callee contributions per caller-namespace symbol:
                // distinct callee symbols grounding to the same caller
                // symbol could be held simultaneously.
                let mut callee_sum: BTreeMap<Sym, Depth> = BTreeMap::new();
                for (&(mid, csym), &d) in &depths {
                    if mid != call.callee {
                        continue;
                    }
                    let ground = substitute(csym, &call.args);
                    let entry = callee_sum.entry(ground).or_insert(Depth::Finite(0));
                    *entry = match (*entry, d) {
                        (Depth::Finite(a), Depth::Finite(b)) => Depth::Finite(a + b).add(0),
                        _ => Depth::Unbounded,
                    };
                }
                let syms: BTreeSet<Sym> = base
                    .keys()
                    .copied()
                    .chain(callee_sum.keys().copied())
                    .collect();
                for sym in syms {
                    let b = base.get(&sym).copied().unwrap_or(0);
                    let extra = callee_sum.get(&sym).copied().unwrap_or(Depth::Finite(0));
                    let d = cand.entry(sym).or_insert(Depth::Finite(0));
                    *d = d.max(extra.add(b));
                }
            }
            for (sym, d) in cand {
                let key = (f.method_id, sym);
                let old = depths.get(&key).copied().unwrap_or(Depth::Finite(0));
                let new = old.max(d);
                if new != old {
                    depths.insert(key, new);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        if sweep == sweep_budget {
            stabilized = false;
        }
    }
    if !stabilized {
        // Still rising after a budget that covers any call DAG: the
        // remaining growth comes from recursion while holding.
        // Re-sweep once and mark everything that would still change.
        let snapshot = depths.clone();
        for f in facts {
            for call in &f.invokes {
                let held_any = !call.held.is_empty();
                for &(mid, csym) in snapshot.keys() {
                    if mid == call.callee && held_any {
                        let ground = substitute(csym, &call.args);
                        depths.insert((f.method_id, ground), Depth::Unbounded);
                        for &h in &call.held {
                            depths.insert((f.method_id, h), Depth::Unbounded);
                        }
                    }
                }
            }
        }
    }

    // Program-wide bound per pool object: the worst over all methods
    // (any method is a potential entry point).
    let mut bounds: BTreeMap<u32, Bound> = BTreeMap::new();
    let mut dynamic = Depth::Finite(0);
    for (&(_, sym), &d) in &depths {
        match sym {
            Sym::Pool(i) => {
                let b = bounds.entry(i).or_insert(Bound::Finite(0));
                *b = (*b).max(d.to_bound());
            }
            Sym::Arg(_) | Sym::Unknown => {
                // Argument symbols of non-entry methods are grounded at
                // call sites; what remains here is either an entry
                // method's argument or a dynamic load — track the worst
                // as a caveat.
                dynamic = dynamic.max(d);
            }
        }
    }

    let hints: Vec<u32> = bounds
        .iter()
        .filter(|(_, b)| b.exceeds_thin_capacity())
        .map(|(&i, _)| i)
        .collect();

    NestDepthReport {
        bounds,
        hints,
        dynamic_depth: dynamic.to_bound(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstack;
    use thinlock_vm::programs::{self, MicroBench};

    #[test]
    fn thin_capacity_matches_lock_word() {
        assert_eq!(THIN_NEST_CAPACITY, 256);
    }

    #[test]
    fn flat_sync_bound_is_one() {
        let p = MicroBench::Sync.program();
        let facts = lockstack::analyze_program(&p);
        let r = analyze(&facts);
        assert_eq!(r.bounds.get(&0), Some(&Bound::Finite(1)));
        assert!(r.hints.is_empty());
    }

    #[test]
    fn nested_sync_counts_re_entry() {
        let p = MicroBench::NestedSync.program();
        let facts = lockstack::analyze_program(&p);
        let r = analyze(&facts);
        let b = r.bounds.get(&0).copied().unwrap();
        assert!(matches!(b, Bound::Finite(n) if n >= 2), "{b}");
        assert!(r.hints.is_empty());
    }

    #[test]
    fn recursion_while_holding_is_unbounded_and_hinted() {
        let p = programs::deep_nest();
        let facts = lockstack::analyze_program(&p);
        let r = analyze(&facts);
        assert_eq!(r.bounds.get(&0), Some(&Bound::Unbounded));
        assert_eq!(r.hints, vec![0]);
    }

    #[test]
    fn synchronized_callee_grounds_through_call() {
        // main locks pool[0] and calls a synchronized method with
        // receiver pool[0]: depth 2 on pool[0].
        use thinlock_vm::program::{Method, MethodFlags, Program};
        use thinlock_vm::Op;
        let mut p = Program::new(1);
        p.add_method(Method::new(
            "main",
            0,
            0,
            MethodFlags::default(),
            vec![
                Op::AConst(0),
                Op::MonitorEnter,
                Op::AConst(0),
                Op::Invoke(1),
                Op::AConst(0),
                Op::MonitorExit,
                Op::Return,
            ],
        ));
        p.add_method(Method::new(
            "locked",
            1,
            1,
            MethodFlags {
                synchronized: true,
                returns_value: false,
            },
            vec![Op::Return],
        ));
        let facts = lockstack::analyze_program(&p);
        let r = analyze(&facts);
        assert_eq!(r.bounds.get(&0), Some(&Bound::Finite(2)));
    }
}
