//! Conservative thread-escape analysis for sync elision.
//!
//! The paper's motivating observation is that most locking is on objects
//! only one thread ever touches. In this VM the question is decidable
//! from the bytecode plus one harness fact: object fields are integers
//! (references cannot be stored into the heap), there is no
//! thread-spawning instruction, and references enter a method only as
//! pool constants or arguments — so the *only* publication channel is
//! the benchmark harness sharing the object pool across its worker
//! threads. [`SharedPool`] encodes that harness contract.
//!
//! Every `monitorenter`/`monitorexit` whose operand provably names only
//! non-shared objects is *elidable*: no other thread can ever observe
//! the lock, so the paper's thin-lock fast path can be skipped entirely.
//! The result feeds [`thinlock_vm::transform::elide_local_sync`] as an
//! [`ElisionPlan`].

use std::collections::BTreeSet;

use thinlock_vm::program::Program;
use thinlock_vm::transform::ElisionPlan;

use crate::lockstack::{MethodLockFacts, Sym};

/// Which pool objects the harness may hand to more than one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharedPool {
    /// Single-threaded run: no object is ever visible to a second thread.
    None,
    /// Every worker thread runs over the same pool (the `Threads(n)`
    /// micro-benchmark harness): all pool objects escape.
    All,
    /// Only the listed pool indices are shared (a finer harness contract).
    Some(BTreeSet<u32>),
}

/// Execution context the analysis cannot see in the bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeContext {
    /// Number of threads the harness runs the program on.
    pub thread_count: u32,
    /// Which pool objects those threads share.
    pub shared: SharedPool,
}

impl EscapeContext {
    /// Context for a single-threaded run: nothing escapes.
    pub fn single_threaded() -> Self {
        EscapeContext {
            thread_count: 1,
            shared: SharedPool::None,
        }
    }

    /// Context for `n` worker threads sharing the whole pool.
    pub fn threads(n: u32) -> Self {
        EscapeContext {
            thread_count: n,
            shared: if n > 1 {
                SharedPool::All
            } else {
                SharedPool::None
            },
        }
    }

    /// Context where only the given pool indices are shared.
    pub fn with_shared(thread_count: u32, indices: impl IntoIterator<Item = u32>) -> Self {
        EscapeContext {
            thread_count,
            shared: SharedPool::Some(indices.into_iter().collect()),
        }
    }

    /// True when the harness may hand `pool[index]` to a second thread.
    pub fn pool_is_shared(&self, index: u32) -> bool {
        match &self.shared {
            SharedPool::None => false,
            SharedPool::All => true,
            SharedPool::Some(set) => set.contains(&index),
        }
    }

    fn any_shared(&self) -> bool {
        match &self.shared {
            SharedPool::None => false,
            SharedPool::All => true,
            SharedPool::Some(set) => !set.is_empty(),
        }
    }
}

/// Result of the escape pass over one program.
#[derive(Debug, Clone)]
pub struct EscapeReport {
    /// The context the analysis ran under.
    pub context: EscapeContext,
    /// Pool indices proven thread-local (their sync ops never contend).
    pub local_pool: BTreeSet<u32>,
    /// Pool indices that may be observed by a second thread.
    pub escaping_pool: BTreeSet<u32>,
    /// `(method_id, pc)` of every `monitorenter`/`monitorexit` provably
    /// on a thread-local object.
    pub elidable_ops: Vec<(u16, usize)>,
    /// Method ids whose `synchronized` flag only ever guards
    /// thread-local receivers.
    pub desync_methods: Vec<u16>,
    /// Monitor operations that could *not* be elided.
    pub retained_ops: usize,
}

impl EscapeReport {
    /// Converts the report into the transform input.
    pub fn elision_plan(&self) -> ElisionPlan {
        ElisionPlan {
            ops: self.elidable_ops.clone(),
            desync_methods: self.desync_methods.clone(),
        }
    }
}

/// True when every object `sym` may name is thread-local under `ctx`.
///
/// `Pool(i)` is local iff the harness does not share `i`. `Arg`/`Unknown`
/// can only ever be *some* pool object (the pool is the sole source of
/// references, and locking null traps before any sharing question
/// arises), so they are local exactly when no pool object is shared.
fn sym_is_local(ctx: &EscapeContext, sym: Sym) -> bool {
    match sym {
        Sym::Pool(i) => !ctx.pool_is_shared(i),
        Sym::Arg(_) | Sym::Unknown => !ctx.any_shared(),
    }
}

/// Runs the escape pass: decides, per monitor operation, whether its
/// object can ever be observed by a second thread.
pub fn analyze(program: &Program, facts: &[MethodLockFacts], ctx: &EscapeContext) -> EscapeReport {
    let mut local_pool = BTreeSet::new();
    let mut escaping_pool = BTreeSet::new();
    for i in 0..program.pool_size() {
        if ctx.pool_is_shared(i) {
            escaping_pool.insert(i);
        } else {
            local_pool.insert(i);
        }
    }

    let mut elidable_ops = Vec::new();
    let mut retained = 0usize;
    let mut desync_methods = Vec::new();
    for f in facts {
        for op in &f.monitor_ops {
            if sym_is_local(ctx, op.sym) {
                elidable_ops.push((f.method_id, op.pc));
            } else {
                retained += 1;
            }
        }
        if f.synchronized {
            // The receiver is Arg(0): elidable only if no caller can pass
            // a shared object, i.e. nothing is shared at all.
            if sym_is_local(ctx, Sym::Arg(0)) {
                desync_methods.push(f.method_id);
            } else {
                retained += 1;
            }
        }
    }

    EscapeReport {
        context: ctx.clone(),
        local_pool,
        escaping_pool,
        elidable_ops,
        desync_methods,
        retained_ops: retained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstack;
    use thinlock_vm::programs::MicroBench;

    #[test]
    fn single_threaded_sync_is_fully_elidable() {
        let p = MicroBench::Sync.program();
        let facts = lockstack::analyze_program(&p);
        let r = analyze(&p, &facts, &EscapeContext::single_threaded());
        assert!(!r.elidable_ops.is_empty());
        assert_eq!(r.retained_ops, 0);
        assert_eq!(r.escaping_pool.len(), 0);
    }

    #[test]
    fn multi_threaded_pool_sharing_elides_nothing() {
        let p = MicroBench::Sync.program();
        let facts = lockstack::analyze_program(&p);
        let r = analyze(&p, &facts, &EscapeContext::threads(4));
        assert!(r.elidable_ops.is_empty());
        assert!(r.retained_ops > 0);
        assert!(r.local_pool.is_empty());
    }

    #[test]
    fn partial_sharing_keeps_only_shared_objects_locked() {
        // MultiSync(4) locks pool[0..4] each iteration; share only pool[0].
        let p = MicroBench::MultiSync(4).program();
        let facts = lockstack::analyze_program(&p);
        let r = analyze(&p, &facts, &EscapeContext::with_shared(2, [0]));
        assert_eq!(r.elidable_ops.len(), 6, "pool[1..4] enter/exit pairs");
        assert_eq!(r.retained_ops, 2, "pool[0] enter/exit pair stays");
        // No elided op may name pool[0].
        for &(mid, pc) in &r.elidable_ops {
            let f = facts.iter().find(|f| f.method_id == mid).unwrap();
            let site = f.monitor_ops.iter().find(|m| m.pc == pc).unwrap();
            assert_ne!(site.sym, crate::lockstack::Sym::Pool(0));
        }
    }

    #[test]
    fn dynamic_field_ops_do_not_perturb_elision() {
        // Same sync shape as the Sync benchmark, but the loop body also
        // reads and writes fields through GetFieldDyn/PutFieldDyn: field
        // traffic (indexed or dynamic) must not change what is elidable.
        use thinlock_vm::program::{Method, MethodFlags};
        use thinlock_vm::Op;
        let code = vec![
            Op::AConst(0),    // 0
            Op::MonitorEnter, // 1
            Op::AConst(0),    // 2: put receiver
            Op::IConst(0),    // 3: put index
            Op::AConst(0),    // 4
            Op::IConst(0),    // 5
            Op::GetFieldDyn,  // 6
            Op::IConst(1),    // 7
            Op::IAdd,         // 8
            Op::PutFieldDyn,  // 9
            Op::AConst(0),    // 10
            Op::MonitorExit,  // 11
            Op::Return,       // 12
        ];
        let mut p = Program::new(1);
        p.add_method(Method::new("main", 0, 0, MethodFlags::default(), code));
        let facts = lockstack::analyze_program(&p);
        let local = analyze(&p, &facts, &EscapeContext::single_threaded());
        assert_eq!(local.elidable_ops.len(), 2, "enter+exit still elidable");
        assert_eq!(local.retained_ops, 0);
        let shared = analyze(&p, &facts, &EscapeContext::threads(2));
        assert!(shared.elidable_ops.is_empty());
        assert_eq!(shared.retained_ops, 2);
    }

    #[test]
    fn synchronized_methods_desync_only_when_nothing_shared() {
        let p = MicroBench::CallSync.program();
        let facts = lockstack::analyze_program(&p);
        let local = analyze(&p, &facts, &EscapeContext::single_threaded());
        assert!(!local.desync_methods.is_empty());
        let shared = analyze(&p, &facts, &EscapeContext::threads(2));
        assert!(shared.desync_methods.is_empty());
    }
}
